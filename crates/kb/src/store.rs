//! The centralized workload knowledge base of Section V, built as a
//! serving subsystem: writes land on one of N shards keyed by a hash of
//! the [`SubscriptionId`]; each shard maintains secondary indexes for
//! the typed queries the optimization policies run, so candidate lookups
//! are index walks instead of full scans. Reads go through the typed
//! [`KbQuery`](crate::KbQuery) API, which merges per-shard results into
//! one subscription-ordered view — results are byte-identical for any
//! shard count.

use crate::knowledge::WorkloadKnowledge;
use crate::query::{KbQuery, KbSelector};
use crate::shard::ShardState;
use cloudscope_model::prelude::*;
use std::error::Error;
use std::fmt;
use std::sync::{PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Shard-count ceiling for the auto default: beyond this, shard-lock
/// contention is no longer the bottleneck for any workload the repo runs.
const MAX_AUTO_SHARDS: usize = 16;

/// Error a knowledge-base backend can raise on a write. The in-memory
/// [`KnowledgeBase`] never fails, but a networked or disk-backed store
/// does, and the extraction pipeline has to cope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum StoreError {
    /// The write failed for a reason that may clear on retry (timeout,
    /// contention, brief unavailability). Carries the backend's reason.
    Transient(&'static str),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Transient(reason) => write!(f, "transient store failure: {reason}"),
        }
    }
}

impl Error for StoreError {}

/// Per-entry outcome of one batched write ([`KbStore::try_feed`]).
/// `stored + stale + failures.len()` always equals the batch length, so
/// a caller can account for every entry it handed over.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FeedOutcome {
    /// Entries stored (inserted or refreshed).
    pub stored: usize,
    /// Entries ignored as stale (older `updated_at` than the stored
    /// entry) — not an error; out-of-order feeds are expected.
    pub stale: usize,
    /// Entries the backend could not take, as `(batch index, error)` in
    /// ascending batch order — the granularity a retrying caller needs
    /// to re-feed exactly the failures.
    pub failures: Vec<(usize, StoreError)>,
}

/// Write interface of a knowledge-base backend, as the extraction
/// pipeline sees it: single upserts plus batched ingestion with
/// per-entry error granularity.
pub trait KbStore {
    /// Attempts to insert or refresh one subscription's knowledge.
    /// `Ok(true)` means the entry was stored, `Ok(false)` that it was
    /// ignored as stale.
    ///
    /// # Errors
    /// [`StoreError::Transient`] if the backend could not take the write
    /// right now.
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError>;

    /// Attempts to ingest one batch (e.g. one extraction sweep chunk),
    /// reporting per-entry outcomes instead of failing the batch
    /// wholesale — one bad entry must not cost the rest of the batch.
    ///
    /// The default implementation upserts entry by entry via
    /// [`KbStore::try_upsert`]; backends with a cheaper bulk path (the
    /// in-memory store groups by shard and takes each shard lock once)
    /// override it.
    fn try_feed(&self, batch: &[WorkloadKnowledge]) -> FeedOutcome {
        let mut outcome = FeedOutcome::default();
        for (index, knowledge) in batch.iter().enumerate() {
            match self.try_upsert(knowledge.clone()) {
                Ok(true) => outcome.stored += 1,
                Ok(false) => outcome.stale += 1,
                Err(e) => outcome.failures.push((index, e)),
            }
        }
        outcome
    }
}

impl KbStore for KnowledgeBase {
    /// The in-memory store is infallible; this simply delegates to
    /// [`KnowledgeBase::upsert`].
    fn try_upsert(&self, knowledge: WorkloadKnowledge) -> Result<bool, StoreError> {
        Ok(self.upsert(knowledge))
    }

    /// Groups the batch by shard and takes each shard's write lock once,
    /// instead of once per entry. Infallible: `failures` is always empty.
    fn try_feed(&self, batch: &[WorkloadKnowledge]) -> FeedOutcome {
        self.feed_batch(batch)
    }
}

/// The number of shards to use when none is requested explicitly:
/// `CLOUDSCOPE_KB_SHARDS` if set to a positive integer (the same
/// override convention as `CLOUDSCOPE_WORKERS`), else the machine's
/// available parallelism capped at [`MAX_AUTO_SHARDS`].
#[must_use]
fn default_shard_count() -> usize {
    std::env::var("CLOUDSCOPE_KB_SHARDS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(4)
                .min(MAX_AUTO_SHARDS)
        })
}

/// SplitMix64: a full-avalanche mixer, so shard assignment is uniform
/// and — unlike `HashMap`'s seeded `RandomState` — stable across
/// processes and platforms.
#[must_use]
fn mix(id: u64) -> u64 {
    let mut z = id.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The knowledge base of Section V: writers (telemetry extractors) feed
/// it continuously; readers (optimization policies) query it through
/// [`KbQuery`](crate::KbQuery). Internally N shards keyed by
/// subscription hash, each with its own lock and secondary indexes, so
/// concurrent readers and writers mostly touch disjoint locks and
/// candidate queries never scan the population.
#[derive(Debug)]
pub struct KnowledgeBase {
    shards: Box<[RwLock<ShardState>]>,
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

impl KnowledgeBase {
    /// Creates an empty knowledge base with the default shard count
    /// (`CLOUDSCOPE_KB_SHARDS` if set, else available parallelism capped
    /// at 16). Shard count never affects query results, only contention.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shards(default_shard_count())
    }

    /// Creates an empty knowledge base with exactly `shards` shards.
    ///
    /// Registers the whole `kb.store.*` metric surface up front (zeros,
    /// not absences), so a freshly constructed store already exports a
    /// complete schema.
    ///
    /// # Panics
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(shards: usize) -> Self {
        assert!(shards > 0, "a knowledge base needs at least one shard");
        cloudscope_obs::gauge("kb.store.shards").set(shards as f64);
        for name in [
            "kb.store.upserts",
            "kb.store.stale_rejected",
            "kb.store.removes",
            "kb.store.feed_batches",
            "kb.store.queries_indexed",
            "kb.store.queries_scanned",
            "kb.store.entries_cloned",
        ] {
            cloudscope_obs::counter(name).add(0);
        }
        Self {
            shards: (0..shards).map(|_| RwLock::default()).collect(),
        }
    }

    /// The number of shards (for reporting; never affects results).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `id`.
    fn shard_of(&self, id: SubscriptionId) -> usize {
        (mix(u64::from(id.index())) % self.shards.len() as u64) as usize
    }

    /// Read access to one shard; a poisoned lock is recovered rather
    /// than propagated, since every write keeps entry map and indexes
    /// consistent before releasing the guard.
    fn read(&self, shard: usize) -> RwLockReadGuard<'_, ShardState> {
        self.shards[shard]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Write access to one shard; see [`Self::read`] on poisoning.
    fn write(&self, shard: usize) -> RwLockWriteGuard<'_, ShardState> {
        self.shards[shard]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Inserts or refreshes one subscription's knowledge. Stale updates
    /// (older `updated_at` than the stored entry) are ignored, so
    /// out-of-order feeds are safe. Returns `true` if the entry was
    /// stored.
    pub fn upsert(&self, knowledge: WorkloadKnowledge) -> bool {
        cloudscope_obs::counter("kb.store.upserts").inc();
        let shard = self.shard_of(knowledge.subscription);
        let stored = self.write(shard).upsert(knowledge);
        if !stored {
            cloudscope_obs::counter("kb.store.stale_rejected").inc();
        }
        stored
    }

    /// Bulk-feeds extracted knowledge (e.g. one extraction sweep).
    /// Returns how many entries were stored.
    pub fn feed<I: IntoIterator<Item = WorkloadKnowledge>>(&self, batch: I) -> usize {
        let batch: Vec<WorkloadKnowledge> = batch.into_iter().collect();
        self.feed_batch(&batch).stored
    }

    /// The native batch path: group by shard, lock each shard once,
    /// apply that shard's entries in batch order (so duplicate
    /// subscriptions within a batch resolve exactly as sequential
    /// upserts would).
    pub(crate) fn feed_batch(&self, batch: &[WorkloadKnowledge]) -> FeedOutcome {
        cloudscope_obs::counter("kb.store.feed_batches").inc();
        cloudscope_obs::counter("kb.store.upserts").add(batch.len() as u64);
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (index, knowledge) in batch.iter().enumerate() {
            by_shard[self.shard_of(knowledge.subscription)].push(index);
        }
        let mut outcome = FeedOutcome::default();
        for (shard, indices) in by_shard.into_iter().enumerate() {
            if indices.is_empty() {
                continue;
            }
            let mut guard = self.write(shard);
            for index in indices {
                if guard.upsert(batch[index].clone()) {
                    outcome.stored += 1;
                } else {
                    outcome.stale += 1;
                }
            }
        }
        if outcome.stale > 0 {
            cloudscope_obs::counter("kb.store.stale_rejected").add(outcome.stale as u64);
        }
        outcome
    }

    /// Looks up one subscription.
    #[must_use]
    pub fn get(&self, subscription: SubscriptionId) -> Option<WorkloadKnowledge> {
        self.read(self.shard_of(subscription))
            .get(subscription)
            .cloned()
    }

    /// Removes one subscription (e.g. deleted by the customer).
    pub fn remove(&self, subscription: SubscriptionId) -> Option<WorkloadKnowledge> {
        cloudscope_obs::counter("kb.store.removes").inc();
        self.write(self.shard_of(subscription)).remove(subscription)
    }

    /// Number of stored entries.
    #[must_use]
    pub fn len(&self) -> usize {
        (0..self.shards.len()).map(|s| self.read(s).len()).sum()
    }

    /// `true` if nothing is stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Read guards over every shard, acquired in shard order (the one
    /// canonical order, so two concurrent queries can never deadlock).
    /// Holding all of them gives the query one atomic view of the store.
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, ShardState>> {
        (0..self.shards.len()).map(|s| self.read(s)).collect()
    }

    /// Counts the query toward the served-query metrics.
    fn note_query(selector: KbSelector) {
        let name = if selector == KbSelector::All {
            "kb.store.queries_scanned"
        } else {
            "kb.store.queries_indexed"
        };
        cloudscope_obs::counter(name).inc();
    }

    /// Executes `query`, visiting each match (ascending subscription
    /// order, borrowed — never cloned) with `f`.
    pub(crate) fn for_each_match(
        &self,
        query: &KbQuery<'_>,
        mut f: impl FnMut(&WorkloadKnowledge),
    ) {
        Self::note_query(query.selector());
        let guards = self.read_all();
        let mut matches: Vec<&WorkloadKnowledge> = Vec::new();
        for guard in &guards {
            match query.selector() {
                KbSelector::All => {
                    matches.extend(guard.entries().filter(|k| query.passes(k)));
                }
                selector => {
                    if let Some(ids) = guard.index_ids(&selector) {
                        matches.extend(ids.iter().map(|id| {
                            guard
                                .get(*id)
                                .expect("index posting references a live entry")
                        }));
                        if query.has_filters() {
                            matches.retain(|k| query.passes(k));
                        }
                    }
                }
            }
        }
        matches.sort_unstable_by_key(|k| k.subscription);
        for k in matches {
            f(k);
        }
    }

    /// Counts `query`'s matches. With no residual filters an indexed
    /// selector is a pure posting-set size sum — no entry is visited.
    pub(crate) fn count_matches(&self, query: &KbQuery<'_>) -> usize {
        if query.has_filters() {
            let mut n = 0;
            self.for_each_match(query, |_| n += 1);
            return n;
        }
        Self::note_query(query.selector());
        let selector = query.selector();
        let guards = self.read_all();
        guards
            .iter()
            .map(|guard| match selector {
                KbSelector::All => guard.len(),
                ref indexed => guard
                    .index_ids(indexed)
                    .map_or(0, std::collections::BTreeSet::len),
            })
            .sum()
    }

    /// Collects `query`'s matches, cloning exactly them.
    pub(crate) fn collect_matches(&self, query: &KbQuery<'_>) -> Vec<WorkloadKnowledge> {
        let mut out = Vec::new();
        self.for_each_match(query, |k| out.push(k.clone()));
        cloudscope_obs::counter("kb.store.entries_cloned").add(out.len() as u64);
        out
    }

    /// Clones every shard's entries, sorted by subscription within each
    /// shard, tagged with the shard index — the unit of one snapshot
    /// file. Deterministic: the same store contents always produce the
    /// same byte-identical snapshot files.
    pub(crate) fn export_shard_entries(&self) -> Vec<(usize, Vec<WorkloadKnowledge>)> {
        let guards = self.read_all();
        guards
            .iter()
            .enumerate()
            .map(|(shard, guard)| {
                let mut entries: Vec<WorkloadKnowledge> = guard.entries().cloned().collect();
                entries.sort_unstable_by_key(|k| k.subscription);
                (shard, entries)
            })
            .collect()
    }

    /// Verifies every shard's index ↔ entry consistency (by full
    /// rebuild) and that every entry lives in the shard its hash maps
    /// to. Returns the number of entries checked. A test/debug aid —
    /// O(population), takes every shard read lock.
    ///
    /// # Errors
    /// A description of the first inconsistency found.
    pub fn check_consistency(&self) -> Result<usize, String> {
        let mut total = 0;
        for shard in 0..self.shards.len() {
            let guard = self.read(shard);
            for k in guard.entries() {
                let expected = self.shard_of(k.subscription);
                if expected != shard {
                    return Err(format!(
                        "entry {} lives in shard {shard} but hashes to shard {expected}",
                        k.subscription
                    ));
                }
            }
            guard
                .check_consistency()
                .map_err(|e| format!("shard {shard}: {e}"))?;
            total += guard.len();
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knowledge::LifetimeClass;
    use cloudscope_analysis::UtilizationPattern;
    use std::sync::Arc;

    fn knowledge(id: u32, cloud: CloudKind, at: i64) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud,
            pattern: Some(UtilizationPattern::Stable),
            lifetime: LifetimeClass::MostlyShort,
            mean_util: 10.0,
            p95_util: 20.0,
            util_cv: 0.1,
            regions: 1,
            region_agnostic: None,
            vm_count: 3,
            cores: 12,
            updated_at: SimTime::from_minutes(at),
        }
    }

    #[test]
    fn upsert_and_get() {
        let kb = KnowledgeBase::new();
        assert!(kb.is_empty());
        assert!(kb.upsert(knowledge(1, CloudKind::Public, 0)));
        assert_eq!(kb.len(), 1);
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().cores, 12);
        assert!(kb.get(SubscriptionId::new(2)).is_none());
    }

    #[test]
    fn stale_updates_ignored() {
        let kb = KnowledgeBase::new();
        let mut fresh = knowledge(1, CloudKind::Public, 100);
        fresh.mean_util = 50.0;
        assert!(kb.upsert(fresh));
        // An older snapshot must not clobber the newer one.
        assert!(!kb.upsert(knowledge(1, CloudKind::Public, 10)));
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().mean_util, 50.0);
        // Same-age updates do apply (refresh).
        let mut same = knowledge(1, CloudKind::Public, 100);
        same.mean_util = 60.0;
        assert!(kb.upsert(same));
        assert_eq!(kb.get(SubscriptionId::new(1)).unwrap().mean_util, 60.0);
    }

    #[test]
    fn queries_filter_and_sort() {
        let kb = KnowledgeBase::new();
        kb.feed([
            knowledge(3, CloudKind::Public, 0),
            knowledge(1, CloudKind::Public, 0),
            knowledge(2, CloudKind::Private, 0),
        ]);
        let spot = KbQuery::spot_candidates().collect(&kb);
        assert_eq!(spot.len(), 2, "private entries are not spot candidates");
        assert!(spot[0].subscription < spot[1].subscription);
        assert_eq!(
            KbQuery::by_pattern(CloudKind::Private, UtilizationPattern::Stable).count(&kb),
            1
        );
        assert_eq!(
            KbQuery::by_lifetime(LifetimeClass::MostlyShort).count(&kb),
            3
        );
        assert_eq!(
            KbQuery::oversubscription_candidates(CloudKind::Public).count(&kb),
            2
        );
        assert_eq!(KbQuery::shiftable().count(&kb), 0);
    }

    #[test]
    fn kb_store_trait_delegates_to_upsert() {
        let kb = KnowledgeBase::new();
        assert_eq!(
            kb.try_upsert(knowledge(1, CloudKind::Public, 100)),
            Ok(true)
        );
        // Stale write: surfaced as Ok(false), not an error.
        assert_eq!(
            kb.try_upsert(knowledge(1, CloudKind::Public, 10)),
            Ok(false)
        );
        assert_eq!(kb.len(), 1);
        let e = StoreError::Transient("timeout");
        assert!(e.to_string().contains("timeout"));
    }

    #[test]
    fn try_feed_accounts_for_every_entry() {
        let kb = KnowledgeBase::with_shards(4);
        assert!(kb.upsert(knowledge(1, CloudKind::Public, 100)));
        let batch = [
            knowledge(1, CloudKind::Public, 10), // stale vs the stored entry
            knowledge(2, CloudKind::Private, 0),
            knowledge(3, CloudKind::Public, 0),
            knowledge(3, CloudKind::Public, 0), // same-age refresh: stores
        ];
        let outcome = kb.try_feed(&batch);
        assert_eq!(outcome.stored, 3);
        assert_eq!(outcome.stale, 1);
        assert!(outcome.failures.is_empty());
        assert_eq!(outcome.stored + outcome.stale, batch.len());
        assert_eq!(kb.len(), 3);
        // Batch order within a subscription matches sequential upserts.
        let sequential = KnowledgeBase::with_shards(1);
        sequential.upsert(knowledge(1, CloudKind::Public, 100));
        for k in &batch {
            let _ = sequential.upsert(k.clone());
        }
        for id in 1..=3 {
            assert_eq!(
                kb.get(SubscriptionId::new(id)),
                sequential.get(SubscriptionId::new(id))
            );
        }
    }

    #[test]
    fn remove_entries() {
        let kb = KnowledgeBase::new();
        kb.upsert(knowledge(1, CloudKind::Public, 0));
        assert!(kb.remove(SubscriptionId::new(1)).is_some());
        assert!(kb.remove(SubscriptionId::new(1)).is_none());
        assert!(kb.is_empty());
        assert_eq!(kb.check_consistency(), Ok(0));
    }

    #[test]
    fn shard_count_does_not_change_results() {
        let entries: Vec<WorkloadKnowledge> = (0..64)
            .map(|i| {
                knowledge(
                    i,
                    if i % 3 == 0 {
                        CloudKind::Private
                    } else {
                        CloudKind::Public
                    },
                    i64::from(i % 7),
                )
            })
            .collect();
        let reference = KnowledgeBase::with_shards(1);
        reference.feed(entries.clone());
        for shards in [2, 3, 8, 16] {
            let kb = KnowledgeBase::with_shards(shards);
            kb.feed(entries.clone());
            assert_eq!(kb.len(), reference.len());
            assert_eq!(
                KbQuery::all().collect(&kb),
                KbQuery::all().collect(&reference),
                "shard count {shards} changed the all-scan"
            );
            assert_eq!(
                KbQuery::spot_candidates().collect(&kb),
                KbQuery::spot_candidates().collect(&reference),
                "shard count {shards} changed the spot candidates"
            );
            assert!(kb.check_consistency().unwrap() == reference.len());
        }
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_rejected() {
        let _ = KnowledgeBase::with_shards(0);
    }

    #[test]
    fn concurrent_writers_and_readers() {
        let kb = Arc::new(KnowledgeBase::with_shards(4));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u32 {
                    kb.upsert(knowledge(w * 1000 + i, CloudKind::Public, i64::from(i)));
                }
            }));
        }
        for r in 0..2 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                let _ = r;
                for _ in 0..100 {
                    let _ = KbQuery::spot_candidates().count(&kb);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(kb.len(), 1000);
        assert_eq!(kb.check_consistency(), Ok(1000));
    }

    #[test]
    fn concurrent_stress_keeps_indexes_consistent() {
        // Interleaved upserts, stale writes, and removals over a small
        // hot key range, racing with index-walking readers; afterwards
        // every index must agree with a rebuild and shard placement.
        let kb = Arc::new(KnowledgeBase::with_shards(5));
        let mut handles = Vec::new();
        for w in 0..4u32 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                for i in 0..400u32 {
                    let id = (w * 31 + i) % 97; // deliberate cross-thread collisions
                    match i % 5 {
                        0 => {
                            // Stale write: timestamp far in the past.
                            let _ = kb.upsert(knowledge(id, CloudKind::Public, -1));
                        }
                        1 => {
                            let _ = kb.remove(SubscriptionId::new(id));
                        }
                        _ => {
                            let cloud = if id % 2 == 0 {
                                CloudKind::Public
                            } else {
                                CloudKind::Private
                            };
                            let _ = kb.upsert(knowledge(id, cloud, i64::from(i)));
                        }
                    }
                }
            }));
        }
        for _ in 0..2 {
            let kb = Arc::clone(&kb);
            handles.push(std::thread::spawn(move || {
                for _ in 0..200 {
                    let spot = KbQuery::spot_candidates().count(&kb);
                    let all = KbQuery::all().count(&kb);
                    assert!(spot <= all);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let checked = kb.check_consistency().expect("indexes consistent");
        assert_eq!(checked, kb.len());
    }
}
