//! The over-subscription sweep (Insight 2 implication): utilization
//! improvement vs safety level. Paper (citing its ref \[17\]): 20%-86%
//! improvement depending on the safety constraint.

use cloudscope_repro::checks::{oversub_checks, oversub_pool, run_oversub_sweep, OVERSUB_EPSILONS};
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let profile = cloudscope_repro::active_profile();

    // Pool: public-cloud VMs with (almost) full-week telemetry, gaps
    // repaired (the paper's over-subscription candidates live in the
    // stable-heavy public mix).
    let pool = oversub_pool(&generated.trace, profile.oversub_pool);
    eprintln!("# pool of {} VMs", pool.len());

    let sweep = run_oversub_sweep(&pool).expect("sweep");
    println!("## Over-subscription sweep (empirical-quantile planner)");
    println!("epsilon,reserved_cores,requested_cores,violation_rate,utilization_improvement_pct");
    for (eps, plan) in OVERSUB_EPSILONS.iter().zip(&sweep.plans) {
        println!(
            "{eps},{:.0},{:.0},{:.4},{:.0}",
            plan.reserved_cores,
            plan.requested_cores,
            plan.violation_rate,
            100.0 * plan.utilization_improvement
        );
    }
    println!();

    let mut checks = ShapeChecks::new();
    oversub_checks(&sweep, &profile, &mut checks);
    let ok = checks.finish("oversub");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
