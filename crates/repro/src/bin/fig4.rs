//! Figure 4: spatial deployment — regions per subscription, plain and
//! core-weighted.

use cloudscope::analysis::spatial::SpatialAnalysis;
use cloudscope::par::Parallelism;
use cloudscope::store::{ScanFilter, TraceReader};
use cloudscope_repro::checks::fig4_checks;
use cloudscope_repro::{print_csv, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    // Figure 4 is a pure placement-metadata analysis, so a store-backed
    // run reads the metadata chunks alone and never decodes a telemetry
    // chunk. (With --trace-out the full trace is still needed for the
    // copy, so the pushdown path is skipped.)
    let a = match (metrics.trace_dir(), metrics.trace_out()) {
        (Some(dir), None) => {
            let fail = |what: &str, e: cloudscope::store::StoreError| -> ! {
                eprintln!("error: {what}: {e}");
                std::process::exit(2);
            };
            let reader = TraceReader::open(dir)
                .unwrap_or_else(|e| fail(&format!("opening trace store {}", dir.display()), e));
            let subscriptions = reader
                .read_subscriptions()
                .unwrap_or_else(|e| fail("reading subscription table", e));
            let records = reader
                .read_vm_records(ScanFilter::all(), &Parallelism::auto())
                .unwrap_or_else(|e| fail("reading metadata chunks", e));
            eprintln!(
                "# pushdown: read {} records (metadata only) from {}",
                records.len(),
                dir.display()
            );
            SpatialAnalysis::run_from_records(&records, &subscriptions)
        }
        _ => {
            let generated = metrics.load_trace();
            SpatialAnalysis::run(&generated.trace)
        }
    }
    .expect("analysis");

    for (label, cdf) in [
        ("private", &a.private_regions),
        ("public", &a.public_regions),
    ] {
        let rows: Vec<[f64; 2]> = (1..=10).map(|k| [k as f64, cdf.eval(k as f64)]).collect();
        print_csv(
            &format!("Fig 4(a) {label}: regions per subscription CDF"),
            ["regions", "cdf"],
            &rows,
        );
    }
    for (label, curve) in [
        ("private", &a.private_core_weighted),
        ("public", &a.public_core_weighted),
    ] {
        let rows: Vec<[f64; 2]> = curve.iter().map(|&(k, f)| [k as f64, f]).collect();
        print_csv(
            &format!("Fig 4(b) {label}: core-weighted regions CDF"),
            ["regions", "core_fraction"],
            &rows,
        );
    }

    let mut checks = ShapeChecks::new();
    fig4_checks(&a, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("fig4");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
