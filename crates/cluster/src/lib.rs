//! # cloudscope-cluster
//!
//! The allocation-service substrate: per-cluster placement with
//! first-fit/best-fit/worst-fit policies, fault-domain (rack) spreading,
//! spot-VM eviction for on-demand requests, live migration, and a
//! fleet-level router with region-local fallback.
//!
//! This simulates the platform component the DSN'23 study's Insight 1
//! reasons about: large homogeneous private-cloud deployments stress both
//! capacity (allocation failures near full clusters) and the spreading
//! rule (same-service VMs competing for distinct racks).
//!
//! ## Example
//! ```
//! use cloudscope_cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
//! use cloudscope_model::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Topology::builder();
//! let region = b.add_region("us-west", -8, "US");
//! let dc = b.add_datacenter(region);
//! let cluster = b.add_cluster(dc, CloudKind::Private, NodeSku::new(48, 384.0), 4, 10);
//! let topology = b.build();
//!
//! let mut alloc = ClusterAllocator::new(
//!     topology.cluster(cluster)?,
//!     PlacementPolicy::BestFit,
//!     SpreadingRule { max_same_service_per_rack: Some(8) },
//! );
//! let node = alloc.place(PlacementRequest {
//!     vm: VmId::new(0),
//!     size: VmSize::new(8, 64.0),
//!     service: ServiceId::new(0),
//!     priority: Priority::OnDemand,
//! })?;
//! assert_eq!(alloc.node_state(node)?.cores_used(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocator;
pub mod drain;
pub mod error;
pub mod fleet;
pub mod node;

pub use allocator::{
    AllocatorStats, ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule,
};
pub use drain::DrainOutcome;
pub use error::AllocationError;
pub use fleet::Fleet;
pub use node::NodeState;
