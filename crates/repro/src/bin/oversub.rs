//! The over-subscription sweep (Insight 2 implication): utilization
//! improvement vs safety level. Paper (citing its ref \[17\]): 20%-86%
//! improvement depending on the safety constraint.

use cloudscope::mgmt::oversub::{OversubMethod, OversubPlanner, VmDemand};
use cloudscope::prelude::*;
use cloudscope_repro::ShapeChecks;

fn main() {
    let generated = cloudscope_repro::default_trace();

    // Pool: public-cloud VMs with full-week telemetry (the paper's
    // over-subscription candidates live in the stable-heavy public mix).
    let pool: Vec<VmDemand> = generated
        .trace
        .vms_of(CloudKind::Public)
        .filter_map(|vm| {
            let util = generated.trace.util(vm.id)?;
            (util.start().minutes() == 0 && util.len() == 2016).then(|| VmDemand {
                cores: vm.size.cores(),
                utilization: util.to_f64_vec(),
            })
        })
        .take(400)
        .collect();
    eprintln!("# pool of {} VMs", pool.len());

    println!("## Over-subscription sweep (empirical-quantile planner)");
    println!("epsilon,reserved_cores,requested_cores,violation_rate,utilization_improvement_pct");
    let mut improvements = Vec::new();
    for eps in [0.001, 0.005, 0.01, 0.05, 0.1, 0.2] {
        let plan = OversubPlanner::new(eps, OversubMethod::EmpiricalQuantile)
            .expect("planner")
            .plan(&pool)
            .expect("plan");
        println!(
            "{eps},{:.0},{:.0},{:.4},{:.0}",
            plan.reserved_cores,
            plan.requested_cores,
            plan.violation_rate,
            100.0 * plan.utilization_improvement
        );
        improvements.push(plan.utilization_improvement);
    }
    println!();

    let mut checks = ShapeChecks::new();
    checks.check(
        "improvement grows with looser safety (monotone sweep)",
        improvements.windows(2).all(|w| w[0] <= w[1] + 1e-9),
        format!("{improvements:.2?}"),
    );
    checks.check(
        "improvements span a wide range incl. >20% (paper 20%-86%)",
        improvements[0] > 0.2 && *improvements.last().unwrap() > improvements[0] * 1.2,
        format!(
            "{:.0}% at eps=0.001 up to {:.0}% at eps=0.2",
            100.0 * improvements[0],
            100.0 * improvements.last().unwrap()
        ),
    );
    let strict = OversubPlanner::new(0.01, OversubMethod::EmpiricalQuantile)
        .expect("planner")
        .plan(&pool)
        .expect("plan");
    checks.check(
        "violations stay within budget",
        strict.violation_rate <= 0.015,
        format!("violation rate {:.4} at eps=0.01", strict.violation_rate),
    );
    std::process::exit(i32::from(!checks.finish("oversub")));
}
