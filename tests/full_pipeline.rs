//! End-to-end integration: generate both clouds, run the entire
//! characterization pipeline, and assert the paper's shape criteria
//! (the same criteria the `cloudscope-repro` binaries print).

use cloudscope::analysis::correlation::service_region_alignment;
use cloudscope::faults::{corrupt_trace, FaultPlan, FaultReport};
use cloudscope::prelude::*;
use cloudscope_repro::checks::{all_figure_checks, CheckProfile};
use std::sync::OnceLock;

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(99)))
}

/// The medium trace under the standard corruption profile: 5% uniform
/// sample loss plus a 6-hour regional blackout (and the light
/// duplicate/reorder/garbage/skew noise ingest must absorb).
fn corrupted() -> &'static (GeneratedTrace, FaultReport) {
    static CORRUPTED: OnceLock<(GeneratedTrace, FaultReport)> = OnceLock::new();
    CORRUPTED.get_or_init(|| {
        let clean = generated();
        let (trace, report) = corrupt_trace(&clean.trace, &FaultPlan::standard(2024));
        (
            GeneratedTrace {
                trace,
                services: clean.services.clone(),
                report: clean.report,
            },
            report,
        )
    })
}

fn report() -> &'static CharacterizationReport {
    static REPORT: OnceLock<CharacterizationReport> = OnceLock::new();
    REPORT.get_or_init(|| {
        CharacterizationReport::analyze(&generated().trace, &ReportConfig::default())
            .expect("analysis succeeds on the medium trace")
    })
}

#[test]
fn all_four_insights_hold() {
    for (holds, verdict) in report().insight_verdicts() {
        assert!(holds, "insight failed: {verdict}");
    }
}

#[test]
fn fig1_deployment_sizes() {
    let d = &report().deployment;
    assert!(
        d.private_vms_per_subscription.median() > 5.0 * d.public_vms_per_subscription.median(),
        "private deployments are much larger"
    );
    assert!(
        d.subscriptions_per_cluster_ratio > 4.0,
        "public clusters host many times more subscriptions: {}",
        d.subscriptions_per_cluster_ratio
    );
}

#[test]
fn fig2_vm_sizes() {
    let v = &report().vm_size;
    assert!(
        v.public_corner_mass > 3.0 * v.private_corner_mass,
        "corner mass {} vs {}",
        v.public_corner_mass,
        v.private_corner_mass
    );
}

#[test]
fn fig3_lifetimes_and_burstiness() {
    let t = &report().temporal;
    assert!(
        (t.private_short_fraction - 0.49).abs() < 0.15,
        "private shortest bin near paper's 49%: {}",
        t.private_short_fraction
    );
    assert!(
        (t.public_short_fraction - 0.81).abs() < 0.15,
        "public shortest bin near paper's 81%: {}",
        t.public_short_fraction
    );
    assert!(t.creation_cv.0.median > t.creation_cv.1.median);
}

#[test]
fn fig4_spatial() {
    let s = &report().spatial;
    assert!(s.private_regions.eval(1.0) > 0.5);
    assert!(s.public_regions.eval(1.0) > 0.5);
    assert!(s.private_single_region_core_share < s.public_single_region_core_share);
    assert!(s.public_single_region_core_share > 0.5, "paper: 70%");
}

#[test]
fn fig5_pattern_shares() {
    let r = report();
    let d = UtilizationPattern::Diurnal;
    for p in UtilizationPattern::ALL {
        assert!(r.private_patterns.fraction(d) >= r.private_patterns.fraction(p));
        assert!(r.public_patterns.fraction(d) >= r.public_patterns.fraction(p));
    }
    assert!(r.private_patterns.fraction(d) > 1.3 * r.public_patterns.fraction(d));
}

#[test]
fn fig6_utilization_bands() {
    let r = report();
    assert!(r.private_utilization.p75_peak() < 35.0, "paper: p75 < 30%");
    assert!(r.public_utilization.p75_peak() < 35.0);
    assert!(
        r.private_utilization.daily_median_variability()
            > r.public_utilization.daily_median_variability()
    );
}

#[test]
fn fig7_correlations() {
    let r = report();
    assert!(r.node_correlation.0.median() > r.node_correlation.1.median() + 0.2);
    assert!(r.region_correlation.0.median() > r.region_correlation.1.median());
}

#[test]
fn fig7c_flagship_service_is_region_aligned() {
    let g = generated();
    let flagship = g
        .flagship_service()
        .expect("flagship exists in medium config");
    let alignment =
        service_region_alignment(&g.trace, flagship.service).expect("alignment computes");
    assert!(alignment > 0.9, "geo-LB service aligns: {alignment}");
}

/// The clean-trace shape checks, computed once and shared by the
/// robustness gate and the out-of-core parity gate.
fn clean_checks() -> &'static cloudscope_repro::ShapeChecks {
    static CHECKS: OnceLock<cloudscope_repro::ShapeChecks> = OnceLock::new();
    CHECKS.get_or_init(|| {
        all_figure_checks(generated(), &CheckProfile::medium()).expect("pipeline runs")
    })
}

/// The corrupted-trace shape checks, shared the same way.
fn corrupted_checks() -> &'static cloudscope_repro::ShapeChecks {
    static CHECKS: OnceLock<cloudscope_repro::ShapeChecks> = OnceLock::new();
    CHECKS.get_or_init(|| {
        all_figure_checks(&corrupted().0, &CheckProfile::medium())
            .expect("pipeline still runs on the corrupted trace")
    })
}

#[test]
fn robustness_gate_all_shape_checks_hold_on_the_clean_trace() {
    let checks = clean_checks();
    assert_eq!(checks.len(), 26, "the full shape-check surface ran");
    assert!(
        checks.all_hold(),
        "clean-trace shape checks failed:\n{}",
        checks.failures().join("\n")
    );
}

#[test]
fn robustness_gate_all_shape_checks_hold_under_standard_corruption() {
    let (_, fault_report) = corrupted();
    // The corruption really happened: ~5% uniform loss plus the
    // blackout, within sane bounds.
    let loss = fault_report.loss_fraction();
    assert!(loss > 0.04, "standard profile lost too little: {loss}");
    assert!(loss < 0.20, "standard profile lost too much: {loss}");
    assert!(fault_report.blackout_dropped > 0, "the blackout fired");

    println!(
        "corruption: {} of {} samples lost ({:.2}%), {} to the blackout, \
         {} duplicated, {} reordered, {} invalidated, {} skewed off-week",
        fault_report.samples_in - fault_report.samples_out,
        fault_report.samples_in,
        loss * 100.0,
        fault_report.blackout_dropped,
        fault_report.duplicated,
        fault_report.reordered,
        fault_report.invalidated,
        fault_report.out_of_week,
    );
    let checks = corrupted_checks();
    assert_eq!(checks.len(), 26, "the full shape-check surface ran");
    assert!(
        checks.all_hold(),
        "shape checks failed under {:.1}% sample loss:\n{}",
        loss * 100.0,
        checks.failures().join("\n")
    );
}

#[test]
fn classifier_agrees_with_generator_ground_truth() {
    // Classify full-week VMs and compare against the generating profile.
    let g = generated();
    let classifier = PatternClassifier::default();
    let mut agree = 0usize;
    let mut total = 0usize;
    for svc in &g.services {
        for &vm in g.trace.vms_of_service(svc.service).iter().take(2) {
            if g.trace.util(vm).is_none_or(|u| u.len() < 2016) {
                continue;
            }
            let Some(found) = classifier.classify_vm(&g.trace, vm) else {
                continue;
            };
            total += 1;
            let expected = format!("{:?}", svc.profile.kind);
            if format!("{found:?}") == expected {
                agree += 1;
            }
        }
    }
    assert!(total > 200, "enough classifiable VMs: {total}");
    let accuracy = agree as f64 / total as f64;
    assert!(
        accuracy > 0.7,
        "classifier accuracy vs ground truth: {accuracy:.2}"
    );
}

/// The out-of-core gate: the entire figure pipeline — every fig1–fig7
/// analysis core and all 26 shape checks — must produce byte-identical
/// results when the trace streams from a disk store with a small
/// telemetry chunk cache instead of sitting fully in memory, on the
/// clean medium trace *and* under the standard fault plan.
#[test]
fn out_of_core_pipeline_matches_in_memory_byte_for_byte() {
    use cloudscope::store::{TelemetryMode, WriteOptions};
    use cloudscope::tracegen::{read_generated, write_generated};

    struct TempDir(std::path::PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let dir = TempDir(
        std::env::temp_dir().join(format!("cloudscope-pipeline-store-{}", std::process::id())),
    );

    let clean = generated();
    let par = cloudscope::par::Parallelism::auto();
    write_generated(clean, &dir.0, WriteOptions::default(), &par).expect("store writes");

    // Auto-sized chunk cache (one slot per (region, day) lane):
    // telemetry pages in and out, but an id-ordered sweep decompresses
    // each chunk only once instead of thrashing cyclically.
    let streamed = read_generated(&dir.0, TelemetryMode::OutOfCore { cache_chunks: 0 }, &par)
        .expect("store reads");
    assert!(
        streamed.trace.telemetry_is_lazy(),
        "telemetry must stay on disk"
    );

    let render = |checks: &cloudscope_repro::ShapeChecks| -> Vec<(bool, String)> {
        checks
            .lines()
            .map(|(h, line)| (h, line.to_owned()))
            .collect()
    };

    // 26 shape checks, byte-identical to the in-memory run.
    let in_memory = clean_checks();
    let out_of_core =
        all_figure_checks(&streamed, &CheckProfile::medium()).expect("out-of-core pipeline");
    assert_eq!(out_of_core.len(), 26, "the full shape-check surface ran");
    assert_eq!(
        render(&out_of_core),
        render(in_memory),
        "out-of-core shape checks diverge from in-memory"
    );
    assert!(out_of_core.all_hold());

    // Every figure core, compared through the full report's rendering.
    let streamed_report =
        CharacterizationReport::analyze(&streamed.trace, &ReportConfig::default())
            .expect("out-of-core analysis");
    assert_eq!(
        format!("{streamed_report:?}"),
        format!("{:?}", report()),
        "out-of-core characterization diverges from in-memory"
    );

    // Under the standard fault plan the parity must survive too: the
    // injector pulls every series through the chunk cache.
    let (corrupted_trace, fault_report) =
        corrupt_trace(&streamed.trace, &FaultPlan::standard(2024));
    let degraded = GeneratedTrace {
        trace: corrupted_trace,
        services: streamed.services.clone(),
        report: streamed.report,
    };
    let under_faults = all_figure_checks(&degraded, &CheckProfile::medium())
        .expect("out-of-core pipeline under faults");
    assert!(fault_report.blackout_dropped > 0, "the blackout fired");
    assert_eq!(
        render(&under_faults),
        render(corrupted_checks()),
        "fault-plan shape checks diverge between disk and memory"
    );
}
