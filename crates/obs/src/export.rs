//! Snapshot serialization: a restricted JSON document for tooling and
//! the Prometheus text exposition format for dashboards.
//!
//! Both formats come with parsers so snapshots round-trip exactly —
//! tests and `scripts/check.sh` rely on `parse_json(to_json(s)) == s`
//! and `parse_prometheus(to_prometheus(s)) == s`.
//!
//! Prometheus metric names cannot contain dots, so the exporter writes a
//! `# NAME <dotted.name>` comment before each family; the parser uses it
//! to recover the canonical dotted name losslessly.

use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};
use std::fmt::Write as _;

/// Error produced by the snapshot parsers: a message plus the byte
/// offset (JSON) or line number (Prometheus) where parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte offset (JSON) or 1-based line number (Prometheus).
    pub position: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at {}", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

fn escape_json(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats `v` so `str::parse::<f64>` recovers it exactly (shortest
/// round-trip representation).
fn format_f64(v: f64) -> String {
    format!("{v:?}")
}

/// Serializes a snapshot as a JSON object keyed by metric name, values
/// tagged with a `"type"` field. Names are emitted in sorted order, so
/// equal snapshots produce byte-identical documents.
#[must_use]
pub fn to_json(snapshot: &Snapshot) -> String {
    let mut out = String::from("{\n");
    let mut first = true;
    for (name, value) in &snapshot.metrics {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str("  ");
        escape_json(name, &mut out);
        out.push_str(": ");
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(
                    out,
                    "{{\"type\": \"gauge\", \"value\": {}}}",
                    format_f64(*v)
                );
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                    h.count, h.sum
                );
                for (i, (bound, n)) in h.buckets.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{bound}, {n}]");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// A parsed JSON value. Numbers keep their raw text so `u64` values
/// round-trip without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Str(String),
    Num(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            position: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected '{}'", b as char))
        }
    }

    fn parse_value(&mut self) -> Result<Json, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => self.parse_string().map(Json::Str),
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b) if b == b'-' || b.is_ascii_digit() || b == b'N' || b == b'i' => {
                self.parse_number()
            }
            _ => self.err("expected a value"),
        }
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .and_then(char::from_u32);
                            match hex {
                                Some(c) => {
                                    s.push(c);
                                    self.pos += 4;
                                }
                                None => return self.err("bad \\u escape"),
                            }
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| b != b'"' && b != b'\\')
                    {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(chunk) => s.push_str(chunk),
                        Err(_) => return self.err("invalid utf-8 in string"),
                    }
                }
                None => return self.err("unterminated string"),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        // Accept the f64 Debug vocabulary too: NaN, inf, -inf.
        while self.bytes.get(self.pos).is_some_and(|&b| {
            b.is_ascii_digit()
                || matches!(
                    b,
                    b'-' | b'+' | b'.' | b'e' | b'E' | b'N' | b'a' | b'i' | b'n' | b'f'
                )
        }) {
            self.pos += 1;
        }
        if self.pos == start {
            return self.err("expected a number");
        }
        match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(text) => Ok(Json::Num(text.to_owned())),
            Err(_) => self.err("invalid number"),
        }
    }

    fn parse_array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }
}

/// Parses a top-level JSON document (object of name → tagged value).
/// Exposed for the schema module, which shares the same wire format.
pub(crate) fn parse_json_object(text: &str) -> Result<Vec<(String, Json)>, ParseError> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing data after document");
    }
    match value {
        Json::Obj(fields) => Ok(fields),
        _ => Err(ParseError {
            message: "top-level value must be an object".into(),
            position: 0,
        }),
    }
}

fn num_u64(j: &Json, what: &str) -> Result<u64, ParseError> {
    match j {
        Json::Num(text) => text.parse().map_err(|_| ParseError {
            message: format!("{what}: not a u64: {text}"),
            position: 0,
        }),
        _ => Err(ParseError {
            message: format!("{what}: expected a number"),
            position: 0,
        }),
    }
}

fn num_f64(j: &Json, what: &str) -> Result<f64, ParseError> {
    match j {
        Json::Num(text) => text.parse().map_err(|_| ParseError {
            message: format!("{what}: not an f64: {text}"),
            position: 0,
        }),
        _ => Err(ParseError {
            message: format!("{what}: expected a number"),
            position: 0,
        }),
    }
}

fn field<'a>(fields: &'a [(String, Json)], key: &str, name: &str) -> Result<&'a Json, ParseError> {
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| ParseError {
            message: format!("metric {name}: missing field {key}"),
            position: 0,
        })
}

/// Parses a document produced by [`to_json`] back into a [`Snapshot`].
pub fn parse_json(text: &str) -> Result<Snapshot, ParseError> {
    let mut snapshot = Snapshot::new();
    for (name, value) in parse_json_object(text)? {
        let Json::Obj(fields) = value else {
            return Err(ParseError {
                message: format!("metric {name}: expected an object"),
                position: 0,
            });
        };
        let kind = match field(&fields, "type", &name)? {
            Json::Str(k) => k.clone(),
            _ => {
                return Err(ParseError {
                    message: format!("metric {name}: type must be a string"),
                    position: 0,
                })
            }
        };
        let parsed = match kind.as_str() {
            "counter" => MetricValue::Counter(num_u64(field(&fields, "value", &name)?, &name)?),
            "gauge" => MetricValue::Gauge(num_f64(field(&fields, "value", &name)?, &name)?),
            "histogram" => {
                let count = num_u64(field(&fields, "count", &name)?, &name)?;
                let sum = num_u64(field(&fields, "sum", &name)?, &name)?;
                let Json::Arr(raw) = field(&fields, "buckets", &name)? else {
                    return Err(ParseError {
                        message: format!("metric {name}: buckets must be an array"),
                        position: 0,
                    });
                };
                let mut buckets = Vec::with_capacity(raw.len());
                for pair in raw {
                    let Json::Arr(pair) = pair else {
                        return Err(ParseError {
                            message: format!("metric {name}: bucket must be [bound, count]"),
                            position: 0,
                        });
                    };
                    if pair.len() != 2 {
                        return Err(ParseError {
                            message: format!("metric {name}: bucket must be [bound, count]"),
                            position: 0,
                        });
                    }
                    buckets.push((num_u64(&pair[0], &name)?, num_u64(&pair[1], &name)?));
                }
                MetricValue::Histogram(HistogramSnapshot {
                    count,
                    sum,
                    buckets,
                })
            }
            other => {
                return Err(ParseError {
                    message: format!("metric {name}: unknown type {other}"),
                    position: 0,
                })
            }
        };
        snapshot.metrics.insert(name, parsed);
    }
    Ok(snapshot)
}

/// Maps a dotted metric name onto the Prometheus name charset
/// (`[a-zA-Z0-9_:]`).
fn prometheus_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Serializes a snapshot in the Prometheus text exposition format.
/// Histograms become cumulative `_bucket{le="..."}` series plus `_sum`
/// and `_count`; a `# NAME` comment preserves the dotted name.
#[must_use]
pub fn to_prometheus(snapshot: &Snapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        let flat = prometheus_name(name);
        let _ = writeln!(out, "# NAME {name}");
        let _ = writeln!(out, "# TYPE {flat} {}", value.kind());
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{flat} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{flat} {}", format_f64(*v));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (bound, n) in &h.buckets {
                    cumulative += n;
                    let _ = writeln!(out, "{flat}_bucket{{le=\"{bound}\"}} {cumulative}");
                }
                let _ = writeln!(out, "{flat}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{flat}_sum {}", h.sum);
                let _ = writeln!(out, "{flat}_count {}", h.count);
            }
        }
    }
    out
}

/// Parses text produced by [`to_prometheus`] back into a [`Snapshot`],
/// recovering dotted names from the `# NAME` comments and
/// de-accumulating the cumulative bucket series.
pub fn parse_prometheus(text: &str) -> Result<Snapshot, ParseError> {
    let mut snapshot = Snapshot::new();
    let mut lines = text.lines().enumerate().peekable();
    while let Some((line_no, line)) = lines.next() {
        let err = |message: String| ParseError {
            message,
            position: line_no + 1,
        };
        if line.trim().is_empty() {
            continue;
        }
        let Some(dotted) = line.strip_prefix("# NAME ") else {
            return Err(err(format!("expected '# NAME', got: {line}")));
        };
        let dotted = dotted.trim().to_owned();
        let Some((_, type_line)) = lines.next() else {
            return Err(err("missing # TYPE line".into()));
        };
        let kind = type_line
            .strip_prefix("# TYPE ")
            .and_then(|rest| rest.split_whitespace().nth(1))
            .ok_or_else(|| err(format!("bad # TYPE line: {type_line}")))?;
        match kind {
            "counter" | "gauge" => {
                let Some((vline_no, vline)) = lines.next() else {
                    return Err(err("missing value line".into()));
                };
                let raw = vline
                    .split_whitespace()
                    .nth(1)
                    .ok_or_else(|| err(format!("bad value line: {vline}")))?;
                let value = if kind == "counter" {
                    MetricValue::Counter(raw.parse().map_err(|_| ParseError {
                        message: format!("bad counter value: {raw}"),
                        position: vline_no + 1,
                    })?)
                } else {
                    MetricValue::Gauge(raw.parse().map_err(|_| ParseError {
                        message: format!("bad gauge value: {raw}"),
                        position: vline_no + 1,
                    })?)
                };
                snapshot.metrics.insert(dotted, value);
            }
            "histogram" => {
                let mut buckets: Vec<(u64, u64)> = Vec::new();
                let mut prev_cumulative = 0u64;
                let mut sum = None;
                let mut count = None;
                while let Some(&(hline_no, hline)) = lines.peek() {
                    if hline.starts_with('#') {
                        break;
                    }
                    lines.next();
                    let mut parts = hline.split_whitespace();
                    let (series, raw) = match (parts.next(), parts.next()) {
                        (Some(s), Some(r)) => (s, r),
                        _ => {
                            return Err(ParseError {
                                message: format!("bad histogram line: {hline}"),
                                position: hline_no + 1,
                            })
                        }
                    };
                    let herr = |message: String| ParseError {
                        message,
                        position: hline_no + 1,
                    };
                    if let Some(le) = series
                        .split_once("_bucket{le=\"")
                        .map(|(_, rest)| rest.trim_end_matches("\"}"))
                    {
                        let cumulative: u64 = raw
                            .parse()
                            .map_err(|_| herr(format!("bad bucket count: {raw}")))?;
                        if le != "+Inf" {
                            let bound: u64 = le
                                .parse()
                                .map_err(|_| herr(format!("bad bucket bound: {le}")))?;
                            let n = cumulative
                                .checked_sub(prev_cumulative)
                                .ok_or_else(|| herr("bucket counts must be cumulative".into()))?;
                            if n > 0 {
                                buckets.push((bound, n));
                            }
                        }
                        prev_cumulative = cumulative;
                    } else if series.ends_with("_sum") {
                        sum = Some(raw.parse().map_err(|_| herr(format!("bad sum: {raw}")))?);
                    } else if series.ends_with("_count") {
                        count = Some(raw.parse().map_err(|_| herr(format!("bad count: {raw}")))?);
                    } else {
                        return Err(herr(format!("unexpected histogram series: {series}")));
                    }
                }
                let (Some(sum), Some(count)) = (sum, count) else {
                    return Err(err(format!("histogram {dotted} missing _sum/_count")));
                };
                snapshot.metrics.insert(
                    dotted,
                    MetricValue::Histogram(HistogramSnapshot {
                        count,
                        sum,
                        buckets,
                    }),
                );
            }
            other => return Err(err(format!("unknown metric type: {other}"))),
        }
    }
    Ok(snapshot)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample_snapshot() -> Snapshot {
        let reg = Registry::new();
        reg.counter("sim.engine.events_processed").add(12345);
        reg.gauge("sim.engine.peak_queue_depth").set(87.5);
        let h = reg.histogram("analysis.report.duration_ns");
        for v in [0u64, 1, 3, 900, 65_000, u64::MAX / 3] {
            h.observe(v);
        }
        reg.snapshot()
    }

    #[test]
    fn json_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = to_json(&snap);
        let back = parse_json(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn json_output_is_deterministic() {
        let snap = sample_snapshot();
        assert_eq!(to_json(&snap), to_json(&snap.clone()));
    }

    #[test]
    fn prometheus_round_trip_is_exact() {
        let snap = sample_snapshot();
        let text = to_prometheus(&snap);
        let back = parse_prometheus(&text).expect("parses");
        assert_eq!(back, snap);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = Registry::new();
        let h = reg.histogram("h");
        h.observe(1);
        h.observe(1);
        h.observe(100);
        let text = to_prometheus(&reg.snapshot());
        assert!(text.contains("h_bucket{le=\"1\"} 2"), "{text}");
        assert!(text.contains("h_bucket{le=\"127\"} 3"), "{text}");
        assert!(text.contains("h_bucket{le=\"+Inf\"} 3"), "{text}");
    }

    #[test]
    fn gauge_values_round_trip_through_both_formats() {
        for v in [0.0, -1.5, 1.0 / 3.0, 1e300, f64::MIN_POSITIVE] {
            let reg = Registry::new();
            reg.gauge("g").set(v);
            let snap = reg.snapshot();
            assert_eq!(parse_json(&to_json(&snap)).unwrap().gauge("g"), Some(v));
            assert_eq!(
                parse_prometheus(&to_prometheus(&snap)).unwrap().gauge("g"),
                Some(v)
            );
        }
    }

    #[test]
    fn json_parser_rejects_garbage() {
        assert!(parse_json("not json").is_err());
        assert!(parse_json("{\"a\": {\"type\": \"counter\"}}").is_err());
        assert!(parse_json("{\"a\": {\"type\": \"nope\", \"value\": 1}}").is_err());
        assert!(parse_json("{} trailing").is_err());
    }

    #[test]
    fn json_escapes_odd_names() {
        let reg = Registry::new();
        reg.counter("weird\"name\\with\tescapes").add(7);
        let snap = reg.snapshot();
        let back = parse_json(&to_json(&snap)).expect("parses");
        assert_eq!(back, snap);
    }
}
