//! Empirical cumulative distribution functions — the workhorse plot of the
//! study (Figures 1(a), 3(a), 4, 7(a), 7(b)).

use crate::error::StatsError;
use serde::{Deserialize, Serialize};

/// An empirical CDF over a finite sample.
///
/// Construction sorts the sample once; evaluation is `O(log n)`.
///
/// # Examples
/// ```
/// # use cloudscope_stats::ecdf::Ecdf;
/// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
/// let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0])?;
/// assert_eq!(cdf.eval(2.0), 0.75);
/// assert_eq!(cdf.quantile(0.5), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample, sorting it.
    ///
    /// # Errors
    /// Returns [`StatsError::EmptyInput`] for an empty sample and
    /// [`StatsError::NonFinite`] if any value is NaN/∞.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, StatsError> {
        if sample.is_empty() {
            return Err(StatsError::EmptyInput("ecdf sample"));
        }
        if sample.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::NonFinite("ecdf sample"));
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Ok(Self { sorted: sample })
    }

    /// Builds an ECDF from any iterator of values.
    ///
    /// # Errors
    /// Same as [`Ecdf::new`].
    #[allow(clippy::should_implement_trait)] // fallible, unlike FromIterator
    pub fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Result<Self, StatsError> {
        Self::new(iter.into_iter().collect())
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always `false`: empty ECDFs cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Fraction of observations ≤ `x` (right-continuous step function).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `p`-quantile using the inverse-ECDF (type-1) definition.
    ///
    /// # Panics
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile level out of range: {p}");
        if p <= 0.0 {
            return self.sorted[0];
        }
        let n = self.sorted.len();
        let idx = ((p * n as f64).ceil() as usize).clamp(1, n) - 1;
        self.sorted[idx]
    }

    /// Median, i.e. the 0.5 quantile.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Minimum observation.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum observation.
    #[must_use]
    pub fn max(&self) -> f64 {
        *self.sorted.last().expect("non-empty")
    }

    /// The sorted sample backing the ECDF.
    #[must_use]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Emits `(x, F(x))` step points for plotting: one point per distinct
    /// value, with `F` the cumulative fraction after that value.
    #[must_use]
    pub fn step_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut points: Vec<(f64, f64)> = Vec::new();
        for (i, &v) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match points.last_mut() {
                Some(last) if last.0 == v => last.1 = f,
                _ => points.push((v, f)),
            }
        }
        points
    }

    /// Evaluates the CDF on a uniform grid of `steps + 1` points spanning
    /// `[lo, hi]`, convenient for overlaying curves with different
    /// supports (as the paper's normalized CDFs do).
    ///
    /// # Panics
    /// Panics if `lo >= hi` or `steps == 0`.
    #[must_use]
    pub fn sample_grid(&self, lo: f64, hi: f64, steps: usize) -> Vec<(f64, f64)> {
        assert!(lo < hi, "empty grid range");
        assert!(steps > 0, "grid needs at least one step");
        (0..=steps)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / steps as f64;
                (x, self.eval(x))
            })
            .collect()
    }

    /// Returns a new ECDF with every observation divided by `unit` — the
    /// paper reports *normalized* quantities relative to a private-cloud
    /// reference unit.
    ///
    /// # Errors
    /// Returns [`StatsError::NonFinite`] if `unit` is zero or non-finite.
    pub fn normalized(&self, unit: f64) -> Result<Ecdf, StatsError> {
        if unit == 0.0 || !unit.is_finite() {
            return Err(StatsError::NonFinite("normalization unit"));
        }
        Ok(Ecdf {
            sorted: self.sorted.iter().map(|v| v / unit).collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_is_right_continuous_step() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(cdf.eval(0.5), 0.0);
        assert_eq!(cdf.eval(1.0), 0.25);
        assert_eq!(cdf.eval(1.99), 0.25);
        assert_eq!(cdf.eval(2.0), 0.75);
        assert_eq!(cdf.eval(4.0), 1.0);
        assert_eq!(cdf.eval(100.0), 1.0);
    }

    #[test]
    fn quantiles_invert_eval() {
        let cdf = Ecdf::new(vec![10.0, 20.0, 30.0, 40.0]).unwrap();
        assert_eq!(cdf.quantile(0.0), 10.0);
        assert_eq!(cdf.quantile(0.25), 10.0);
        assert_eq!(cdf.quantile(0.26), 20.0);
        assert_eq!(cdf.median(), 20.0);
        assert_eq!(cdf.quantile(1.0), 40.0);
        assert_eq!(cdf.min(), 10.0);
        assert_eq!(cdf.max(), 40.0);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(Ecdf::new(vec![]), Err(StatsError::EmptyInput(_))));
        assert!(matches!(
            Ecdf::new(vec![1.0, f64::NAN]),
            Err(StatsError::NonFinite(_))
        ));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantile_level_validated() {
        let cdf = Ecdf::new(vec![1.0]).unwrap();
        let _ = cdf.quantile(1.5);
    }

    #[test]
    fn step_points_deduplicate() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(
            cdf.step_points(),
            vec![(1.0, 0.25), (2.0, 0.75), (4.0, 1.0)]
        );
    }

    #[test]
    fn grid_sampling_spans_range() {
        let cdf = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let grid = cdf.sample_grid(0.0, 4.0, 4);
        assert_eq!(grid.len(), 5);
        assert_eq!(grid[0], (0.0, 0.0));
        assert_eq!(grid[4], (4.0, 1.0));
    }

    #[test]
    fn normalization_rescales_support() {
        let cdf = Ecdf::new(vec![10.0, 20.0]).unwrap();
        let norm = cdf.normalized(10.0).unwrap();
        assert_eq!(norm.min(), 1.0);
        assert_eq!(norm.max(), 2.0);
        assert!(cdf.normalized(0.0).is_err());
    }

    #[test]
    fn unsorted_input_is_sorted() {
        let cdf = Ecdf::new(vec![3.0, 1.0, 2.0]).unwrap();
        assert_eq!(cdf.sorted_values(), &[1.0, 2.0, 3.0]);
    }
}
