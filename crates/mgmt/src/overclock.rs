//! Overclocking to absorb utilization peaks (the Insight 3 implication;
//! the paper cites cost-efficient overclocking in immersion-cooled
//! datacenters as a way to absorb hourly peaks).
//!
//! A node may temporarily boost its effective capacity by a headroom
//! factor, subject to a thermal budget: at most `max_boost_minutes` of
//! boost per rolling day. The planner decides which predicted peaks to
//! absorb with boost versus which require capacity action.

use crate::error::MgmtError;
use serde::{Deserialize, Serialize};

/// The overclocking envelope of a node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverclockPolicy {
    /// Extra effective capacity while boosted (e.g. 0.2 = +20%).
    pub headroom: f64,
    /// Thermal budget: boost minutes allowed per day.
    pub max_boost_minutes_per_day: i64,
}

impl OverclockPolicy {
    /// Creates a policy.
    ///
    /// # Errors
    /// Returns [`MgmtError::InvalidParameter`] for non-positive headroom
    /// or budget.
    pub fn new(headroom: f64, max_boost_minutes_per_day: i64) -> Result<Self, MgmtError> {
        if !(headroom > 0.0 && headroom.is_finite()) {
            return Err(MgmtError::InvalidParameter("headroom must be positive"));
        }
        if max_boost_minutes_per_day <= 0 {
            return Err(MgmtError::InvalidParameter("budget must be positive"));
        }
        Ok(Self {
            headroom,
            max_boost_minutes_per_day,
        })
    }
}

/// The outcome of simulating overclocked peak absorption over one day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverclockOutcome {
    /// Sample indices (5-minute grid) where boost was engaged.
    pub boosted_samples: Vec<usize>,
    /// Samples where demand exceeded nominal capacity and boost covered
    /// it.
    pub absorbed: usize,
    /// Samples where demand exceeded even boosted capacity, or the
    /// thermal budget was exhausted.
    pub violations: usize,
    /// Boost minutes consumed.
    pub boost_minutes_used: i64,
}

/// Simulates one day (288 five-minute samples) of node demand (percent
/// of nominal capacity) against the policy: whenever demand exceeds 100%
/// of nominal, boost engages if budget remains; demand above the boosted
/// ceiling (or with no budget left) counts as a violation.
///
/// # Errors
/// Returns [`MgmtError::InsufficientHistory`] unless exactly one day of
/// samples is provided.
pub fn simulate_day(
    policy: &OverclockPolicy,
    demand_pct: &[f64],
) -> Result<OverclockOutcome, MgmtError> {
    if demand_pct.len() != 288 {
        return Err(MgmtError::InsufficientHistory(
            "need exactly one day of 5-minute samples",
        ));
    }
    let boosted_ceiling = 100.0 * (1.0 + policy.headroom);
    let mut outcome = OverclockOutcome {
        boosted_samples: Vec::new(),
        absorbed: 0,
        violations: 0,
        boost_minutes_used: 0,
    };
    for (i, &d) in demand_pct.iter().enumerate() {
        if d <= 100.0 {
            continue;
        }
        let budget_left = outcome.boost_minutes_used + 5 <= policy.max_boost_minutes_per_day;
        if d <= boosted_ceiling && budget_left {
            outcome.boosted_samples.push(i);
            outcome.boost_minutes_used += 5;
            outcome.absorbed += 1;
        } else {
            outcome.violations += 1;
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hourly-peak day: 10 minutes above nominal at every hour mark
    /// during 8:00-18:00.
    fn hourly_peak_day(peak_pct: f64) -> Vec<f64> {
        (0..288)
            .map(|i| {
                let minute = i * 5;
                let hour = minute / 60;
                let in_work = (8..18).contains(&hour);
                let at_mark = minute % 60 < 10;
                if in_work && at_mark {
                    peak_pct
                } else {
                    60.0
                }
            })
            .collect()
    }

    #[test]
    fn absorbs_hourly_peaks_within_budget() {
        let policy = OverclockPolicy::new(0.25, 180).unwrap();
        let outcome = simulate_day(&policy, &hourly_peak_day(115.0)).unwrap();
        // 10 work hours x 10 boost minutes = 100 minutes, within budget.
        assert_eq!(outcome.violations, 0);
        assert_eq!(outcome.absorbed, 20, "2 samples per hour x 10 hours");
        assert_eq!(outcome.boost_minutes_used, 100);
    }

    #[test]
    fn budget_exhaustion_causes_violations() {
        let policy = OverclockPolicy::new(0.25, 30).unwrap();
        let outcome = simulate_day(&policy, &hourly_peak_day(115.0)).unwrap();
        assert_eq!(outcome.boost_minutes_used, 30);
        assert_eq!(outcome.absorbed, 6);
        assert_eq!(outcome.violations, 14);
    }

    #[test]
    fn peaks_above_boosted_ceiling_violate() {
        let policy = OverclockPolicy::new(0.10, 600).unwrap();
        let outcome = simulate_day(&policy, &hourly_peak_day(130.0)).unwrap();
        assert_eq!(outcome.absorbed, 0);
        assert_eq!(outcome.violations, 20);
        assert_eq!(outcome.boost_minutes_used, 0);
    }

    #[test]
    fn quiet_day_needs_no_boost() {
        let policy = OverclockPolicy::new(0.2, 120).unwrap();
        let outcome = simulate_day(&policy, &vec![50.0; 288]).unwrap();
        assert!(outcome.boosted_samples.is_empty());
        assert_eq!(outcome.violations, 0);
    }

    #[test]
    fn validation() {
        assert!(OverclockPolicy::new(0.0, 60).is_err());
        assert!(OverclockPolicy::new(0.2, 0).is_err());
        let policy = OverclockPolicy::new(0.2, 60).unwrap();
        assert!(simulate_day(&policy, &[100.0; 10]).is_err());
    }
}
