//! The trace container: everything one analysis run consumes.
//!
//! A [`Trace`] bundles the platform topology, the subscription population,
//! every VM deployment record, and per-VM utilization telemetry for the
//! studied week, with dense secondary indices (by subscription, node,
//! region, and service) so the characterization pipeline never scans.

use crate::error::ModelError;
use crate::fast_hash::FastMap;
use crate::ids::{NodeId, RegionId, ServiceId, SubscriptionId, VmId};
use crate::subscription::{CloudKind, Subscription};
use crate::telemetry::UtilSeries;
use crate::time::{SimTime, SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use crate::topology::Topology;
use crate::vm::VmRecord;
use cloudscope_par::Parallelism;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Where a trace's telemetry lives: resident in memory, or behind a
/// lazy [`TelemetrySource`] (an out-of-core chunk store) that loads
/// series on demand. A presence vector makes `has_util` and telemetry
/// counting cheap in both representations, so the metadata-only
/// analyses never touch the source.
#[derive(Debug, Clone)]
enum TelemetryColumn {
    /// Every series held in memory, index-aligned with the VM records.
    Resident(Vec<Option<UtilSeries>>),
    /// Series loaded on demand; `present[vm]` says whether one exists.
    Lazy {
        present: Vec<bool>,
        source: Arc<dyn TelemetrySource>,
    },
}

impl Default for TelemetryColumn {
    fn default() -> Self {
        Self::Resident(Vec::new())
    }
}

impl TelemetryColumn {
    fn get(&self, idx: usize) -> Option<UtilSeries> {
        match self {
            Self::Resident(col) => col.get(idx)?.clone(),
            Self::Lazy { present, source } => {
                if !*present.get(idx)? {
                    return None;
                }
                source.load(VmId::new(idx as u64))
            }
        }
    }

    fn has(&self, idx: usize) -> bool {
        match self {
            Self::Resident(col) => col.get(idx).is_some_and(Option::is_some),
            Self::Lazy { present, .. } => present.get(idx).copied().unwrap_or(false),
        }
    }

    fn present_count(&self) -> usize {
        match self {
            Self::Resident(col) => col.iter().filter(|u| u.is_some()).count(),
            Self::Lazy { present, .. } => present.iter().filter(|&&p| p).count(),
        }
    }

    /// Builder-side append. The builder starts from `Trace::default()`
    /// and a source can only be attached to a finished trace, so the
    /// column is always resident here.
    fn resident_mut(&mut self) -> &mut Vec<Option<UtilSeries>> {
        match self {
            Self::Resident(col) => col,
            Self::Lazy { .. } => unreachable!("the builder always holds resident telemetry"),
        }
    }
}

/// The one interface through which analyses consume per-VM telemetry,
/// whichever way it arrives: resident in a [`Trace`], out-of-core in
/// `cloudscope-store`'s compressed chunk files (loaded on demand through
/// a bounded cache), or live from `cloudscope-ingest`'s sliding-window
/// session. A [`Trace`] can also be re-pointed at a lazy source so the
/// existing analyses run out-of-core unchanged.
///
/// Implementations must be deterministic — `load` returns the exact
/// series the resident trace would have held (or `None`), every time —
/// so every representation is observationally identical to a resident
/// one.
pub trait TelemetrySource: std::fmt::Debug + Send + Sync {
    /// The series for `id`, or `None` if the VM has no telemetry.
    fn load(&self, id: VmId) -> Option<UtilSeries>;

    /// `true` if the VM has telemetry. The default loads the series and
    /// discards it; implementations with a cheaper presence check (a
    /// bitmap, an id index) should override it so candidate scans never
    /// materialize samples.
    fn has(&self, id: VmId) -> bool {
        self.load(id).is_some()
    }
}

/// A resident (or lazily re-pointed) trace is itself a telemetry
/// source: `load` is [`Trace::util`], `has` the cheap presence check.
/// This is what lets one classifier call run batch, out-of-core, and
/// streaming without caring which representation backs it.
impl TelemetrySource for Trace {
    fn load(&self, id: VmId) -> Option<UtilSeries> {
        self.util(id)
    }

    fn has(&self, id: VmId) -> bool {
        self.has_util(id)
    }
}

/// A complete one-week workload trace for one or both clouds.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Trace {
    topology: Topology,
    subscriptions: Vec<Subscription>,
    vms: Vec<VmRecord>,
    util: TelemetryColumn,
    by_subscription: FastMap<SubscriptionId, Vec<VmId>>,
    by_node: FastMap<NodeId, Vec<VmId>>,
    by_region: FastMap<RegionId, Vec<VmId>>,
    by_service: FastMap<ServiceId, Vec<VmId>>,
}

impl Trace {
    /// Starts building a trace over the given topology.
    #[must_use]
    pub fn builder(topology: Topology) -> TraceBuilder {
        TraceBuilder {
            trace: Trace {
                topology,
                ..Trace::default()
            },
        }
    }

    /// The platform topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// All subscriptions, indexed by [`SubscriptionId`].
    #[must_use]
    pub fn subscriptions(&self) -> &[Subscription] {
        &self.subscriptions
    }

    /// All VM records, indexed by [`VmId`].
    #[must_use]
    pub fn vms(&self) -> &[VmRecord] {
        &self.vms
    }

    /// Looks up one VM record.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] for ids not in this trace.
    pub fn vm(&self, id: VmId) -> Result<&VmRecord, ModelError> {
        self.vms
            .get(id.as_usize())
            .ok_or(ModelError::UnknownEntity("vm", id.index()))
    }

    /// Looks up one subscription.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] for ids not in this trace.
    pub fn subscription(&self, id: SubscriptionId) -> Result<&Subscription, ModelError> {
        self.subscriptions
            .get(id.as_usize())
            .ok_or(ModelError::UnknownEntity(
                "subscription",
                u64::from(id.index()),
            ))
    }

    /// Utilization telemetry for a VM, if the monitor captured any.
    ///
    /// Returns the series by value: on a resident trace this is a cheap
    /// refcount clone of the shared sample buffer; on a lazy trace (see
    /// [`Trace::attach_telemetry_source`]) the series is loaded from the
    /// out-of-core source on demand. Either way the samples are
    /// bit-identical, so analyses are representation-agnostic.
    #[must_use]
    pub fn util(&self, id: VmId) -> Option<UtilSeries> {
        self.util.get(id.as_usize())
    }

    /// `true` if the VM has telemetry — without loading the series, so
    /// presence scans stay cheap on an out-of-core trace.
    #[must_use]
    pub fn has_util(&self, id: VmId) -> bool {
        self.util.has(id.as_usize())
    }

    /// `true` if telemetry is served by a lazy [`TelemetrySource`]
    /// rather than held resident.
    #[must_use]
    pub fn telemetry_is_lazy(&self) -> bool {
        matches!(self.util, TelemetryColumn::Lazy { .. })
    }

    /// Replaces the telemetry column with a lazy source: `present[i]`
    /// says whether VM `i` has a series, and `source` loads it on
    /// demand. Any resident telemetry is dropped — this is how a trace
    /// read from the on-disk store keeps only metadata in memory.
    ///
    /// # Errors
    /// Returns [`ModelError::InconsistentTrace`] if `present` is not
    /// index-aligned with the VM records.
    pub fn attach_telemetry_source(
        &mut self,
        present: Vec<bool>,
        source: Arc<dyn TelemetrySource>,
    ) -> Result<(), ModelError> {
        if present.len() != self.vms.len() {
            return Err(ModelError::InconsistentTrace(format!(
                "telemetry presence for {} VMs attached to a trace of {}",
                present.len(),
                self.vms.len()
            )));
        }
        self.util = TelemetryColumn::Lazy { present, source };
        Ok(())
    }

    /// The cloud a VM belongs to (through its subscription).
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] for ids not in this trace.
    pub fn cloud_of(&self, id: VmId) -> Result<CloudKind, ModelError> {
        let vm = self.vm(id)?;
        Ok(self.subscription(vm.subscription)?.cloud)
    }

    /// Iterates over VM records belonging to the given cloud.
    pub fn vms_of(&self, cloud: CloudKind) -> impl Iterator<Item = &VmRecord> {
        self.vms.iter().filter(move |vm| {
            self.subscriptions
                .get(vm.subscription.as_usize())
                .is_some_and(|s| s.cloud == cloud)
        })
    }

    /// Subscriptions belonging to the given cloud.
    pub fn subscriptions_of(&self, cloud: CloudKind) -> impl Iterator<Item = &Subscription> {
        self.subscriptions.iter().filter(move |s| s.cloud == cloud)
    }

    /// VMs of a subscription (empty slice if none).
    #[must_use]
    pub fn vms_of_subscription(&self, id: SubscriptionId) -> &[VmId] {
        self.by_subscription.get(&id).map_or(&[], Vec::as_slice)
    }

    /// VMs ever placed on a node (empty slice if none).
    #[must_use]
    pub fn vms_on_node(&self, id: NodeId) -> &[VmId] {
        self.by_node.get(&id).map_or(&[], Vec::as_slice)
    }

    /// VMs deployed into a region (empty slice if none).
    #[must_use]
    pub fn vms_in_region(&self, id: RegionId) -> &[VmId] {
        self.by_region.get(&id).map_or(&[], Vec::as_slice)
    }

    /// VMs of a logical service (empty slice if none).
    #[must_use]
    pub fn vms_of_service(&self, id: ServiceId) -> &[VmId] {
        self.by_service.get(&id).map_or(&[], Vec::as_slice)
    }

    /// All service ids present in the trace.
    pub fn services(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.by_service.keys().copied()
    }

    /// All node ids that hosted at least one VM.
    pub fn occupied_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.by_node.keys().copied()
    }

    /// Derives the node-level utilization series for one node over the
    /// trace week: the core-weighted sum of hosted VMs' utilization divided
    /// by the node's physical cores — how a host monitor would see it.
    ///
    /// Samples where a VM is not alive contribute zero. VMs without
    /// telemetry are skipped.
    ///
    /// # Errors
    /// Returns [`ModelError::UnknownEntity`] if the node is not in the
    /// topology.
    pub fn node_utilization(&self, node: NodeId) -> Result<UtilSeries, ModelError> {
        let node_info = self.topology.node(node)?;
        let sku = self.topology.cluster(node_info.cluster)?.sku;
        let mut acc = vec![0.0f64; SAMPLES_PER_WEEK];
        for &vm_id in self.vms_on_node(node) {
            let vm = &self.vms[vm_id.as_usize()];
            let Some(series) = self.util(vm_id) else {
                continue;
            };
            let vm_cores = f64::from(vm.size.cores());
            let base = series.start().minutes() / SAMPLE_INTERVAL_MINUTES;
            for (i, v) in series.iter().enumerate() {
                // Missing samples (NaN) contribute nothing rather than
                // poisoning the whole node series.
                if !v.is_finite() {
                    continue;
                }
                let global = base + i as i64;
                if (0..SAMPLES_PER_WEEK as i64).contains(&global) {
                    let t = SimTime::from_minutes(global * SAMPLE_INTERVAL_MINUTES);
                    if vm.alive_at(t) {
                        acc[global as usize] += f64::from(v) * vm_cores;
                    }
                }
            }
        }
        let node_cores = f64::from(sku.cores);
        Ok(UtilSeries::from_percentages(
            SimTime::ZERO,
            acc.into_iter().map(|sum| (sum / node_cores) as f32),
        ))
    }

    /// Summary counts, handy for logging and sanity checks.
    #[must_use]
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for cloud in CloudKind::BOTH {
            let (vm_slot, sub_slot) = match cloud {
                CloudKind::Private => (&mut stats.private_vms, &mut stats.private_subscriptions),
                CloudKind::Public => (&mut stats.public_vms, &mut stats.public_subscriptions),
            };
            *vm_slot = self.vms_of(cloud).count();
            *sub_slot = self.subscriptions_of(cloud).count();
        }
        stats.vms_with_telemetry = self.util.present_count();
        stats.services = self.by_service.len();
        stats.occupied_nodes = self.by_node.len();
        stats
    }
}

/// Summary counts over a [`Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TraceStats {
    /// VMs owned by private-cloud subscriptions.
    pub private_vms: usize,
    /// VMs owned by public-cloud subscriptions.
    pub public_vms: usize,
    /// Private-cloud subscriptions.
    pub private_subscriptions: usize,
    /// Public-cloud subscriptions.
    pub public_subscriptions: usize,
    /// VMs for which telemetry exists.
    pub vms_with_telemetry: usize,
    /// Distinct logical services.
    pub services: usize,
    /// Nodes that hosted at least one VM.
    pub occupied_nodes: usize,
}

/// Builder for [`Trace`] enforcing referential integrity as records arrive.
#[derive(Debug)]
pub struct TraceBuilder {
    trace: Trace,
}

impl TraceBuilder {
    /// Registers a subscription. Ids must arrive densely in order.
    ///
    /// # Errors
    /// Returns [`ModelError::InconsistentTrace`] if the id is out of order.
    pub fn add_subscription(&mut self, sub: Subscription) -> Result<(), ModelError> {
        if sub.id.as_usize() != self.trace.subscriptions.len() {
            return Err(ModelError::InconsistentTrace(format!(
                "subscription {} arrived out of order (expected index {})",
                sub.id,
                self.trace.subscriptions.len()
            )));
        }
        self.trace.subscriptions.push(sub);
        Ok(())
    }

    /// Registers a VM record and optional telemetry. Ids must arrive
    /// densely in order, the subscription must exist, and placement must
    /// reference topology entities.
    ///
    /// # Errors
    /// Returns [`ModelError::InconsistentTrace`] on any integrity
    /// violation.
    pub fn add_vm(&mut self, vm: VmRecord, util: Option<UtilSeries>) -> Result<(), ModelError> {
        validate_record(&self.trace, self.trace.vms.len(), &vm)?;
        if let Some(node) = vm.node {
            self.trace.by_node.entry(node).or_default().push(vm.id);
        }
        self.trace
            .by_subscription
            .entry(vm.subscription)
            .or_default()
            .push(vm.id);
        self.trace
            .by_region
            .entry(vm.region)
            .or_default()
            .push(vm.id);
        self.trace
            .by_service
            .entry(vm.service)
            .or_default()
            .push(vm.id);
        self.trace.vms.push(vm);
        self.trace.util.resident_mut().push(util);
        Ok(())
    }

    /// Bulk [`TraceBuilder::add_vm`]: registers a batch of records (and
    /// their telemetry, index-aligned) with validation sharded over range
    /// chunks and the four secondary indices built concurrently, one
    /// index per worker. Behaviour is identical to calling `add_vm` for
    /// each record in order — the same integrity checks run, the first
    /// violation (in record order) is reported, and index insertion order
    /// matches the serial loop exactly — so traces built either way are
    /// indistinguishable, at any worker count.
    ///
    /// # Errors
    /// Returns [`ModelError::InconsistentTrace`] on the first integrity
    /// violation in record order, or if `records` and `util` lengths
    /// disagree. On error nothing is added.
    pub fn add_vms_bulk(
        &mut self,
        records: Vec<VmRecord>,
        util: Vec<Option<UtilSeries>>,
        par: &Parallelism,
    ) -> Result<(), ModelError> {
        if records.len() != util.len() {
            return Err(ModelError::InconsistentTrace(format!(
                "bulk add: {} records but {} telemetry slots",
                records.len(),
                util.len()
            )));
        }
        let base = self.trace.vms.len();
        let trace = &self.trace;
        let records_ref = &records;
        // Validation is pure reads over the immutable topology and the
        // already-registered subscriptions, so chunks are independent.
        // Ranges come back in ascending order: the first error found is
        // the one the serial loop would have hit first.
        par.par_map_ranges(records.len(), |range| {
            for i in range {
                validate_record(trace, base + i, &records_ref[i])?;
            }
            Ok(())
        })
        .into_iter()
        .collect::<Result<Vec<()>, ModelError>>()?;

        // One task per secondary index. Each walks the batch in record
        // order, so per-key id lists and key first-appearance order are
        // exactly what the serial push loop produces.
        let kinds = [
            IndexKind::Subscription,
            IndexKind::Node,
            IndexKind::Region,
            IndexKind::Service,
        ];
        for partial in par.par_map(&kinds, |kind| kind.build(records_ref)) {
            partial.merge_into(&mut self.trace);
        }
        self.trace.vms.extend(records);
        self.trace.util.resident_mut().extend(util);
        Ok(())
    }

    /// Finishes building.
    #[must_use]
    pub fn build(self) -> Trace {
        self.trace
    }
}

/// The integrity checks [`TraceBuilder::add_vm`] enforces, against the
/// expected dense index `expected` — shared by the serial and bulk paths
/// so they cannot drift.
fn validate_record(trace: &Trace, expected: usize, vm: &VmRecord) -> Result<(), ModelError> {
    if vm.id.as_usize() != expected {
        return Err(ModelError::InconsistentTrace(format!(
            "vm {} arrived out of order (expected index {expected})",
            vm.id,
        )));
    }
    if vm.subscription.as_usize() >= trace.subscriptions.len() {
        return Err(ModelError::InconsistentTrace(format!(
            "vm {} references unknown subscription {}",
            vm.id, vm.subscription
        )));
    }
    let cluster = trace
        .topology
        .cluster(vm.cluster)
        .map_err(|e| ModelError::InconsistentTrace(e.to_string()))?;
    if cluster.region != vm.region {
        return Err(ModelError::InconsistentTrace(format!(
            "vm {} region {} disagrees with cluster {} region {}",
            vm.id, vm.region, vm.cluster, cluster.region
        )));
    }
    if let Some(node) = vm.node {
        let node_info = trace
            .topology
            .node(node)
            .map_err(|e| ModelError::InconsistentTrace(e.to_string()))?;
        if node_info.cluster != vm.cluster {
            return Err(ModelError::InconsistentTrace(format!(
                "vm {} node {} is not in cluster {}",
                vm.id, node, vm.cluster
            )));
        }
    }
    if let (Some(end), created) = (vm.ended, vm.created) {
        if end < created {
            return Err(ModelError::InconsistentTrace(format!(
                "vm {} ends before it starts",
                vm.id
            )));
        }
    }
    Ok(())
}

/// Which secondary index a bulk-assembly task builds.
#[derive(Debug, Clone, Copy)]
enum IndexKind {
    Subscription,
    Node,
    Region,
    Service,
}

/// One index's contribution from a record batch: `(key, ids)` pairs in
/// key first-appearance order, ids in record order — the order a serial
/// `entry().push()` loop would have produced.
enum IndexPartial {
    Subscription(Vec<(SubscriptionId, Vec<VmId>)>),
    Node(Vec<(NodeId, Vec<VmId>)>),
    Region(Vec<(RegionId, Vec<VmId>)>),
    Service(Vec<(ServiceId, Vec<VmId>)>),
}

impl IndexKind {
    fn build(self, records: &[VmRecord]) -> IndexPartial {
        match self {
            IndexKind::Subscription => IndexPartial::Subscription(group_in_order(
                records.iter().map(|vm| (vm.subscription, vm.id)),
            )),
            IndexKind::Node => IndexPartial::Node(group_in_order(
                records
                    .iter()
                    .filter_map(|vm| vm.node.map(|node| (node, vm.id))),
            )),
            IndexKind::Region => {
                IndexPartial::Region(group_in_order(records.iter().map(|vm| (vm.region, vm.id))))
            }
            IndexKind::Service => {
                IndexPartial::Service(group_in_order(records.iter().map(|vm| (vm.service, vm.id))))
            }
        }
    }
}

impl IndexPartial {
    /// Folds this partial into the trace's maps, preserving key
    /// first-appearance order for traces that already hold entries.
    fn merge_into(self, trace: &mut Trace) {
        fn fold<K: std::hash::Hash + Eq>(
            map: &mut FastMap<K, Vec<VmId>>,
            pairs: Vec<(K, Vec<VmId>)>,
        ) {
            for (key, ids) in pairs {
                map.entry(key).or_default().extend(ids);
            }
        }
        match self {
            IndexPartial::Subscription(pairs) => fold(&mut trace.by_subscription, pairs),
            IndexPartial::Node(pairs) => fold(&mut trace.by_node, pairs),
            IndexPartial::Region(pairs) => fold(&mut trace.by_region, pairs),
            IndexPartial::Service(pairs) => fold(&mut trace.by_service, pairs),
        }
    }
}

/// Groups `(key, id)` pairs into per-key id vectors, keys ordered by
/// first appearance, ids kept in input order.
fn group_in_order<K: std::hash::Hash + Eq + Copy>(
    pairs: impl Iterator<Item = (K, VmId)>,
) -> Vec<(K, Vec<VmId>)> {
    let mut slot_of: FastMap<K, usize> = FastMap::default();
    let mut grouped: Vec<(K, Vec<VmId>)> = Vec::new();
    for (key, id) in pairs {
        let slot = *slot_of.entry(key).or_insert_with(|| {
            grouped.push((key, Vec::new()));
            grouped.len() - 1
        });
        grouped[slot].1.push(id);
    }
    grouped
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::*;
    use crate::subscription::PartyKind;
    use crate::topology::NodeSku;
    use crate::vm::{Priority, ServiceModel, VmRecord, VmSize};

    fn topo() -> Topology {
        let mut b = Topology::builder();
        let r = b.add_region("us-west", -8, "US");
        let d = b.add_datacenter(r);
        b.add_cluster(d, CloudKind::Private, NodeSku::new(10, 64.0), 1, 2);
        b.build()
    }

    fn record(id: u64, sub: u32, node: Option<u32>) -> VmRecord {
        VmRecord {
            id: VmId::new(id),
            subscription: SubscriptionId::new(sub),
            service: ServiceId::new(0),
            size: VmSize::new(5, 16.0),
            priority: Priority::OnDemand,
            service_model: ServiceModel::Iaas,
            region: RegionId::new(0),
            cluster: ClusterId::new(0),
            node: node.map(NodeId::new),
            created: SimTime::ZERO,
            ended: None,
        }
    }

    #[test]
    fn builder_wires_indices() {
        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        b.add_vm(record(0, 0, Some(0)), None).unwrap();
        b.add_vm(record(1, 0, Some(0)), None).unwrap();
        let t = b.build();
        assert_eq!(t.vms_of_subscription(SubscriptionId::new(0)).len(), 2);
        assert_eq!(t.vms_on_node(NodeId::new(0)).len(), 2);
        assert_eq!(t.vms_in_region(RegionId::new(0)).len(), 2);
        assert_eq!(t.vms_of_service(ServiceId::new(0)).len(), 2);
        assert_eq!(t.cloud_of(VmId::new(0)).unwrap(), CloudKind::Private);
        let stats = t.stats();
        assert_eq!(stats.private_vms, 2);
        assert_eq!(stats.public_vms, 0);
        assert_eq!(stats.occupied_nodes, 1);
    }

    /// Bulk assembly must be indistinguishable from the serial add_vm
    /// loop: same records, same index contents, same iteration order —
    /// at any worker count.
    #[test]
    fn bulk_add_matches_sequential() {
        let mut topo_b = Topology::builder();
        let r0 = topo_b.add_region("us-west", -8, "US");
        let r1 = topo_b.add_region("eu-north", 1, "EU");
        let d0 = topo_b.add_datacenter(r0);
        let d1 = topo_b.add_datacenter(r1);
        topo_b.add_cluster(d0, CloudKind::Private, NodeSku::new(10, 64.0), 1, 4);
        topo_b.add_cluster(d1, CloudKind::Public, NodeSku::new(10, 64.0), 1, 4);
        let topo = topo_b.build();

        let mut records = Vec::new();
        let mut util = Vec::new();
        for i in 0..200u64 {
            let mut vm = record(i, (i % 3) as u32, None);
            // Alternate regions/clusters/nodes so every index gets
            // interleaved keys, and leave some VMs unplaced.
            if i % 2 == 0 {
                vm.region = RegionId::new(1);
                vm.cluster = ClusterId::new(1);
                vm.node = (i % 4 == 0).then(|| NodeId::new(4 + (i % 4) as u32));
            } else {
                vm.node = (i % 3 == 0).then(|| NodeId::new((i % 4) as u32));
            }
            vm.service = ServiceId::new((i % 5) as u32);
            util.push(
                (i % 7 == 0)
                    .then(|| UtilSeries::from_percentages(SimTime::ZERO, [i as f32 % 100.0])),
            );
            records.push(vm);
        }

        let subscriptions = || {
            (0..3).map(|s| {
                Subscription::new(
                    SubscriptionId::new(s),
                    CloudKind::Private,
                    PartyKind::FirstParty,
                )
            })
        };
        let mut serial = Trace::builder(topo.clone());
        for s in subscriptions() {
            serial.add_subscription(s).unwrap();
        }
        for (vm, u) in records.iter().zip(&util) {
            serial.add_vm(vm.clone(), u.clone()).unwrap();
        }
        let serial = serial.build();

        for workers in [1, 3, 8] {
            let mut bulk = Trace::builder(topo.clone());
            for s in subscriptions() {
                bulk.add_subscription(s).unwrap();
            }
            bulk.add_vms_bulk(
                records.clone(),
                util.clone(),
                &Parallelism::with_workers(workers),
            )
            .unwrap();
            let bulk = bulk.build();
            assert_eq!(bulk.vms(), serial.vms());
            assert_eq!(
                bulk.services().collect::<Vec<_>>(),
                serial.services().collect::<Vec<_>>(),
                "service iteration order must match at {workers} workers"
            );
            assert_eq!(
                bulk.occupied_nodes().collect::<Vec<_>>(),
                serial.occupied_nodes().collect::<Vec<_>>(),
                "node index order must match at {workers} workers"
            );
            for s in 0..3 {
                assert_eq!(
                    bulk.vms_of_subscription(SubscriptionId::new(s)),
                    serial.vms_of_subscription(SubscriptionId::new(s))
                );
            }
            for r in 0..2 {
                assert_eq!(
                    bulk.vms_in_region(RegionId::new(r)),
                    serial.vms_in_region(RegionId::new(r))
                );
            }
            assert_eq!(
                format!("{:?}", bulk.stats()),
                format!("{:?}", serial.stats())
            );
        }
    }

    /// The bulk path reports the same first error the serial loop would,
    /// and leaves the builder untouched on failure.
    #[test]
    fn bulk_add_error_parity_and_atomicity() {
        let par = Parallelism::with_workers(4);
        let serial_err = |records: &[VmRecord]| {
            let mut b = Trace::builder(topo());
            b.add_subscription(Subscription::new(
                SubscriptionId::new(0),
                CloudKind::Private,
                PartyKind::FirstParty,
            ))
            .unwrap();
            records
                .iter()
                .map(|vm| b.add_vm(vm.clone(), None))
                .find_map(Result::err)
                .expect("serial loop should fail")
        };
        // Two violations — the earlier (unknown node at index 1) must win
        // over the later (unknown subscription at index 3).
        let mut records: Vec<VmRecord> = (0..4).map(|i| record(i, 0, None)).collect();
        records[1].node = Some(NodeId::new(99));
        records[3].subscription = SubscriptionId::new(9);

        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        let utils = vec![None; records.len()];
        let err = b
            .add_vms_bulk(records.clone(), utils, &par)
            .expect_err("bulk must reject the batch");
        assert_eq!(err.to_string(), serial_err(&records).to_string());
        let t = b.build();
        assert!(t.vms().is_empty(), "failed bulk add must not leave records");

        // Length mismatch is rejected before any validation.
        let mut b = Trace::builder(topo());
        assert!(b
            .add_vms_bulk(vec![record(0, 0, None)], vec![], &par)
            .is_err());
    }

    #[test]
    fn out_of_order_ids_rejected() {
        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        assert!(b.add_vm(record(5, 0, None), None).is_err());
        assert!(b
            .add_subscription(Subscription::new(
                SubscriptionId::new(7),
                CloudKind::Public,
                PartyKind::ThirdParty,
            ))
            .is_err());
    }

    #[test]
    fn dangling_references_rejected() {
        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        // Unknown subscription.
        assert!(b.add_vm(record(0, 9, None), None).is_err());
        // Unknown node.
        assert!(b.add_vm(record(0, 0, Some(99)), None).is_err());
        // End before start.
        let mut bad = record(0, 0, None);
        bad.created = SimTime::from_hours(2);
        bad.ended = Some(SimTime::from_hours(1));
        assert!(b.add_vm(bad, None).is_err());
    }

    #[test]
    fn node_utilization_core_weighted() {
        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        // Two 5-core VMs on a 10-core node, both at 40% for the first two
        // samples -> node should read 40%.
        let util = UtilSeries::from_percentages(SimTime::ZERO, [40.0, 40.0]);
        b.add_vm(record(0, 0, Some(0)), Some(util.clone())).unwrap();
        b.add_vm(record(1, 0, Some(0)), Some(util)).unwrap();
        let t = b.build();
        let node_util = t.node_utilization(NodeId::new(0)).unwrap();
        assert_eq!(node_util.get(0), Some(40.0));
        assert_eq!(node_util.get(1), Some(40.0));
        assert_eq!(node_util.get(2), Some(0.0));
        assert_eq!(node_util.len(), SAMPLES_PER_WEEK);
    }

    #[test]
    fn node_utilization_respects_lifetime() {
        let mut b = Trace::builder(topo());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ))
        .unwrap();
        let mut vm = record(0, 0, Some(0));
        vm.ended = Some(SimTime::from_minutes(5));
        // Telemetry claims 80% for 3 samples, but the VM dies after one.
        let util = UtilSeries::from_percentages(SimTime::ZERO, [80.0, 80.0, 80.0]);
        b.add_vm(vm, Some(util)).unwrap();
        let t = b.build();
        let node_util = t.node_utilization(NodeId::new(0)).unwrap();
        assert_eq!(node_util.get(0), Some(40.0), "5 of 10 cores at 80%");
        assert_eq!(node_util.get(1), Some(0.0), "vm already terminated");
    }

    #[test]
    fn lookups_error_on_unknown_ids() {
        let t = Trace::builder(topo()).build();
        assert!(t.vm(VmId::new(0)).is_err());
        assert!(t.subscription(SubscriptionId::new(0)).is_err());
        assert!(t.node_utilization(NodeId::new(42)).is_err());
        assert!(t.util(VmId::new(3)).is_none());
        assert!(t.vms_of_subscription(SubscriptionId::new(9)).is_empty());
    }
}
