//! Shared helpers for the store integration suites: unique temp
//! directories and deterministic seed-driven trace construction.

#![allow(dead_code)]

use cloudscope_model::ids::{ClusterId, NodeId, RegionId, ServiceId, SubscriptionId, VmId};
use cloudscope_model::subscription::{CloudKind, PartyKind, Subscription};
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::time::SimTime;
use cloudscope_model::topology::{NodeSku, Topology};
use cloudscope_model::trace::Trace;
use cloudscope_model::vm::{Priority, ServiceModel, VmRecord, VmSize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh, empty, uniquely named directory.
    pub fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "cloudscope-store-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// SplitMix64: a tiny deterministic stream for seed-driven records.
pub fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed test topology: two regions, three clusters (0 and 1 in
/// region 0, cluster 2 in region 1), four nodes per cluster.
pub fn topology() -> Topology {
    let mut b = Topology::builder();
    let r0 = b.add_region("us-west", -8, "US");
    let r1 = b.add_region("eu-north", 1, "EU");
    let d0 = b.add_datacenter(r0);
    let d1 = b.add_datacenter(r1);
    b.add_cluster(d0, CloudKind::Private, NodeSku::new(48, 384.0), 2, 2);
    b.add_cluster(d0, CloudKind::Public, NodeSku::new(64, 512.0), 2, 2);
    b.add_cluster(d1, CloudKind::Public, NodeSku::new(64, 512.0), 2, 2);
    b.build()
}

/// The three test subscriptions (dense ids, one private).
pub fn subscriptions() -> Vec<Subscription> {
    vec![
        Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Private,
            PartyKind::FirstParty,
        ),
        Subscription::new(
            SubscriptionId::new(1),
            CloudKind::Public,
            PartyKind::ThirdParty,
        ),
        Subscription::new(
            SubscriptionId::new(2),
            CloudKind::Public,
            PartyKind::FirstParty,
        ),
    ]
}

/// Builds one VM record plus (maybe) a telemetry series from a seed.
/// Every field — placement, lifetime, series start/length/gaps — is a
/// pure function of `(id, seed)`, covering negative starts, series
/// spilling past the trace week, missing samples, and empty series.
pub fn vm_from_seed(id: u64, seed: u64) -> (VmRecord, Option<UtilSeries>) {
    let mut s = seed;
    let cluster = (splitmix(&mut s) % 3) as u32;
    let region = u32::from(cluster == 2);
    let sub = (splitmix(&mut s) % 3) as u32;
    let node = (!splitmix(&mut s).is_multiple_of(4))
        .then(|| NodeId::new(cluster * 4 + (splitmix(&mut s) % 4) as u32));
    let created = splitmix(&mut s) as i64 % 12_000 - 2_000;
    let ended = (splitmix(&mut s).is_multiple_of(3))
        .then(|| SimTime::from_minutes(created + (splitmix(&mut s) % 9_000) as i64));
    let record = VmRecord {
        id: VmId::new(id),
        subscription: SubscriptionId::new(sub),
        service: ServiceId::new((splitmix(&mut s) % 7) as u32),
        size: VmSize::new(
            1 + (splitmix(&mut s) % 64) as u32,
            0.5 + (splitmix(&mut s) % 512) as f64,
        ),
        priority: if splitmix(&mut s).is_multiple_of(4) {
            Priority::Spot
        } else {
            Priority::OnDemand
        },
        service_model: match splitmix(&mut s) % 3 {
            0 => ServiceModel::Iaas,
            1 => ServiceModel::Paas,
            _ => ServiceModel::Saas,
        },
        region: RegionId::new(region),
        cluster: ClusterId::new(cluster),
        node,
        created: SimTime::from_minutes(created),
        ended,
    };
    let util = (!splitmix(&mut s).is_multiple_of(5)).then(|| {
        let start = created.max(-600) / 5 * 5;
        let len = (splitmix(&mut s) % 600) as usize;
        let mut vs = s;
        UtilSeries::from_percentages(
            SimTime::from_minutes(start),
            (0..len).map(move |_| {
                let v = splitmix(&mut vs);
                if v.is_multiple_of(17) {
                    f32::NAN
                } else {
                    (v % 1000) as f32 / 10.0
                }
            }),
        )
    });
    (record, util)
}

/// Builds a full trace from per-VM seeds.
pub fn trace_from_seeds(seeds: &[u64]) -> Trace {
    let mut b = Trace::builder(topology());
    for sub in subscriptions() {
        b.add_subscription(sub).unwrap();
    }
    for (id, &seed) in seeds.iter().enumerate() {
        let (vm, util) = vm_from_seed(id as u64, seed);
        b.add_vm(vm, util).unwrap();
    }
    b.build()
}

/// Asserts two traces are observationally identical: same topology,
/// subscriptions, records, presence, and bit-identical telemetry.
pub fn assert_traces_equal(a: &Trace, b: &Trace) {
    assert_eq!(a.topology(), b.topology(), "topology");
    assert_eq!(a.subscriptions(), b.subscriptions(), "subscriptions");
    assert_eq!(a.vms(), b.vms(), "vm records");
    for vm in a.vms() {
        assert_eq!(
            a.has_util(vm.id),
            b.has_util(vm.id),
            "presence of {}",
            vm.id
        );
        let (ua, ub) = (a.util(vm.id), b.util(vm.id));
        assert_eq!(ua, ub, "telemetry of {}", vm.id);
    }
    assert_eq!(a.stats(), b.stats(), "stats");
}

/// Reads every file in a store directory into a sorted name → bytes
/// map, for byte-identity comparisons between stores.
pub fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("read store dir")
        .map(|e| {
            let e = e.expect("dir entry");
            (
                e.file_name().to_string_lossy().into_owned(),
                std::fs::read(e.path()).expect("read store file"),
            )
        })
        .collect();
    files.sort_by(|x, y| x.0.cmp(&y.0));
    files
}
