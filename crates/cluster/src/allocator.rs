//! The per-cluster allocation service: placement policies, fault-domain
//! spreading, spot eviction, and live migration.
//!
//! This is the simulator's stand-in for the platform's allocation service
//! (Protean in the real system): requests name a VM, its size, service,
//! and priority; the allocator picks a node subject to capacity and the
//! spreading rule, or reports a typed failure.

use crate::error::AllocationError;
use crate::node::NodeState;
use cloudscope_model::ids::{ClusterId, NodeId, RackId, ServiceId, VmId};
use cloudscope_model::topology::Cluster;
use cloudscope_model::vm::{Priority, VmSize};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A placement request, as the allocation service sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRequest {
    /// VM to place.
    pub vm: VmId,
    /// Resource shape.
    pub size: VmSize,
    /// Logical service, the unit the spreading rule counts.
    pub service: ServiceId,
    /// Priority class; spot VMs are evictable by on-demand requests.
    pub priority: Priority,
}

/// Node-selection policy among feasible nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Lowest-id node that fits: fast, fragments more.
    FirstFit,
    /// Node with the fewest free cores after placement: packs tightly,
    /// the default of production allocators under capacity pressure.
    #[default]
    BestFit,
    /// Node with the most free cores after placement: spreads load.
    WorstFit,
}

/// Fault-domain spreading: at most `max_same_service_per_rack` VMs of one
/// service per rack. `None` disables the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpreadingRule {
    /// Per-rack cap on same-service VMs; `None` = unlimited.
    pub max_same_service_per_rack: Option<u32>,
}

/// Counters the allocator maintains; the allocation-failure analyses and
/// the Insight-1 ablation read these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Placement attempts.
    pub attempts: u64,
    /// Successful placements.
    pub successes: u64,
    /// Failures because no node had capacity.
    pub capacity_failures: u64,
    /// Failures because spreading forbade every feasible node.
    pub spreading_failures: u64,
    /// Spot VMs evicted to make room for on-demand requests.
    pub evictions: u64,
    /// Live migrations performed.
    pub migrations: u64,
}

impl AllocatorStats {
    /// Failure rate over all attempts (0 if no attempts).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.capacity_failures + self.spreading_failures) as f64 / self.attempts as f64
    }
}

/// Where a VM currently lives, kept for release/eviction/migration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Placement {
    node: NodeId,
    size: VmSize,
    service: ServiceId,
    priority: Priority,
}

/// The allocation service for one cluster.
#[derive(Debug, Clone)]
pub struct ClusterAllocator {
    id: ClusterId,
    node_ids: Vec<NodeId>,
    nodes: Vec<NodeState>,
    node_offset: HashMap<NodeId, usize>,
    placements: HashMap<VmId, Placement>,
    rack_service: HashMap<(RackId, ServiceId), u32>,
    policy: PlacementPolicy,
    spreading: SpreadingRule,
    stats: AllocatorStats,
}

impl ClusterAllocator {
    /// Creates an empty allocator over a cluster's topology.
    #[must_use]
    pub fn new(cluster: &Cluster, policy: PlacementPolicy, spreading: SpreadingRule) -> Self {
        let mut node_ids = Vec::with_capacity(cluster.nodes.len());
        let mut nodes = Vec::with_capacity(cluster.nodes.len());
        let mut node_offset = HashMap::with_capacity(cluster.nodes.len());
        let nodes_per_rack = cluster.nodes.len() / cluster.racks.len();
        for (i, &nid) in cluster.nodes.iter().enumerate() {
            let rack = cluster.racks[(i / nodes_per_rack).min(cluster.racks.len() - 1)];
            node_ids.push(nid);
            nodes.push(NodeState::new(cluster.sku, rack));
            node_offset.insert(nid, i);
        }
        Self {
            id: cluster.id,
            node_ids,
            nodes,
            node_offset,
            placements: HashMap::new(),
            rack_service: HashMap::new(),
            policy,
            spreading,
            stats: AllocatorStats::default(),
        }
    }

    /// The cluster this allocator manages.
    #[must_use]
    pub const fn cluster_id(&self) -> ClusterId {
        self.id
    }

    /// Allocation counters so far.
    #[must_use]
    pub const fn stats(&self) -> &AllocatorStats {
        &self.stats
    }

    /// Number of VMs currently placed.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.placements.len()
    }

    /// Fraction of the cluster's cores currently allocated.
    #[must_use]
    pub fn core_allocation_ratio(&self) -> f64 {
        let used: u64 = self.nodes.iter().map(|n| u64::from(n.cores_used())).sum();
        let total: u64 = self.nodes.iter().map(|n| u64::from(n.cores_total())).sum();
        if total == 0 {
            0.0
        } else {
            used as f64 / total as f64
        }
    }

    /// Read-only view of a node's state.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownNode`] if the node is not here.
    pub fn node_state(&self, node: NodeId) -> Result<&NodeState, AllocationError> {
        self.node_offset
            .get(&node)
            .map(|&i| &self.nodes[i])
            .ok_or(AllocationError::UnknownNode(node))
    }

    /// The node currently hosting `vm`, if placed.
    #[must_use]
    pub fn placement_of(&self, vm: VmId) -> Option<NodeId> {
        self.placements.get(&vm).map(|p| p.node)
    }

    /// The size `vm` was placed with, if currently placed.
    #[must_use]
    pub fn placed_size(&self, vm: VmId) -> Option<VmSize> {
        self.placements.get(&vm).map(|p| p.size)
    }

    fn spreading_ok(&self, node_idx: usize, service: ServiceId) -> bool {
        match self.spreading.max_same_service_per_rack {
            None => true,
            Some(cap) => {
                let rack = self.nodes[node_idx].rack();
                self.rack_service
                    .get(&(rack, service))
                    .copied()
                    .unwrap_or(0)
                    < cap
            }
        }
    }

    /// Chooses a node for `request` per the policy, or classifies the
    /// failure. Does not mutate state.
    fn choose_node(&self, request: &PlacementRequest) -> Result<usize, AllocationError> {
        let mut any_fits = false;
        let mut best: Option<(usize, u32)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.fits(request.size) {
                continue;
            }
            any_fits = true;
            if !self.spreading_ok(i, request.service) {
                continue;
            }
            let free_after = node.cores_free() - request.size.cores();
            let candidate = (i, free_after);
            best = match (self.policy, best) {
                (_, None) => Some(candidate),
                (PlacementPolicy::FirstFit, some) => some,
                (PlacementPolicy::BestFit, Some((_, f))) if free_after < f => Some(candidate),
                (PlacementPolicy::WorstFit, Some((_, f))) if free_after > f => Some(candidate),
                (_, some) => some,
            };
            // FirstFit can stop at the first feasible node.
            if self.policy == PlacementPolicy::FirstFit {
                break;
            }
        }
        match best {
            Some((i, _)) => Ok(i),
            None if any_fits => Err(AllocationError::SpreadingViolation(self.id)),
            None => Err(AllocationError::InsufficientCapacity(self.id)),
        }
    }

    /// Places a VM, returning the chosen node.
    ///
    /// # Errors
    /// - [`AllocationError::AlreadyPlaced`] if the VM is already placed.
    /// - [`AllocationError::InsufficientCapacity`] if no node fits.
    /// - [`AllocationError::SpreadingViolation`] if only spreading blocks.
    pub fn place(&mut self, request: PlacementRequest) -> Result<NodeId, AllocationError> {
        if self.placements.contains_key(&request.vm) {
            return Err(AllocationError::AlreadyPlaced(request.vm));
        }
        self.stats.attempts += 1;
        let idx = match self.choose_node(&request) {
            Ok(idx) => idx,
            Err(e) => {
                match e {
                    AllocationError::InsufficientCapacity(_) => {
                        self.stats.capacity_failures += 1;
                    }
                    AllocationError::SpreadingViolation(_) => {
                        self.stats.spreading_failures += 1;
                    }
                    _ => {}
                }
                cloudscope_obs::counter("cluster.allocator.placement_failures").inc();
                return Err(e);
            }
        };
        self.commit(idx, request);
        cloudscope_obs::counter("cluster.allocator.placements").inc();
        Ok(self.node_ids[idx])
    }

    fn commit(&mut self, idx: usize, request: PlacementRequest) {
        self.nodes[idx].place(request.vm, request.size);
        let rack = self.nodes[idx].rack();
        *self
            .rack_service
            .entry((rack, request.service))
            .or_insert(0) += 1;
        self.placements.insert(
            request.vm,
            Placement {
                node: self.node_ids[idx],
                size: request.size,
                service: request.service,
                priority: request.priority,
            },
        );
        self.stats.successes += 1;
    }

    /// Places an on-demand VM, evicting spot VMs if necessary: if normal
    /// placement fails on capacity, the node whose spot VMs would free
    /// enough room with the fewest evictions is chosen, its spot VMs are
    /// evicted (youngest placement first), and placement is retried.
    ///
    /// Returns the chosen node and the evicted spot VMs (empty on a clean
    /// placement).
    ///
    /// # Errors
    /// Same as [`ClusterAllocator::place`] when eviction cannot help.
    pub fn place_with_eviction(
        &mut self,
        request: PlacementRequest,
    ) -> Result<(NodeId, Vec<VmId>), AllocationError> {
        match self.place(request) {
            Ok(node) => Ok((node, Vec::new())),
            Err(AllocationError::InsufficientCapacity(_)) => {
                let Some((idx, victims)) = self.eviction_plan(&request) else {
                    return Err(AllocationError::InsufficientCapacity(self.id));
                };
                for vm in &victims {
                    self.release(*vm).expect("victim is placed");
                    self.stats.evictions += 1;
                }
                // Retry directly on the freed node.
                if !self.spreading_ok(idx, request.service) {
                    return Err(AllocationError::SpreadingViolation(self.id));
                }
                self.stats.attempts += 1;
                self.commit(idx, request);
                Ok((self.node_ids[idx], victims))
            }
            Err(e) => Err(e),
        }
    }

    /// Finds the node where evicting the fewest spot VMs makes the
    /// request fit; returns node index and victim list.
    fn eviction_plan(&self, request: &PlacementRequest) -> Option<(usize, Vec<VmId>)> {
        if request.priority != Priority::OnDemand {
            return None;
        }
        let mut best: Option<(usize, Vec<VmId>)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            let mut free_cores = node.cores_free();
            let mut free_mem = node.memory_free();
            let mut victims = Vec::new();
            // Youngest-first: later placements are evicted first.
            for &vm in node.vms().iter().rev() {
                if free_cores >= request.size.cores() && free_mem + 1e-9 >= request.size.memory_gb()
                {
                    break;
                }
                let p = &self.placements[&vm];
                if p.priority == Priority::Spot {
                    free_cores += p.size.cores();
                    free_mem += p.size.memory_gb();
                    victims.push(vm);
                }
            }
            if free_cores >= request.size.cores() && free_mem + 1e-9 >= request.size.memory_gb() {
                let better = match &best {
                    None => true,
                    Some((_, b)) => victims.len() < b.len(),
                };
                if better && self.spreading_ok(i, request.service) {
                    best = Some((i, victims));
                }
            }
        }
        best
    }

    /// Releases a VM's resources (termination or eviction), returning the
    /// node it occupied.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownVm`] if the VM is not placed.
    pub fn release(&mut self, vm: VmId) -> Result<NodeId, AllocationError> {
        let placement = self
            .placements
            .remove(&vm)
            .ok_or(AllocationError::UnknownVm(vm))?;
        let idx = self.node_offset[&placement.node];
        let released = self.nodes[idx].release(vm, placement.size);
        debug_assert!(released, "placement table and node state diverged");
        let rack = self.nodes[idx].rack();
        if let Some(count) = self.rack_service.get_mut(&(rack, placement.service)) {
            *count = count.saturating_sub(1);
        }
        Ok(placement.node)
    }

    /// Live-migrates a VM to a specific node (e.g. off an unhealthy host).
    ///
    /// The fault-domain spreading rule is *not* re-checked: evacuations
    /// take priority and may temporarily exceed a rack's same-service cap
    /// (subsequent placements still observe the inflated counts).
    ///
    /// # Errors
    /// - [`AllocationError::UnknownVm`] if the VM is not placed.
    /// - [`AllocationError::UnknownNode`] if the target is not here.
    /// - [`AllocationError::InsufficientCapacity`] if the target cannot
    ///   hold the VM.
    pub fn migrate(&mut self, vm: VmId, to: NodeId) -> Result<(), AllocationError> {
        let placement = *self
            .placements
            .get(&vm)
            .ok_or(AllocationError::UnknownVm(vm))?;
        let to_idx = *self
            .node_offset
            .get(&to)
            .ok_or(AllocationError::UnknownNode(to))?;
        if placement.node == to {
            return Ok(());
        }
        if !self.nodes[to_idx].fits(placement.size) {
            return Err(AllocationError::InsufficientCapacity(self.id));
        }
        self.release(vm).expect("vm placed");
        self.stats.attempts += 1;
        self.commit(
            to_idx,
            PlacementRequest {
                vm,
                size: placement.size,
                service: placement.service,
                priority: placement.priority,
            },
        );
        self.stats.migrations += 1;
        Ok(())
    }

    /// Iterates `(node, state)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeState)> {
        self.node_ids.iter().copied().zip(self.nodes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::subscription::CloudKind;
    use cloudscope_model::topology::{NodeSku, Topology};

    /// 2 racks × 2 nodes of 8 cores / 64 GiB.
    fn allocator(policy: PlacementPolicy, spreading: SpreadingRule) -> ClusterAllocator {
        let mut b = Topology::builder();
        let r = b.add_region("test", 0, "US");
        let d = b.add_datacenter(r);
        let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(8, 64.0), 2, 2);
        let topo = b.build();
        ClusterAllocator::new(topo.cluster(c).unwrap(), policy, spreading)
    }

    fn req(vm: u64, cores: u32, service: u32) -> PlacementRequest {
        PlacementRequest {
            vm: VmId::new(vm),
            size: VmSize::new(cores, f64::from(cores) * 4.0),
            service: ServiceId::new(service),
            priority: Priority::OnDemand,
        }
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        let n0 = a.place(req(0, 5, 0)).unwrap();
        // Best fit should co-locate the 3-core VM with the 5-core one.
        let n1 = a.place(req(1, 3, 0)).unwrap();
        assert_eq!(n0, n1);
        assert_eq!(a.placed_count(), 2);
        assert!((a.core_allocation_ratio() - 8.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn worst_fit_spreads() {
        let mut a = allocator(PlacementPolicy::WorstFit, SpreadingRule::default());
        let n0 = a.place(req(0, 5, 0)).unwrap();
        let n1 = a.place(req(1, 3, 0)).unwrap();
        assert_ne!(n0, n1);
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        let n0 = a.place(req(0, 2, 0)).unwrap();
        let n1 = a.place(req(1, 2, 0)).unwrap();
        assert_eq!(n0, n1);
    }

    #[test]
    fn capacity_failure_when_full() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(req(i, 8, 0)).unwrap();
        }
        let err = a.place(req(9, 1, 0)).unwrap_err();
        assert!(matches!(err, AllocationError::InsufficientCapacity(_)));
        assert_eq!(a.stats().capacity_failures, 1);
        assert!(a.stats().failure_rate() > 0.0);
    }

    #[test]
    fn spreading_rule_blocks_same_rack() {
        let spreading = SpreadingRule {
            max_same_service_per_rack: Some(1),
        };
        let mut a = allocator(PlacementPolicy::FirstFit, spreading);
        // Service 7: one VM per rack allowed -> 2 placements, 3rd fails.
        a.place(req(0, 1, 7)).unwrap();
        a.place(req(1, 1, 7)).unwrap();
        let err = a.place(req(2, 1, 7)).unwrap_err();
        assert!(matches!(err, AllocationError::SpreadingViolation(_)));
        assert_eq!(a.stats().spreading_failures, 1);
        // A different service still places fine.
        a.place(req(3, 1, 8)).unwrap();
    }

    #[test]
    fn release_frees_spreading_budget() {
        let spreading = SpreadingRule {
            max_same_service_per_rack: Some(1),
        };
        let mut a = allocator(PlacementPolicy::FirstFit, spreading);
        a.place(req(0, 1, 7)).unwrap();
        a.place(req(1, 1, 7)).unwrap();
        assert!(a.place(req(2, 1, 7)).is_err());
        a.release(VmId::new(0)).unwrap();
        a.place(req(2, 1, 7)).unwrap();
    }

    #[test]
    fn double_place_and_unknown_release() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        a.place(req(0, 1, 0)).unwrap();
        assert!(matches!(
            a.place(req(0, 1, 0)),
            Err(AllocationError::AlreadyPlaced(_))
        ));
        assert!(matches!(
            a.release(VmId::new(99)),
            Err(AllocationError::UnknownVm(_))
        ));
    }

    #[test]
    fn eviction_makes_room_for_on_demand() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        // Fill every node with spot VMs.
        for i in 0..4 {
            a.place(PlacementRequest {
                priority: Priority::Spot,
                ..req(i, 8, 0)
            })
            .unwrap();
        }
        let (node, evicted) = a.place_with_eviction(req(10, 8, 1)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(a.stats().evictions, 1);
        assert_eq!(a.placement_of(VmId::new(10)), Some(node));
        assert_eq!(a.placement_of(evicted[0]), None);
    }

    #[test]
    fn eviction_never_touches_on_demand() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(req(i, 8, 0)).unwrap(); // on-demand fills the cluster
        }
        assert!(matches!(
            a.place_with_eviction(req(10, 8, 1)),
            Err(AllocationError::InsufficientCapacity(_))
        ));
        assert_eq!(a.stats().evictions, 0);
    }

    #[test]
    fn spot_request_cannot_trigger_eviction() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(PlacementRequest {
                priority: Priority::Spot,
                ..req(i, 8, 0)
            })
            .unwrap();
        }
        let spot_req = PlacementRequest {
            priority: Priority::Spot,
            ..req(10, 8, 1)
        };
        assert!(a.place_with_eviction(spot_req).is_err());
    }

    #[test]
    fn migration_moves_capacity() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        let from = a.place(req(0, 4, 0)).unwrap();
        let target = a.nodes().map(|(id, _)| id).find(|&id| id != from).unwrap();
        a.migrate(VmId::new(0), target).unwrap();
        assert_eq!(a.placement_of(VmId::new(0)), Some(target));
        assert_eq!(a.node_state(from).unwrap().cores_used(), 0);
        assert_eq!(a.stats().migrations, 1);
        // Self-migration is a no-op.
        a.migrate(VmId::new(0), target).unwrap();
        assert_eq!(a.stats().migrations, 1);
    }

    #[test]
    fn migration_validates_target() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        a.place(req(0, 8, 0)).unwrap();
        let occupied = a.placement_of(VmId::new(0)).unwrap();
        a.place(req(1, 8, 0)).unwrap();
        let other = a.placement_of(VmId::new(1)).unwrap();
        assert!(matches!(
            a.migrate(VmId::new(0), other),
            Err(AllocationError::InsufficientCapacity(_))
        ));
        assert!(matches!(
            a.migrate(VmId::new(0), NodeId::new(999)),
            Err(AllocationError::UnknownNode(_))
        ));
        assert!(matches!(
            a.migrate(VmId::new(42), occupied),
            Err(AllocationError::UnknownVm(_))
        ));
    }
}
