//! Shared helpers for the durability integration tests: unique temp
//! directories (removed on drop), entry builders, and whole-store
//! equality assertions.

#![allow(dead_code)]

use cloudscope_analysis::UtilizationPattern;
use cloudscope_kb::knowledge::LifetimeClass;
use cloudscope_kb::{KbQuery, KnowledgeBase, WorkloadKnowledge};
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::prelude::{CloudKind, SimTime};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique directory under the system temp dir, removed on drop.
#[derive(Debug)]
pub struct TempDir {
    path: PathBuf,
}

impl TempDir {
    /// Creates a fresh, empty, uniquely named directory.
    pub fn new(tag: &str) -> Self {
        static SEQ: AtomicUsize = AtomicUsize::new(0);
        let path = std::env::temp_dir().join(format!(
            "cloudscope-kb-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        // A clean slate even if a previous run leaked the name.
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }

    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

/// A deterministic entry: every field varies with `id` so equality
/// failures are informative.
pub fn entry(id: u32) -> WorkloadKnowledge {
    entry_at(id, i64::from(id % 13))
}

/// [`entry`] with an explicit `updated_at` (for freshness-rule cases).
pub fn entry_at(id: u32, minutes: i64) -> WorkloadKnowledge {
    let patterns = [
        None,
        Some(UtilizationPattern::Diurnal),
        Some(UtilizationPattern::Stable),
        Some(UtilizationPattern::Irregular),
        Some(UtilizationPattern::HourlyPeak),
    ];
    let lifetimes = [
        LifetimeClass::MostlyShort,
        LifetimeClass::Mixed,
        LifetimeClass::MostlyLong,
    ];
    WorkloadKnowledge {
        subscription: SubscriptionId::new(id),
        cloud: if id.is_multiple_of(2) {
            CloudKind::Private
        } else {
            CloudKind::Public
        },
        pattern: patterns[id as usize % patterns.len()],
        lifetime: lifetimes[id as usize % lifetimes.len()],
        mean_util: f64::from(id) / 7.0,
        p95_util: f64::from(id) / 3.0,
        util_cv: f64::from(id % 11) / 10.0,
        regions: 1 + id as usize % 4,
        region_agnostic: match id % 3 {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        vm_count: 1 + id as usize % 50,
        cores: 4 * u64::from(1 + id % 16),
        updated_at: SimTime::from_minutes(minutes),
    }
}

/// Every selector the query API offers, for whole-surface comparisons.
pub fn all_queries() -> Vec<KbQuery<'static>> {
    vec![
        KbQuery::all(),
        KbQuery::spot_candidates(),
        KbQuery::shiftable(),
        KbQuery::oversubscription_candidates(CloudKind::Private),
        KbQuery::oversubscription_candidates(CloudKind::Public),
        KbQuery::by_lifetime(LifetimeClass::MostlyShort),
        KbQuery::by_lifetime(LifetimeClass::Mixed),
        KbQuery::by_lifetime(LifetimeClass::MostlyLong),
        KbQuery::by_pattern(CloudKind::Private, UtilizationPattern::Diurnal),
        KbQuery::by_pattern(CloudKind::Public, UtilizationPattern::Stable),
        KbQuery::by_pattern(CloudKind::Public, UtilizationPattern::HourlyPeak),
    ]
}

/// Asserts two stores hold identical committed state: same entries
/// (wholesale equality via the all-scan), same result for every typed
/// query, and internally consistent indexes on both sides.
pub fn assert_kb_equal(actual: &KnowledgeBase, expected: &KnowledgeBase, context: &str) {
    assert_eq!(actual.len(), expected.len(), "{context}: entry count");
    for query in all_queries() {
        assert_eq!(
            query.collect(actual),
            query.collect(expected),
            "{context}: query results diverge"
        );
    }
    actual
        .check_consistency()
        .unwrap_or_else(|e| panic!("{context}: recovered store inconsistent: {e}"));
    expected
        .check_consistency()
        .unwrap_or_else(|e| panic!("{context}: expected store inconsistent: {e}"));
}
