//! Mutable per-node capacity state.

use cloudscope_model::ids::{RackId, VmId};
use cloudscope_model::topology::NodeSku;
use cloudscope_model::vm::VmSize;
use serde::{Deserialize, Serialize};

/// Live capacity state of one physical node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeState {
    rack: RackId,
    cores_total: u32,
    memory_total: f64,
    cores_used: u32,
    memory_used: f64,
    vms: Vec<VmId>,
}

impl NodeState {
    /// Creates an empty node of the given SKU in `rack`.
    #[must_use]
    pub fn new(sku: NodeSku, rack: RackId) -> Self {
        Self {
            rack,
            cores_total: sku.cores,
            memory_total: sku.memory_gb,
            cores_used: 0,
            memory_used: 0.0,
            vms: Vec::new(),
        }
    }

    /// The rack (fault domain) this node is stacked in.
    #[must_use]
    pub const fn rack(&self) -> RackId {
        self.rack
    }

    /// Physical cores.
    #[must_use]
    pub const fn cores_total(&self) -> u32 {
        self.cores_total
    }

    /// Cores currently allocated to VMs.
    #[must_use]
    pub const fn cores_used(&self) -> u32 {
        self.cores_used
    }

    /// Free cores.
    #[must_use]
    pub const fn cores_free(&self) -> u32 {
        self.cores_total - self.cores_used
    }

    /// Free memory in GiB.
    #[must_use]
    pub fn memory_free(&self) -> f64 {
        self.memory_total - self.memory_used
    }

    /// VMs currently hosted, in placement order.
    #[must_use]
    pub fn vms(&self) -> &[VmId] {
        &self.vms
    }

    /// `true` if a VM of `size` fits in the remaining capacity.
    #[must_use]
    pub fn fits(&self, size: VmSize) -> bool {
        size.cores() <= self.cores_free() && size.memory_gb() <= self.memory_free() + 1e-9
    }

    /// Fraction of cores allocated, in `[0, 1]`.
    #[must_use]
    pub fn core_allocation_ratio(&self) -> f64 {
        f64::from(self.cores_used) / f64::from(self.cores_total)
    }

    /// Places a VM. Callers must check [`NodeState::fits`] first.
    ///
    /// # Panics
    /// Panics if the VM does not fit (an allocator bug, not an operational
    /// condition — the allocator must never over-commit).
    pub fn place(&mut self, vm: VmId, size: VmSize) {
        assert!(self.fits(size), "allocator over-committed node");
        self.cores_used += size.cores();
        self.memory_used += size.memory_gb();
        self.vms.push(vm);
    }

    /// Releases a VM, returning `true` if it was hosted here.
    pub fn release(&mut self, vm: VmId, size: VmSize) -> bool {
        if let Some(pos) = self.vms.iter().position(|&v| v == vm) {
            self.vms.swap_remove(pos);
            self.cores_used -= size.cores();
            self.memory_used = (self.memory_used - size.memory_gb()).max(0.0);
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> NodeState {
        NodeState::new(NodeSku::new(16, 128.0), RackId::new(0))
    }

    #[test]
    fn placement_accounting() {
        let mut n = node();
        assert!(n.fits(VmSize::new(16, 128.0)));
        n.place(VmId::new(1), VmSize::new(4, 32.0));
        assert_eq!(n.cores_free(), 12);
        assert_eq!(n.memory_free(), 96.0);
        assert_eq!(n.vms(), &[VmId::new(1)]);
        assert!((n.core_allocation_ratio() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fits_considers_both_dimensions() {
        let mut n = node();
        n.place(VmId::new(1), VmSize::new(2, 120.0));
        // Plenty of cores, no memory.
        assert!(!n.fits(VmSize::new(2, 16.0)));
        assert!(n.fits(VmSize::new(2, 8.0)));
        // Plenty of memory, no cores.
        let mut m = node();
        m.place(VmId::new(2), VmSize::new(15, 8.0));
        assert!(!m.fits(VmSize::new(2, 8.0)));
    }

    #[test]
    #[should_panic(expected = "over-committed")]
    fn overcommit_panics() {
        let mut n = node();
        n.place(VmId::new(1), VmSize::new(12, 32.0));
        n.place(VmId::new(2), VmSize::new(12, 32.0));
    }

    #[test]
    fn release_returns_capacity() {
        let mut n = node();
        let size = VmSize::new(4, 32.0);
        n.place(VmId::new(1), size);
        assert!(n.release(VmId::new(1), size));
        assert_eq!(n.cores_free(), 16);
        assert_eq!(n.memory_free(), 128.0);
        assert!(!n.release(VmId::new(1), size), "double release");
        assert!(!n.release(VmId::new(9), size), "unknown vm");
    }
}
