//! Subscription / service plan synthesis: who exists, where they deploy,
//! how large they are, and what utilization profile their VMs share.

use crate::config::CloudProfile;
use crate::utilization::{PatternKind, ServiceUtilProfile};
use cloudscope_model::ids::RegionId;
use cloudscope_model::subscription::{CloudKind, PartyKind};
use cloudscope_stats::dist::{LogNormal, Sample, Zipf};
use rand::seq::SliceRandom;
use rand::Rng;

/// Fraction of public-cloud subscriptions that are first-party (the
/// provider also runs its own services in the public cloud).
const PUBLIC_FIRST_PARTY_FRACTION: f64 = 0.15;

/// Standing VMs per internal service group: a large subscription (a big
/// first-party organization) runs many distinct services, each with its
/// own utilization profile. This bounds the variance of the Figure 5(d)
/// per-VM pattern shares and mirrors how production subscriptions are
/// structured.
const VMS_PER_SERVICE_GROUP: usize = 60;
/// Cap on service groups per subscription.
const MAX_SERVICE_GROUPS: usize = 12;

/// The plan for one subscription; the generator turns plans into VMs.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionPlan {
    /// Which cloud the subscription lives in.
    pub cloud: CloudKind,
    /// First- or third-party ownership.
    pub party: PartyKind,
    /// Regions the subscription deploys into (distinct, non-empty).
    pub regions: Vec<RegionId>,
    /// Standing (long-running) VMs per region, aligned with `regions`.
    pub standing_per_region: Vec<usize>,
    /// Utilization profiles of the subscription's internal service
    /// groups (at least one). All groups share the subscription's
    /// region-agnosticism, but draw their own pattern and phase.
    pub groups: Vec<ServiceUtilProfile>,
    /// Relative weight of this subscription when regional churn events
    /// are attributed to subscriptions.
    pub churn_weight: f64,
}

impl SubscriptionPlan {
    /// Total standing VMs across regions.
    #[must_use]
    pub fn standing_total(&self) -> usize {
        self.standing_per_region.iter().sum()
    }

    /// `true` if the subscription deploys in more than one region.
    #[must_use]
    pub fn is_multi_region(&self) -> bool {
        self.regions.len() > 1
    }
}

/// Synthesizes all subscription plans for one cloud.
///
/// - Region count: 1 with probability `single_region_fraction`, else
///   `1 + Zipf` capped at `max_regions` (Fig 4(a)).
/// - Standing size: log-normal, boosted per extra region by
///   `multi_region_size_boost` (Fig 4(b): multi-region private
///   subscriptions hold most cores).
/// - Pattern: drawn from the cloud's mixture (Fig 5(d)); multi-region
///   subscriptions are geo-load-balanced (region-agnostic) with
///   probability `geo_lb_fraction` (Fig 7).
pub fn synthesize_plans<R: Rng + ?Sized>(
    cloud: CloudKind,
    profile: &CloudProfile,
    regions: &[RegionId],
    rng: &mut R,
) -> Vec<SubscriptionPlan> {
    assert!(!regions.is_empty(), "need at least one region");
    let size_dist = LogNormal::from_median(profile.deployment_median, profile.deployment_sigma)
        .expect("valid deployment size distribution");
    let extra_regions = Zipf::new(profile.max_regions.max(2) - 1, 1.1).expect("valid zipf");
    let mut plans = Vec::with_capacity(profile.subscriptions);
    for _ in 0..profile.subscriptions {
        // Where.
        let region_count = if rng.random::<f64>() < profile.single_region_fraction {
            1
        } else {
            (1 + extra_regions.sample_rank(rng)).min(regions.len().min(profile.max_regions))
        };
        let mut pool: Vec<RegionId> = regions.to_vec();
        pool.shuffle(rng);
        pool.truncate(region_count);

        // How big.
        let boost = profile
            .multi_region_size_boost
            .powi(region_count as i32 - 1);
        let total = (size_dist.sample(rng) * boost).round().max(1.0) as usize;
        let base = total / region_count;
        let remainder = total % region_count;
        let standing_per_region: Vec<usize> = (0..region_count)
            .map(|i| base + usize::from(i < remainder))
            .collect();

        // Who and what.
        let party = match cloud {
            CloudKind::Private => PartyKind::FirstParty,
            CloudKind::Public => {
                if rng.random::<f64>() < PUBLIC_FIRST_PARTY_FRACTION {
                    PartyKind::FirstParty
                } else {
                    PartyKind::ThirdParty
                }
            }
        };
        let region_agnostic = region_count > 1 && rng.random::<f64>() < profile.geo_lb_fraction;
        let group_count = total
            .div_ceil(VMS_PER_SERVICE_GROUP)
            .clamp(1, MAX_SERVICE_GROUPS);
        let groups = (0..group_count)
            .map(|_| {
                let kind = PatternKind::sample_from_mix(&profile.pattern_mix, rng);
                ServiceUtilProfile::sample_in_range(
                    kind,
                    region_agnostic,
                    profile.peak_hour_range,
                    rng,
                )
            })
            .collect();

        plans.push(SubscriptionPlan {
            cloud,
            party,
            regions: pool,
            standing_per_region,
            groups,
            churn_weight: (total as f64).sqrt(),
        });
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CloudProfile;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn regions(n: u32) -> Vec<RegionId> {
        (0..n).map(RegionId::new).collect()
    }

    fn plans_for(cloud: CloudKind, profile: &CloudProfile, seed: u64) -> Vec<SubscriptionPlan> {
        let mut rng = StdRng::seed_from_u64(seed);
        synthesize_plans(cloud, profile, &regions(10), &mut rng)
    }

    #[test]
    fn plan_counts_match_config() {
        let p = CloudProfile::private_default();
        let plans = plans_for(CloudKind::Private, &p, 1);
        assert_eq!(plans.len(), p.subscriptions);
        for plan in &plans {
            assert!(!plan.regions.is_empty());
            assert_eq!(plan.regions.len(), plan.standing_per_region.len());
            assert!(plan.standing_total() >= 1);
            assert!(!plan.groups.is_empty());
            assert!(plan.groups.len() <= MAX_SERVICE_GROUPS);
            assert!(plan.churn_weight > 0.0);
            // Regions are distinct.
            let mut rs = plan.regions.clone();
            rs.sort();
            rs.dedup();
            assert_eq!(rs.len(), plan.regions.len());
        }
    }

    #[test]
    fn private_deployments_larger_than_public() {
        let private = plans_for(CloudKind::Private, &CloudProfile::private_default(), 2);
        let public = plans_for(CloudKind::Public, &CloudProfile::public_default(), 2);
        let med = |plans: &[SubscriptionPlan]| {
            let mut sizes: Vec<usize> =
                plans.iter().map(SubscriptionPlan::standing_total).collect();
            sizes.sort_unstable();
            sizes[sizes.len() / 2]
        };
        assert!(med(&private) >= 10 * med(&public).max(1));
    }

    #[test]
    fn single_region_fractions_match() {
        for (cloud, profile) in [
            (CloudKind::Private, CloudProfile::private_default()),
            (CloudKind::Public, CloudProfile::public_default()),
        ] {
            let plans = plans_for(cloud, &profile, 3);
            let single =
                plans.iter().filter(|p| !p.is_multi_region()).count() as f64 / plans.len() as f64;
            assert!(
                (single - profile.single_region_fraction).abs() < 0.12,
                "{cloud}: single fraction {single}"
            );
        }
    }

    #[test]
    fn private_cloud_is_first_party() {
        let plans = plans_for(CloudKind::Private, &CloudProfile::private_default(), 4);
        assert!(plans.iter().all(|p| p.party == PartyKind::FirstParty));
        let public = plans_for(CloudKind::Public, &CloudProfile::public_default(), 4);
        let third = public
            .iter()
            .filter(|p| p.party == PartyKind::ThirdParty)
            .count() as f64
            / public.len() as f64;
        assert!((third - 0.85).abs() < 0.05, "third-party fraction {third}");
    }

    #[test]
    fn geo_lb_mostly_private_multi_region() {
        let private = plans_for(CloudKind::Private, &CloudProfile::private_default(), 5);
        let public = plans_for(CloudKind::Public, &CloudProfile::public_default(), 5);
        let agnostic_fraction = |plans: &[SubscriptionPlan]| {
            let multi: Vec<_> = plans.iter().filter(|p| p.is_multi_region()).collect();
            multi.iter().filter(|p| p.groups[0].region_agnostic).count() as f64
                / multi.len().max(1) as f64
        };
        assert!(agnostic_fraction(&private) > 0.55);
        assert!(agnostic_fraction(&public) < 0.3);
        // Single-region subscriptions are never flagged region-agnostic.
        assert!(private
            .iter()
            .filter(|p| !p.is_multi_region())
            .all(|p| p.groups.iter().all(|g| !g.region_agnostic)));
    }

    #[test]
    fn multi_region_private_subscriptions_hold_more_vms() {
        let plans = plans_for(CloudKind::Private, &CloudProfile::private_default(), 6);
        let mean = |f: &dyn Fn(&&SubscriptionPlan) -> bool| {
            let selected: Vec<_> = plans.iter().filter(f).collect();
            selected.iter().map(|p| p.standing_total()).sum::<usize>() as f64
                / selected.len().max(1) as f64
        };
        let multi = mean(&|p| p.is_multi_region());
        let single = mean(&|p| !p.is_multi_region());
        assert!(multi > 1.05 * single, "multi {multi} vs single {single}");
    }
}
