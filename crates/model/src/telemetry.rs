//! Utilization telemetry: fixed-interval (5-minute) average CPU
//! utilization per VM, as reported by the platform monitor.
//!
//! Series are stored quantized to half-percent steps in a shared
//! [`bytes::Bytes`] buffer: one byte per sample bounds a week of telemetry
//! for a million VMs at ~2 GiB, mirroring how production telemetry stores
//! compress utilization counters. Quantization error (≤0.25 pp) is far
//! below the noise floor of the signals being analyzed.

use crate::error::ModelError;
use crate::time::{SimTime, SAMPLE_INTERVAL_MINUTES};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// Quantization: stored byte = round(percent * 2), so 0..=200 spans 0–100%.
const QUANT_STEPS_PER_PERCENT: f32 = 2.0;
/// Maximum representable utilization in percent.
pub const MAX_UTILIZATION_PCT: f32 = 100.0;
/// In-band sentinel for a missing sample. The quantized range only uses
/// 0..=200, so the top byte value is free to mark slots the monitor never
/// reported (dropped samples, blackout windows). Missing samples surface
/// as `None` from [`UtilSeries::get`] and as NaN from the float iterators,
/// keeping the time grid intact so gaps never shift later samples.
const MISSING_SAMPLE: u8 = u8::MAX;

/// Quantizes one utilization percentage to its stored byte: finite
/// values clamp to `[0, 100]` and round to half-percent steps; non-finite
/// values map to the missing-sample sentinel. This is *the* quantization
/// — [`UtilSeries::from_percentages`] applies it per sample, and a
/// streaming ingester that quantizes at arrival must use it too, so that
/// its window state is byte-identical to a batch-built series.
#[must_use]
pub fn quantize_percentage(v: f32) -> u8 {
    if v.is_finite() {
        let clamped = v.clamp(0.0, MAX_UTILIZATION_PCT);
        (clamped * QUANT_STEPS_PER_PERCENT).round() as u8
    } else {
        MISSING_SAMPLE
    }
}

/// The stored byte marking a missing sample, for producers assembling
/// quantized buffers directly (see [`UtilSeries::from_quantized`]).
pub const MISSING_SAMPLE_BYTE: u8 = MISSING_SAMPLE;

/// A fixed-interval CPU-utilization series for one VM (or one node).
///
/// Samples are average utilization in percent over each 5-minute interval,
/// starting at [`UtilSeries::start`].
///
/// # Examples
/// ```
/// # use cloudscope_model::telemetry::UtilSeries;
/// # use cloudscope_model::time::SimTime;
/// let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0, 30.0]);
/// assert_eq!(s.len(), 3);
/// assert!((s.mean() - 20.0).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilSeries {
    start: SimTime,
    samples: Bytes,
}

impl UtilSeries {
    /// Builds a series from utilization percentages. Finite values are
    /// clamped to `[0, 100]` and quantized to 0.5-percent steps; non-finite
    /// values (NaN, ±inf) mark the slot as missing.
    #[must_use]
    pub fn from_percentages<I>(start: SimTime, values: I) -> Self
    where
        I: IntoIterator<Item = f32>,
    {
        let samples: Vec<u8> = values.into_iter().map(quantize_percentage).collect();
        cloudscope_obs::counter("model.telemetry.series_created").inc();
        Self {
            start,
            samples: Bytes::from(samples),
        }
    }

    /// Time of the first sample.
    #[must_use]
    pub const fn start(&self) -> SimTime {
        self.start
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time of the sample at `index`.
    #[must_use]
    pub fn time_at(&self, index: usize) -> SimTime {
        self.start + crate::time::SimDuration::from_minutes(index as i64 * SAMPLE_INTERVAL_MINUTES)
    }

    /// Utilization (percent) of the sample at `index`. Returns `None` both
    /// out of bounds and for an in-bounds missing sample.
    #[must_use]
    pub fn get(&self, index: usize) -> Option<f32> {
        self.samples
            .get(index)
            .filter(|&&q| q != MISSING_SAMPLE)
            .map(|&q| f32::from(q) / QUANT_STEPS_PER_PERCENT)
    }

    /// `true` if the in-bounds sample at `index` is missing.
    #[must_use]
    pub fn is_missing(&self, index: usize) -> bool {
        self.samples.get(index) == Some(&MISSING_SAMPLE)
    }

    /// Number of present (non-missing) samples.
    #[must_use]
    pub fn present_count(&self) -> usize {
        self.samples
            .iter()
            .filter(|&&q| q != MISSING_SAMPLE)
            .count()
    }

    /// Fraction of samples present, in `[0, 1]` (0 for an empty series).
    #[must_use]
    pub fn coverage(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.present_count() as f64 / self.samples.len() as f64
    }

    /// Utilization (percent) at simulated time `t`, if the series covers it.
    #[must_use]
    pub fn at_time(&self, t: SimTime) -> Option<f32> {
        let offset = t.minutes() - self.start.minutes();
        if offset < 0 {
            return None;
        }
        self.get((offset / SAMPLE_INTERVAL_MINUTES) as usize)
    }

    /// Iterates over utilization percentages; missing samples yield NaN,
    /// the gap convention the downstream analysis stack understands.
    pub fn iter(&self) -> impl Iterator<Item = f32> + '_ {
        self.samples.iter().map(|&q| {
            if q == MISSING_SAMPLE {
                f32::NAN
            } else {
                f32::from(q) / QUANT_STEPS_PER_PERCENT
            }
        })
    }

    /// Collects the series into an `f64` vector, the numeric type the
    /// statistics substrate operates on. Missing samples become NaN.
    #[must_use]
    pub fn to_f64_vec(&self) -> Vec<f64> {
        self.iter().map(f64::from).collect()
    }

    /// Mean utilization in percent over the present samples (0 for an
    /// empty or fully-missing series).
    #[must_use]
    pub fn mean(&self) -> f32 {
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for v in self.iter() {
            if v.is_finite() {
                sum += f64::from(v);
                count += 1;
            }
        }
        if count == 0 {
            return 0.0;
        }
        (sum / count as f64) as f32
    }

    /// Averages consecutive samples into buckets of `samples_per_bucket`
    /// (e.g. 12 to go from 5-minute to hourly resolution). The trailing
    /// partial bucket, if any, is averaged over the samples it has. Each
    /// bucket averages its present samples; a fully-missing bucket is NaN.
    ///
    /// # Errors
    /// Returns [`ModelError::InvalidArgument`] if `samples_per_bucket` is 0.
    pub fn downsample(&self, samples_per_bucket: usize) -> Result<Vec<f32>, ModelError> {
        if samples_per_bucket == 0 {
            return Err(ModelError::InvalidArgument(
                "samples_per_bucket must be positive",
            ));
        }
        Ok(self
            .samples
            .chunks(samples_per_bucket)
            .map(|chunk| {
                let mut sum = 0.0f64;
                let mut count = 0usize;
                for &q in chunk {
                    if q != MISSING_SAMPLE {
                        sum += f64::from(q) / f64::from(QUANT_STEPS_PER_PERCENT);
                        count += 1;
                    }
                }
                if count == 0 {
                    f32::NAN
                } else {
                    (sum / count as f64) as f32
                }
            })
            .collect())
    }

    /// Cheaply clones a sub-range `[from, to)` of samples as a new series
    /// sharing the underlying buffer.
    ///
    /// # Panics
    /// Panics if `from > to` or `to > len`.
    #[must_use]
    pub fn slice(&self, from: usize, to: usize) -> UtilSeries {
        UtilSeries {
            start: self.time_at(from),
            samples: self.samples.slice(from..to),
        }
    }

    /// The raw quantized samples — the exact storage representation
    /// (half-percent steps, `0xFF` marking a missing slot). This is the
    /// byte-level interface the on-disk trace store persists, so a
    /// series survives an encode/decode round trip bit-identically.
    #[must_use]
    pub fn as_quantized(&self) -> &[u8] {
        &self.samples
    }

    /// Rebuilds a series from its storage representation (the bytes
    /// [`UtilSeries::as_quantized`] exposes), without re-quantizing —
    /// the decode half of the trace store's round trip. Counts under
    /// `model.telemetry.series_decoded`, not `series_created`, so
    /// generation-side reconciliation stays exact under lazy loading.
    #[must_use]
    pub fn from_quantized(start: SimTime, samples: Bytes) -> Self {
        cloudscope_obs::counter("model.telemetry.series_decoded").inc();
        Self { start, samples }
    }
}

/// Element-wise average of several equally-long, equally-aligned series —
/// used e.g. for region-level average utilization of a service. Each slot
/// averages the series that have a present sample there; a slot missing
/// everywhere stays missing.
///
/// # Errors
/// Returns [`ModelError::InvalidArgument`] if `series` is empty or lengths
/// or starts differ.
pub fn average_series(series: &[&UtilSeries]) -> Result<UtilSeries, ModelError> {
    let first = series
        .first()
        .ok_or(ModelError::InvalidArgument("no series to average"))?;
    if series
        .iter()
        .any(|s| s.len() != first.len() || s.start() != first.start())
    {
        return Err(ModelError::InvalidArgument(
            "series must share start and length",
        ));
    }
    let mut acc = vec![0.0f64; first.len()];
    let mut counts = vec![0usize; first.len()];
    for s in series {
        for (i, v) in s.iter().enumerate() {
            if v.is_finite() {
                acc[i] += f64::from(v);
                counts[i] += 1;
            }
        }
    }
    Ok(UtilSeries::from_percentages(
        first.start(),
        acc.into_iter().zip(counts).map(|(a, n)| {
            if n == 0 {
                f32::NAN
            } else {
                (a / n as f64) as f32
            }
        }),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn quantization_roundtrip_within_half_step() {
        let vals = [0.0, 0.3, 12.34, 50.0, 99.9, 100.0];
        let s = UtilSeries::from_percentages(SimTime::ZERO, vals);
        for (i, &v) in vals.iter().enumerate() {
            let got = s.get(i).unwrap();
            assert!((got - v).abs() <= 0.25, "sample {i}: {v} -> {got}");
        }
    }

    #[test]
    fn values_clamped_to_range() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [-5.0, 250.0]);
        assert_eq!(s.get(0), Some(0.0));
        assert_eq!(s.get(1), Some(100.0));
    }

    #[test]
    fn time_indexing() {
        let s = UtilSeries::from_percentages(SimTime::from_hours(1), [1.0, 2.0, 3.0]);
        assert_eq!(s.time_at(2).minutes(), 70);
        assert_eq!(s.at_time(SimTime::from_minutes(64)), Some(1.0));
        assert_eq!(s.at_time(SimTime::from_minutes(70)), Some(3.0));
        assert_eq!(s.at_time(SimTime::from_minutes(59)), None);
        assert_eq!(s.at_time(SimTime::from_minutes(200)), None);
    }

    #[test]
    fn downsample_to_hourly() {
        // 24 five-minute samples = 2 hours; first hour all 10%, second 30%.
        let vals: Vec<f32> = std::iter::repeat_n(10.0, 12)
            .chain(std::iter::repeat_n(30.0, 12))
            .collect();
        let s = UtilSeries::from_percentages(SimTime::ZERO, vals);
        let hourly = s.downsample(12).unwrap();
        assert_eq!(hourly, vec![10.0, 30.0]);
        assert!(s.downsample(0).is_err());
    }

    #[test]
    fn downsample_partial_tail() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0, 40.0]);
        let out = s.downsample(2).unwrap();
        assert_eq!(out, vec![15.0, 40.0]);
    }

    #[test]
    fn slicing_shares_alignment() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(1, 3);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.start(), SimTime::ZERO + SimDuration::SAMPLE);
        assert_eq!(sub.get(0), Some(2.0));
    }

    #[test]
    fn averaging_series() {
        let a = UtilSeries::from_percentages(SimTime::ZERO, [10.0, 20.0]);
        let b = UtilSeries::from_percentages(SimTime::ZERO, [30.0, 40.0]);
        let avg = average_series(&[&a, &b]).unwrap();
        assert_eq!(avg.get(0), Some(20.0));
        assert_eq!(avg.get(1), Some(30.0));
    }

    #[test]
    fn averaging_rejects_misaligned() {
        let a = UtilSeries::from_percentages(SimTime::ZERO, [10.0]);
        let b = UtilSeries::from_percentages(SimTime::from_hours(1), [30.0]);
        assert!(average_series(&[&a, &b]).is_err());
        assert!(average_series(&[]).is_err());
    }

    #[test]
    fn mean_of_empty_is_zero() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, std::iter::empty());
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn missing_samples_roundtrip_as_gaps() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, f32::NAN, 30.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.get(0), Some(10.0));
        assert_eq!(s.get(1), None);
        assert!(s.is_missing(1));
        assert!(!s.is_missing(0));
        assert_eq!(s.present_count(), 2);
        assert!((s.coverage() - 2.0 / 3.0).abs() < 1e-12);
        let vals: Vec<f32> = s.iter().collect();
        assert!(vals[1].is_nan());
        assert!(s.to_f64_vec()[1].is_nan());
        // Mean skips the gap rather than poisoning to NaN.
        assert!((s.mean() - 20.0).abs() < 0.3);
    }

    #[test]
    fn gaps_do_not_shift_the_time_grid() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [10.0, f32::NAN, 30.0]);
        assert_eq!(s.at_time(SimTime::from_minutes(10)), Some(30.0));
        assert_eq!(s.at_time(SimTime::from_minutes(5)), None);
    }

    #[test]
    fn downsample_skips_gaps_and_marks_empty_buckets() {
        let s = UtilSeries::from_percentages(
            SimTime::ZERO,
            [10.0, f32::NAN, f32::NAN, f32::NAN, 30.0, 50.0],
        );
        let out = s.downsample(2).unwrap();
        assert_eq!(out[0], 10.0);
        assert!(out[1].is_nan());
        assert_eq!(out[2], 40.0);
    }

    #[test]
    fn averaging_skips_gaps_per_slot() {
        let a = UtilSeries::from_percentages(SimTime::ZERO, [10.0, f32::NAN, f32::NAN]);
        let b = UtilSeries::from_percentages(SimTime::ZERO, [30.0, 40.0, f32::NAN]);
        let avg = average_series(&[&a, &b]).unwrap();
        assert_eq!(avg.get(0), Some(20.0));
        assert_eq!(avg.get(1), Some(40.0));
        assert_eq!(avg.get(2), None);
    }

    #[test]
    fn quantized_roundtrip_is_bit_exact() {
        let s = UtilSeries::from_percentages(SimTime::from_hours(2), [0.0, 12.3, f32::NAN, 99.9]);
        let back = UtilSeries::from_quantized(s.start(), Bytes::copy_from_slice(s.as_quantized()));
        assert_eq!(s, back);
        assert!(back.is_missing(2));
        assert_eq!(back.start(), SimTime::from_hours(2));
    }

    #[test]
    fn fully_missing_series_has_zero_coverage_mean() {
        let s = UtilSeries::from_percentages(SimTime::ZERO, [f32::NAN, f32::INFINITY]);
        assert_eq!(s.present_count(), 0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.mean(), 0.0);
        let empty = UtilSeries::from_percentages(SimTime::ZERO, std::iter::empty());
        assert_eq!(empty.coverage(), 0.0);
    }
}
