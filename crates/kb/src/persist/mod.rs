//! Knowledge-base persistence.
//!
//! Two layers live here:
//!
//! - **The durable store** ([`DurableKb`]): a length-prefixed,
//!   CRC-checksummed write-ahead log appended before every write, plus
//!   per-shard binary snapshots committed by an atomic manifest rename.
//!   Recovery ([`DurableKb::open`]) loads the newest committed snapshot
//!   generation and replays the WAL tail, tolerating a torn final
//!   record (the residue of a crash mid-append) and failing loudly on
//!   everything else. Crash behaviour is testable in-process: a
//!   [`CrashPlan`] arms a [`CrashPoint`] and the layer simulates a
//!   process kill exactly there.
//! - **TSV export/import** ([`write_snapshot`]/[`read_snapshot`]): the
//!   human-readable interchange format, value-exact since floats are
//!   printed with Rust's shortest round-trip formatting.

mod codec;
mod crash;
mod crc;
mod durable;
mod snapshot;
mod tsv;
mod wal;

pub use crash::{CrashPlan, CrashPoint};
pub use durable::{DurableKb, RecoveryStats, SnapshotReport, SyncPolicy};
pub use tsv::{read_snapshot, write_snapshot, HEADER};

/// Errors from the durability layer.
#[derive(Debug)]
#[non_exhaustive]
pub enum PersistError {
    /// An underlying I/O failure on `file`.
    Io {
        /// The file being read or written.
        file: String,
        /// The OS error.
        source: std::io::Error,
    },
    /// `file`'s bytes fail validation inside a specific record:
    /// a checksum mismatch, an implausible length, an unknown tag.
    /// Nothing is loaded — silently accepting corrupt state is never an
    /// option.
    Corrupt {
        /// The file holding the bad record.
        file: String,
        /// 1-based ordinal of the offending record in that file.
        record: u64,
        /// What failed to validate.
        reason: String,
    },
    /// `file` is structurally wrong before any record can be blamed: a
    /// bad magic, a truncated manifest, a snapshot cut that lands off a
    /// record boundary.
    Malformed {
        /// The offending file.
        file: String,
        /// What is structurally wrong.
        reason: String,
    },
    /// A [`CrashPlan`] fired (or already had): the simulated process is
    /// dead and refuses all further work. Test-only in practice — a
    /// disarmed [`DurableKb`] never returns this.
    Crashed,
}

impl PersistError {
    /// Wraps an I/O error with the path it happened on.
    pub(crate) fn io(path: &std::path::Path, source: std::io::Error) -> Self {
        PersistError::Io {
            file: path.display().to_string(),
            source,
        }
    }
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io { file, source } => write!(f, "{file}: io error: {source}"),
            PersistError::Corrupt {
                file,
                record,
                reason,
            } => write!(f, "{file}: record {record}: {reason}"),
            PersistError::Malformed { file, reason } => write!(f, "{file}: {reason}"),
            PersistError::Crashed => write!(f, "simulated crash: durability layer is dead"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}
