//! Crash-point injection: the test harness's lever for simulating a
//! process kill at every durability boundary.
//!
//! A [`CrashPlan`] arms one [`CrashPoint`]; when the durability layer
//! reaches that boundary for the planned occurrence, the switch goes
//! *dead*: the in-flight operation stops exactly there (a mid-record
//! point stops after writing a partial record), returns
//! [`PersistError::Crashed`](super::PersistError::Crashed), and every
//! later operation on the same [`DurableKb`](super::DurableKb) refuses
//! to touch disk or memory — the process is "dead" until the test
//! recovers from the directory with a fresh open.

use super::PersistError;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;

/// Every boundary in the durability layer where a process can die. The
/// crash-matrix test in `crates/kb/tests/crash_matrix.rs` enumerates
/// all of them and asserts recovery reproduces the committed state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum CrashPoint {
    /// Before any byte of the WAL record is written: the operation is
    /// wholly lost.
    BeforeWalAppend,
    /// After half the WAL record's bytes: recovery must drop the torn
    /// tail and keep everything before it.
    MidWalRecord,
    /// After the WAL record is fully on disk but before the in-memory
    /// store applies it: the operation is durable and recovery must
    /// include it.
    AfterWalAppend,
    /// At the start of a snapshot, before any shard file is written.
    BeforeSnapshot,
    /// Mid-write of one shard's snapshot temp file (a torn `.tmp` that
    /// was never renamed into place).
    MidShardSnapshot,
    /// After N shard files have been renamed into place but before the
    /// rest (and before the manifest): the old generation stays live.
    BetweenShardSnapshots,
    /// Every shard file renamed, manifest temp written, but the atomic
    /// manifest rename never happened: the old generation stays live.
    BeforeManifestRename,
    /// After the manifest rename: the new generation is committed; only
    /// the post-commit cleanup and WAL rotation are lost.
    AfterManifestRename,
    /// Mid-write of the rotated WAL segment's temp file (the manifest
    /// already committed; the torn `wal.log.tmp` is never renamed, so
    /// the old segment keeps serving the manifest's cut offset).
    MidWalRotate,
    /// After the rotated WAL segment replaced `wal.log`: the new
    /// generation is committed and the log holds only the post-cut
    /// tail.
    AfterWalRotate,
}

impl CrashPoint {
    /// Every crash point, for matrix-style enumeration.
    pub const ALL: [CrashPoint; 10] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::MidWalRecord,
        CrashPoint::AfterWalAppend,
        CrashPoint::BeforeSnapshot,
        CrashPoint::MidShardSnapshot,
        CrashPoint::BetweenShardSnapshots,
        CrashPoint::BeforeManifestRename,
        CrashPoint::AfterManifestRename,
        CrashPoint::MidWalRotate,
        CrashPoint::AfterWalRotate,
    ];

    /// The points reached by write operations (`upsert`/`feed`/`remove`).
    pub const WRITE_PATH: [CrashPoint; 3] = [
        CrashPoint::BeforeWalAppend,
        CrashPoint::MidWalRecord,
        CrashPoint::AfterWalAppend,
    ];

    /// The points reached by [`DurableKb::snapshot`](super::DurableKb::snapshot).
    pub const SNAPSHOT_PATH: [CrashPoint; 7] = [
        CrashPoint::BeforeSnapshot,
        CrashPoint::MidShardSnapshot,
        CrashPoint::BetweenShardSnapshots,
        CrashPoint::BeforeManifestRename,
        CrashPoint::AfterManifestRename,
        CrashPoint::MidWalRotate,
        CrashPoint::AfterWalRotate,
    ];

    /// `true` if an operation crashed at this point is nonetheless
    /// durable: recovery must include it in the committed state.
    #[must_use]
    pub fn op_survives(self) -> bool {
        self == CrashPoint::AfterWalAppend
    }

    /// `true` if a snapshot crashed at this point nonetheless committed
    /// its generation: the manifest rename had already landed, so
    /// recovery must report the *new* generation (everything at or
    /// after [`CrashPoint::AfterManifestRename`]).
    #[must_use]
    pub fn snapshot_commits(self) -> bool {
        matches!(
            self,
            CrashPoint::AfterManifestRename | CrashPoint::MidWalRotate | CrashPoint::AfterWalRotate
        )
    }
}

/// One armed crash: die the `at_occurrence`-th time `point` is reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// The boundary to die at.
    pub point: CrashPoint,
    /// Which occurrence of the boundary kills the process (1-based).
    /// `CrashPlan::at(point)` uses 1: the very next time.
    pub at_occurrence: u32,
}

impl CrashPlan {
    /// Die the next time `point` is reached.
    #[must_use]
    pub fn at(point: CrashPoint) -> Self {
        Self {
            point,
            at_occurrence: 1,
        }
    }

    /// Die the `occurrence`-th time `point` is reached (1-based).
    ///
    /// # Panics
    /// Panics if `occurrence == 0`.
    #[must_use]
    pub fn at_occurrence(point: CrashPoint, occurrence: u32) -> Self {
        assert!(occurrence > 0, "occurrences are 1-based");
        Self {
            point,
            at_occurrence: occurrence,
        }
    }
}

/// The shared switch a [`DurableKb`](super::DurableKb) consults at every
/// boundary. Disarmed in production: `reached` is one relaxed atomic
/// load.
#[derive(Debug, Default)]
pub(crate) struct CrashSwitch {
    dead: AtomicBool,
    armed: Mutex<Option<(CrashPlan, u32)>>,
    /// Pending *transient* torn-append faults (not kills): each makes
    /// one WAL append write a partial frame and report an I/O error
    /// while the process stays alive — the disk-full/EIO shape whose
    /// retry path must not corrupt the log.
    torn_faults: AtomicU32,
}

impl CrashSwitch {
    /// Arms `plan`; replaces any previously armed plan.
    pub(crate) fn arm(&self, plan: CrashPlan) {
        *self
            .armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some((plan, 0));
    }

    /// Queues `count` transient torn-append faults.
    pub(crate) fn arm_torn_appends(&self, count: u32) {
        self.torn_faults.fetch_add(count, Ordering::SeqCst);
    }

    /// Consumes one pending torn-append fault, if any.
    pub(crate) fn take_torn_fault(&self) -> bool {
        self.torn_faults
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
            .is_ok()
    }

    /// `true` once a crash has fired.
    pub(crate) fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Fails if the simulated process has already died — no further I/O
    /// or memory mutation is allowed.
    pub(crate) fn alive(&self) -> Result<(), PersistError> {
        if self.is_dead() {
            return Err(PersistError::Crashed);
        }
        Ok(())
    }

    /// Notes that `point` was reached; dies (marks dead and errors) if
    /// the armed plan says so.
    pub(crate) fn reached(&self, point: CrashPoint) -> Result<(), PersistError> {
        self.alive()?;
        if self.should_die(point) {
            return Err(PersistError::Crashed);
        }
        Ok(())
    }

    /// Occurrence bookkeeping for `point`; marks the switch dead and
    /// returns `true` when the armed occurrence fires. Used directly by
    /// the mid-record points, which must do a partial write *before*
    /// dying.
    pub(crate) fn should_die(&self, point: CrashPoint) -> bool {
        let mut armed = self
            .armed
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let Some((plan, seen)) = armed.as_mut() else {
            return false;
        };
        if plan.point != point {
            return false;
        }
        *seen += 1;
        if *seen >= plan.at_occurrence {
            self.dead.store(true, Ordering::SeqCst);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_switch_never_dies() {
        let s = CrashSwitch::default();
        for point in CrashPoint::ALL {
            assert!(s.reached(point).is_ok());
        }
        assert!(!s.is_dead());
    }

    #[test]
    fn armed_occurrence_counts_down_then_kills() {
        let s = CrashSwitch::default();
        s.arm(CrashPlan::at_occurrence(CrashPoint::BeforeWalAppend, 3));
        assert!(s.reached(CrashPoint::BeforeWalAppend).is_ok());
        assert!(s.reached(CrashPoint::AfterWalAppend).is_ok()); // other point: no count
        assert!(s.reached(CrashPoint::BeforeWalAppend).is_ok());
        assert!(matches!(
            s.reached(CrashPoint::BeforeWalAppend),
            Err(PersistError::Crashed)
        ));
        assert!(s.is_dead());
        // Dead means dead: every later boundary refuses.
        assert!(matches!(
            s.reached(CrashPoint::BeforeSnapshot),
            Err(PersistError::Crashed)
        ));
        assert!(s.alive().is_err());
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn zero_occurrence_rejected() {
        let _ = CrashPlan::at_occurrence(CrashPoint::MidWalRecord, 0);
    }
}
