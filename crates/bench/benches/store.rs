//! Benchmarks for the out-of-core columnar trace store: parallel
//! compressed writes, resident vs streamed reads, and a peak-live-heap
//! acceptance gate proving an out-of-core analysis pass stays under a
//! memory budget a fully-materialized trace exceeds. Results merge into
//! `BENCH_store.json` at the repo root.

use cloudscope::obs::counter;
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::store::{TelemetryMode, WriteOptions};
use cloudscope::tracegen::{generate_with, read_generated, write_generated};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// --- peak-live-heap allocator ------------------------------------------

/// Tracks live heap bytes and their high-water mark. Unlike an RSS
/// probe this is deterministic, cross-platform, and immune to the
/// allocator's reluctance to return pages to the OS — exactly the
/// number the out-of-core budget argues about.
struct PeakAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for PeakAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: PeakAlloc = PeakAlloc;

/// Runs `f` and returns its value plus the high-water mark of heap
/// bytes allocated *above* the live baseline at entry.
fn peak_during<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let base = LIVE_BYTES.load(Ordering::SeqCst);
    PEAK_BYTES.store(base, Ordering::SeqCst);
    let value = f();
    (
        value,
        PEAK_BYTES.load(Ordering::SeqCst).saturating_sub(base),
    )
}

// --- fixtures ----------------------------------------------------------

fn bench_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cloudscope-bench-store-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate_with(&GeneratorConfig::medium(4242), Parallelism::default()))
}

/// A committed store of the benchmark trace, written once and reused by
/// every read benchmark and the acceptance gate. Chunks are sealed at
/// 128 KiB instead of the 1 MiB default so the medium trace gets the
/// same geometry a full-scale trace has under defaults — several chunks
/// per (region, day) lane. With one-chunk lanes the auto-sized sweep
/// cache would degenerate into holding the entire store and the
/// out-of-core peak-heap gate below would measure nothing.
fn committed() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = bench_dir("committed");
        let opts = WriteOptions {
            target_chunk_bytes: 128 << 10,
            ..WriteOptions::default()
        };
        write_generated(generated(), &dir, opts, &Parallelism::default())
            .expect("seed store write");
        dir
    })
}

/// Bytes the committed store occupies on disk.
fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("entry").metadata().expect("metadata").len())
        .sum()
}

/// Forces every telemetry series through `Trace::util`, so a lazy trace
/// streams its full column store and a resident one walks memory.
fn telemetry_sweep(trace: &Trace) -> usize {
    trace
        .vms()
        .iter()
        .filter_map(|vm| trace.util(vm.id))
        .map(|u| u.present_count())
        .sum()
}

// --- benchmarks --------------------------------------------------------

fn bench_store_write(c: &mut Criterion) {
    // First group to run: point the harness at the repo-root JSON file.
    c.json_output(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_store.json"
    ));
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let samples = if smoke { 3 } else { 10 };

    let g = generated();
    let mut group = c.benchmark_group("store_write");
    group.sample_size(samples);
    for workers in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel", workers),
            &workers,
            |b, &workers| {
                let par = Parallelism::with_workers(workers);
                let dir = bench_dir(&format!("write-{workers}"));
                b.iter(|| {
                    write_generated(black_box(g), &dir, WriteOptions::default(), &par)
                        .expect("bench write");
                });
                let _ = std::fs::remove_dir_all(&dir);
            },
        );
    }
    group.finish();
}

fn bench_store_read(c: &mut Criterion) {
    let smoke = std::env::var_os("CLOUDSCOPE_BENCH_SMOKE").is_some();
    let samples = if smoke { 3 } else { 10 };
    let dir = committed().clone();
    let par = Parallelism::default();

    let mut group = c.benchmark_group("store_read");
    group.sample_size(samples);
    // Fully-materialized read: decompress everything into memory.
    group.bench_function("resident", |b| {
        b.iter(|| {
            let back = read_generated(&dir, TelemetryMode::Resident, &par).expect("read");
            black_box(telemetry_sweep(&back.trace))
        });
    });
    // Streamed read + full telemetry sweep through an auto-sized cache
    // (one chunk per (region, day) lane + 1 — the id-ordered sweep
    // working set; any fixed cache below that thrashes cyclically).
    group.bench_function("out_of_core_sweep", |b| {
        b.iter(|| {
            let back = read_generated(&dir, TelemetryMode::OutOfCore { cache_chunks: 0 }, &par)
                .expect("read");
            black_box(telemetry_sweep(&back.trace))
        });
    });
    // Metadata-only projection: records and sidecars, telemetry chunks
    // never touched — the predicate/projection pushdown fast path.
    group.bench_function("metadata_only", |b| {
        b.iter(|| {
            let back = read_generated(&dir, TelemetryMode::OutOfCore { cache_chunks: 1 }, &par)
                .expect("read");
            let stats = back.trace.stats();
            black_box(stats.private_vms + stats.public_vms)
        });
    });
    group.finish();
}

/// Not a timing benchmark: derives the compression/throughput headline
/// numbers from the results above and gates the out-of-core memory
/// claim — a full analysis pass streaming from disk must fit a heap
/// budget the fully-materialized trace provably exceeds.
fn verify_acceptance(c: &mut Criterion) {
    let median = |id: &str| {
        c.results()
            .iter()
            .find(|r| r.id == id)
            .unwrap_or_else(|| panic!("missing bench result {id}"))
            .median_ns
    };
    let write_serial_ns = median("store_write/parallel/1");
    let write_median_ns = median("store_write/parallel/8");
    let resident_median_ns = median("store_read/resident");
    let sweep_median_ns = median("store_read/out_of_core_sweep");

    // Overlap gate: the pipelined out-of-core sweep (prefetch +
    // parallel block decode + retire-aware eviction) must land within
    // 1.4x of the fully-resident sweep over the same store.
    let ooc_over_resident = sweep_median_ns / resident_median_ns;
    c.report_metric("store/out_of_core_over_resident", ooc_over_resident);
    println!(
        "store sweep overlap: out-of-core {:.1} ms vs resident {:.1} ms ({ooc_over_resident:.2}x)",
        sweep_median_ns / 1e6,
        resident_median_ns / 1e6,
    );
    assert!(
        ooc_over_resident <= 1.4,
        "pipelined out-of-core sweep must stay within 1.4x of resident, got {ooc_over_resident:.2}x"
    );

    // Write scaling: the per-(chunk, column) compression fan-out must
    // actually use extra workers. On a multi-core box 8 workers must
    // beat 1; a starved CI box can't show a speedup, so there the gate
    // only bounds the parallel overhead.
    let write_scaling = write_serial_ns / write_median_ns;
    c.report_metric("store/write_scaling_1_to_8", write_scaling);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "store write scaling: 1 worker {:.1} ms, 8 workers {:.1} ms ({write_scaling:.2}x on {cores} cores)",
        write_serial_ns / 1e6,
        write_median_ns / 1e6,
    );
    if cores >= 8 {
        assert!(
            write_scaling > 1.15,
            "8 write workers on {cores} cores must beat 1 measurably, got {write_scaling:.2}x"
        );
    } else {
        assert!(
            write_scaling > 0.75,
            "8 write workers on {cores} cores must not cost more than 1.33x serial, \
             got {write_scaling:.2}x"
        );
    }

    // Compression: raw vs compressed bytes over every chunk written by
    // this process (the counters are cumulative, the ratio is exact).
    let raw = counter("store.write.bytes_raw").get();
    let compressed = counter("store.write.bytes_compressed").get();
    assert!(raw > 0 && compressed > 0, "write benches ran first");
    let ratio = raw as f64 / compressed as f64;
    c.report_metric("store/compression_ratio", ratio);
    println!("store compression: {raw} raw -> {compressed} compressed ({ratio:.2}x)");
    assert!(
        ratio > 1.0,
        "the block codec must beat raw storage on telemetry, got {ratio:.2}x"
    );

    // Throughput headline numbers, from the on-disk footprint of the
    // committed store and the measured medians.
    let disk = dir_bytes(committed()) as f64;
    let write_mb_s = disk / 1e6 / (write_median_ns / 1e9);
    let sweep_mb_s = disk / 1e6 / (sweep_median_ns / 1e9);
    c.report_metric("store/write_mb_per_sec", write_mb_s);
    c.report_metric("store/out_of_core_sweep_mb_per_sec", sweep_mb_s);
    println!("store throughput: write {write_mb_s:.0} MB/s, streamed sweep {sweep_mb_s:.0} MB/s");

    // Peak-heap gate. The same full characterization pass runs twice
    // from the same committed store: once fully materialized, once
    // streaming through the auto-sized cache. The out-of-core pass must stay
    // under a budget set midway below the resident peak — if chunking
    // or the cache ever regress into materializing the column store,
    // this gate trips before any figure output changes.
    let dir = committed().clone();
    let par = Parallelism::default();
    let analyze = |mode: TelemetryMode| {
        let back = read_generated(&dir, mode, &par).expect("read for analysis");
        let report = CharacterizationReport::analyze(&back.trace, &ReportConfig::default())
            .expect("analysis");
        black_box(report.insight_verdicts().len())
    };
    let (_, resident_peak) = peak_during(|| analyze(TelemetryMode::Resident));
    let (_, ooc_peak) = peak_during(|| analyze(TelemetryMode::OutOfCore { cache_chunks: 0 }));
    let budget = resident_peak * 3 / 4;
    c.report_metric("store/peak_heap_resident_mb", resident_peak as f64 / 1e6);
    c.report_metric("store/peak_heap_out_of_core_mb", ooc_peak as f64 / 1e6);
    c.report_metric("store/peak_heap_budget_mb", budget as f64 / 1e6);
    println!(
        "peak live heap during analysis: resident {:.1} MB, out-of-core {:.1} MB (budget {:.1} MB)",
        resident_peak as f64 / 1e6,
        ooc_peak as f64 / 1e6,
        budget as f64 / 1e6,
    );
    assert!(
        ooc_peak < budget,
        "out-of-core analysis peaked at {ooc_peak} B, over the {budget} B budget \
         (resident peak {resident_peak} B)"
    );

    let _ = std::fs::remove_dir_all(committed());
}

criterion_group!(
    store,
    bench_store_write,
    bench_store_read,
    verify_acceptance
);
criterion_main!(store);
