//! VM-size analyses (Figure 2): the cores × memory heatmap and the
//! corner-mass statistic that distinguishes the public cloud's demand for
//! very small and very large VMs.

use crate::deployment::record_in_cloud;
use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_stats::{Axis, Heatmap};

/// Builds the Figure 2 heatmap for one cloud: logarithmic axes over
/// cores (`[1, 128)`) and memory GiB (`[1, 1024)`), one observation per
/// VM record in the trace.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if the cloud has no VMs.
pub fn vm_size_heatmap(trace: &Trace, cloud: CloudKind) -> Result<Heatmap, AnalysisError> {
    vm_size_heatmap_from(trace.vms(), trace.subscriptions(), cloud)
}

/// Record-slice variant of [`vm_size_heatmap`] — the whole figure is
/// metadata-only, so a pushed-down store read that skips every
/// telemetry chunk reproduces it exactly.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if the cloud has no VMs.
pub fn vm_size_heatmap_from(
    records: &[VmRecord],
    subscriptions: &[Subscription],
    cloud: CloudKind,
) -> Result<Heatmap, AnalysisError> {
    let x = Axis::logarithmic(1.0, 128.0, 7).expect("static axis");
    let y = Axis::logarithmic(1.0, 1024.0, 10).expect("static axis");
    let mut heatmap = Heatmap::new(x, y);
    let mut any = false;
    for vm in records {
        if !record_in_cloud(vm, subscriptions, cloud) {
            continue;
        }
        heatmap.push(f64::from(vm.size.cores()), vm.size.memory_gb());
        any = true;
    }
    if !any {
        return Err(AnalysisError::NoData("vm sizes"));
    }
    Ok(heatmap)
}

/// The Figure 2 bundle: both heatmaps plus corner-mass fractions.
#[derive(Debug, Clone, PartialEq)]
pub struct VmSizeAnalysis {
    /// Private-cloud size heatmap.
    pub private: Heatmap,
    /// Public-cloud size heatmap.
    pub public: Heatmap,
    /// Fraction of private VMs in the grid's extreme corners.
    pub private_corner_mass: f64,
    /// Fraction of public VMs in the grid's extreme corners.
    pub public_corner_mass: f64,
}

impl VmSizeAnalysis {
    /// Runs the Figure 2 analysis.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud has no VMs.
    pub fn run(trace: &Trace) -> Result<Self, AnalysisError> {
        Self::run_from_records(trace.vms(), trace.subscriptions())
    }

    /// Runs the Figure 2 analysis over a bare record slice, as produced
    /// by a metadata-only store scan (`read_vm_records`) that never
    /// touches a telemetry chunk.
    ///
    /// # Errors
    /// Returns [`AnalysisError::NoData`] if either cloud has no VMs.
    pub fn run_from_records(
        records: &[VmRecord],
        subscriptions: &[Subscription],
    ) -> Result<Self, AnalysisError> {
        let private = vm_size_heatmap_from(records, subscriptions, CloudKind::Private)?;
        let public = vm_size_heatmap_from(records, subscriptions, CloudKind::Public)?;
        // Two bins from each edge ≈ the "corner" regions of the figure.
        let private_corner_mass = private.corner_mass(2);
        let public_corner_mass = public.corner_mass(2);
        Ok(Self {
            private,
            public,
            private_corner_mass,
            public_corner_mass,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn heatmap_counts_every_vm() {
        let trace = tiny_trace();
        let private = vm_size_heatmap(&trace, CloudKind::Private).unwrap();
        assert_eq!(private.total(), 7, "6 standing + 1 short-lived");
        let public = vm_size_heatmap(&trace, CloudKind::Public).unwrap();
        assert_eq!(public.total(), 5);
        assert_eq!(private.overflow(), 0);
    }

    #[test]
    fn sizes_land_in_expected_bins() {
        let trace = tiny_trace();
        let hm = vm_size_heatmap(&trace, CloudKind::Private).unwrap();
        // 4-core VMs -> log2(4) = 2 -> bin 2 on the core axis;
        // 16 GiB -> log2(16)=4 -> bin 4 on the memory axis.
        assert_eq!(hm.cell(2, 4), 6);
        // The 2-core/8-GiB short-lived VM.
        assert_eq!(hm.cell(1, 3), 1);
    }

    #[test]
    fn full_analysis_runs() {
        let trace = tiny_trace();
        let analysis = VmSizeAnalysis::run(&trace).unwrap();
        assert!(analysis.private_corner_mass >= 0.0);
        assert!(analysis.public_corner_mass >= 0.0);
        assert_eq!(
            analysis.private.total() + analysis.public.total(),
            trace.vms().len() as u64
        );
    }
}
