//! # cloudscope-kb
//!
//! The centralized workload knowledge base the paper's Section V calls
//! for: extractors turn raw trace telemetry into per-subscription
//! [`knowledge::WorkloadKnowledge`] (dominant utilization pattern,
//! lifetime class, burstiness, region-agnosticism, footprint), and a
//! sharded, secondary-indexed [`store::KnowledgeBase`] serves the typed
//! [`query::KbQuery`] reads that the optimization policies in
//! `cloudscope-mgmt` consume (spot candidates, over-subscription
//! candidates, shiftable workloads) — index walks, not full scans, and
//! no cloning outside `collect`.
//!
//! ## Example
//! ```no_run
//! use cloudscope_kb::{extract_cloud_knowledge, KbQuery, KnowledgeBase};
//! use cloudscope_analysis::PatternClassifier;
//! use cloudscope_model::prelude::CloudKind;
//! use cloudscope_tracegen::{generate, GeneratorConfig};
//!
//! let generated = generate(&GeneratorConfig::default());
//! let kb = KnowledgeBase::new();
//! let classifier = PatternClassifier::default();
//! for cloud in CloudKind::BOTH {
//!     kb.feed(extract_cloud_knowledge(&generated.trace, cloud, &classifier, 8));
//! }
//! // Index-backed candidate count: no scan, no clones.
//! println!("{} spot candidates", KbQuery::spot_candidates().count(&kb));
//! // Refine with residual predicates; clone only what `collect` returns.
//! let big_fleets = KbQuery::spot_candidates()
//!     .filter(|k| k.vm_count >= 10)
//!     .collect(&kb);
//! println!("{} with 10+ VMs", big_fleets.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod extract;
pub mod knowledge;
pub mod persist;
pub mod pipeline;
pub mod query;
mod shard;
pub mod store;

pub use extract::{
    extract_cloud_knowledge, extract_subscription_knowledge, extract_subscription_knowledge_from,
};
pub use knowledge::{LifetimeClass, WorkloadKnowledge};
pub use persist::{
    read_snapshot, write_snapshot, CrashPlan, CrashPoint, DurableKb, PersistError, RecoveryStats,
    SnapshotReport, SyncPolicy,
};
pub use pipeline::{
    publish_batch, run_extraction_pipeline, run_extraction_pipeline_with, PipelineStats,
    RetryPolicy,
};
pub use query::{KbQuery, KbSelector};
pub use store::{FeedOutcome, KbStore, KnowledgeBase, StoreError};
