//! The store manifest: the single commit point for a written trace.
//!
//! A trace directory is a set of immutable chunk files plus one
//! `manifest.csm` naming every chunk (with its exact length and CRC)
//! and carrying the small non-columnar blobs (topology, subscriptions,
//! telemetry presence, generator sidecars). Readers trust only what
//! the manifest names: chunks written but never committed are garbage,
//! a manifest naming a missing or resized chunk is loudly stale.
//!
//! Commit reuses the KB durability idioms: write to a temp name, fsync
//! the file, rename over the final name, fsync the directory.

use crate::chunk::{ChunkKind, ChunkMeta};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::layout::{Dec, Enc};
use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Magic bytes opening the manifest.
const MANIFEST_MAGIC: &[u8; 8] = b"CSMANIF1";
/// Manifest format version.
const MANIFEST_VERSION: u16 = 1;
/// The manifest's file name inside a trace directory.
pub const MANIFEST_NAME: &str = "manifest.csm";

/// One committed chunk: its logical identity plus the exact file
/// length and CRC the reader must observe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEntry {
    /// Logical chunk identity (kind, region, day, seq, rows, id range).
    pub meta: ChunkMeta,
    /// Exact on-disk file length.
    pub file_len: u64,
    /// CRC-32 of the entire chunk file.
    pub file_crc: u32,
}

/// The decoded manifest.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Total VM records across all metadata chunks.
    pub vm_count: u64,
    /// Every committed chunk, in writer seal order.
    pub chunks: Vec<ChunkEntry>,
    /// Named opaque blobs (topology, subscriptions, sidecars).
    pub blobs: Vec<(String, Vec<u8>)>,
}

impl Manifest {
    /// Looks up a named blob.
    #[must_use]
    pub fn blob(&self, name: &str) -> Option<&[u8]> {
        self.blobs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
    }

    /// Serializes the manifest (with trailing CRC).
    #[must_use]
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut e = Enc::with_capacity(256 + self.chunks.len() * 64);
        e.put_slice(MANIFEST_MAGIC);
        e.put_u16(MANIFEST_VERSION);
        e.put_u64(self.vm_count);
        e.put_u32(self.chunks.len() as u32);
        for c in &self.chunks {
            e.put_str(&c.meta.name());
            e.put_u8(c.meta.kind.tag());
            e.put_u32(c.meta.region);
            e.put_u8(c.meta.day);
            e.put_u32(c.meta.seq);
            e.put_u32(c.meta.rows);
            e.put_u64(c.meta.min_vm);
            e.put_u64(c.meta.max_vm);
            e.put_u64(c.file_len);
            e.put_u32(c.file_crc);
        }
        e.put_u32(self.blobs.len() as u32);
        for (name, bytes) in &self.blobs {
            e.put_str(name);
            e.put_u32(bytes.len() as u32);
            e.put_slice(bytes);
        }
        let crc = crc32(e.as_slice());
        e.put_u32(crc);
        e.into_vec()
    }

    /// Parses and validates a manifest file's bytes.
    ///
    /// # Errors
    /// [`StoreError::Malformed`] on any structural or checksum defect,
    /// naming the manifest file and the decode position.
    pub(crate) fn decode(path: &Path, bytes: &[u8]) -> Result<Self, StoreError> {
        let fail = |reason: String| StoreError::malformed(path, reason);
        if bytes.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(fail(format!(
                "{} bytes is too short for a manifest",
                bytes.len()
            )));
        }
        let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("split of 4"));
        let actual_crc = crc32(body);
        if stored_crc != actual_crc {
            return Err(fail(format!(
                "manifest checksum mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut d = Dec::new(body);
        let at = |d: &Dec<'_>, e: String| format!("at offset {}: {e}", d.position());
        let magic = d.take_slice(8).map_err(|e| fail(at(&d, e)))?;
        if magic != MANIFEST_MAGIC {
            return Err(fail(format!("bad magic {magic:02x?}")));
        }
        let version = d.take_u16().map_err(|e| fail(at(&d, e)))?;
        if version != MANIFEST_VERSION {
            return Err(fail(format!("unsupported manifest version {version}")));
        }
        let vm_count = d.take_u64().map_err(|e| fail(at(&d, e)))?;
        let chunk_count = d.take_u32().map_err(|e| fail(at(&d, e)))? as usize;
        // Each entry is at least 40 bytes even with an empty name.
        if chunk_count > body.len() / 40 {
            return Err(fail(format!(
                "chunk count {chunk_count} impossible for a {}-byte manifest",
                bytes.len()
            )));
        }
        let mut chunks = Vec::with_capacity(chunk_count);
        for i in 0..chunk_count {
            let entry = (|| -> Result<ChunkEntry, String> {
                let name = d.take_str()?;
                let kind = ChunkKind::from_tag(d.take_u8()?)?;
                let region = d.take_u32()?;
                let day = d.take_u8()?;
                if day > 6 {
                    return Err(format!("day {day} out of the trace week"));
                }
                let seq = d.take_u32()?;
                let rows = d.take_u32()?;
                let min_vm = d.take_u64()?;
                let max_vm = d.take_u64()?;
                let meta = ChunkMeta {
                    kind,
                    region,
                    day,
                    seq,
                    rows,
                    min_vm,
                    max_vm,
                };
                if meta.name() != name {
                    return Err(format!(
                        "entry name {name:?} disagrees with its fields ({})",
                        meta.name()
                    ));
                }
                let file_len = d.take_u64()?;
                let file_crc = d.take_u32()?;
                Ok(ChunkEntry {
                    meta,
                    file_len,
                    file_crc,
                })
            })()
            .map_err(|e| fail(format!("chunk entry {i}: {e}")))?;
            chunks.push(entry);
        }
        let blob_count = d.take_u32().map_err(|e| fail(at(&d, e)))? as usize;
        if blob_count > body.len() / 6 {
            return Err(fail(format!("blob count {blob_count} impossible")));
        }
        let mut blobs = Vec::with_capacity(blob_count);
        for i in 0..blob_count {
            let blob = (|| -> Result<(String, Vec<u8>), String> {
                let name = d.take_str()?;
                let len = d.take_u32()? as usize;
                let bytes = d.take_slice(len)?;
                Ok((name, bytes.to_vec()))
            })()
            .map_err(|e| fail(format!("blob {i}: {e}")))?;
            blobs.push(blob);
        }
        if d.remaining() != 0 {
            return Err(fail(format!(
                "{} trailing bytes after the blob table",
                d.remaining()
            )));
        }
        Ok(Self {
            vm_count,
            chunks,
            blobs,
        })
    }
}

/// Writes `bytes` to `final_path` atomically: temp file, fsync,
/// rename, directory fsync. The same protocol as the KB snapshot
/// writer — a crash leaves either the old file or the new one.
pub(crate) fn write_then_rename(final_path: &Path, bytes: &[u8]) -> Result<(), StoreError> {
    let tmp_path = tmp_sibling(final_path);
    let io = |p: &Path| {
        let p = p.to_path_buf();
        move |e: std::io::Error| StoreError::io(&p, e)
    };
    let mut f = File::create(&tmp_path).map_err(io(&tmp_path))?;
    f.write_all(bytes).map_err(io(&tmp_path))?;
    f.sync_all().map_err(io(&tmp_path))?;
    drop(f);
    std::fs::rename(&tmp_path, final_path).map_err(io(final_path))?;
    if let Some(dir) = final_path.parent() {
        fsync_dir(dir)?;
    }
    Ok(())
}

/// Durably records a directory's entry list (after renames).
pub(crate) fn fsync_dir(dir: &Path) -> Result<(), StoreError> {
    let f = File::open(dir).map_err(|e| StoreError::io(dir, e))?;
    f.sync_all().map_err(|e| StoreError::io(dir, e))
}

/// The temp-file name used while writing `final_path`.
fn tmp_sibling(final_path: &Path) -> PathBuf {
    let mut name = final_path
        .file_name()
        .map_or_else(|| "store".into(), |n| n.to_os_string());
    name.push(".tmp");
    final_path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            vm_count: 12,
            chunks: vec![
                ChunkEntry {
                    meta: ChunkMeta {
                        kind: ChunkKind::VmMeta,
                        region: 0,
                        day: 0,
                        seq: 0,
                        rows: 12,
                        min_vm: 0,
                        max_vm: 11,
                    },
                    file_len: 4096,
                    file_crc: 0xDEAD_BEEF,
                },
                ChunkEntry {
                    meta: ChunkMeta {
                        kind: ChunkKind::Telemetry,
                        region: 1,
                        day: 3,
                        seq: 2,
                        rows: 7,
                        min_vm: 3,
                        max_vm: 9,
                    },
                    file_len: 512,
                    file_crc: 1,
                },
            ],
            blobs: vec![
                ("topology".to_owned(), vec![1, 2, 3]),
                ("empty".to_owned(), Vec::new()),
            ],
        }
    }

    #[test]
    fn roundtrip() {
        let m = sample();
        let bytes = m.encode();
        let back = Manifest::decode(Path::new("manifest.csm"), &bytes).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.blob("topology"), Some(&[1u8, 2, 3][..]));
        assert_eq!(back.blob("missing"), None);
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().encode();
        let p = Path::new("manifest.csm");
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                assert!(
                    Manifest::decode(p, &evil).is_err(),
                    "flip at byte {byte} bit {bit} went unnoticed"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        let p = Path::new("manifest.csm");
        for cut in 0..bytes.len() {
            assert!(
                Manifest::decode(p, &bytes[..cut]).is_err(),
                "truncation to {cut} bytes went unnoticed"
            );
        }
    }

    #[test]
    fn errors_name_the_file() {
        let err = Manifest::decode(Path::new("/traces/run1/manifest.csm"), &[0; 4]).unwrap_err();
        assert!(err.to_string().contains("manifest.csm"), "{err}");
    }

    #[test]
    fn write_then_rename_is_atomic_and_durable() {
        let dir = std::env::temp_dir().join(format!("cs-store-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let target = dir.join(MANIFEST_NAME);
        write_then_rename(&target, b"first").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first");
        write_then_rename(&target, b"second").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second");
        assert!(
            !tmp_sibling(&target).exists(),
            "temp file must not survive a commit"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
