//! The typed read API of the knowledge base: a [`KbQuery`] names *what*
//! to select (an index-backed [`KbSelector`] plus optional residual
//! predicates) and *how* to consume it (non-cloning `for_each` / `fold`
//! / `count` terminals, or `collect` which clones exactly the matches).
//!
//! # Contract
//!
//! - Every terminal visits matching entries in ascending
//!   [`SubscriptionId`] order, **regardless of the store's shard count**
//!   — seeded runs produce byte-identical results whether the store has
//!   1 shard or 16.
//! - `for_each`, `fold`, and `count` never clone a [`WorkloadKnowledge`];
//!   `collect` clones only the entries it returns. Non-matching entries
//!   are never cloned by any terminal; index-backed selectors never even
//!   *visit* them.
//! - A query observes one atomic snapshot of the store: all shard read
//!   locks are held for the duration of the terminal, so a concurrent
//!   writer cannot split a query's view.
//!
//! # Example
//! ```
//! use cloudscope_kb::{KbQuery, KnowledgeBase};
//!
//! let kb = KnowledgeBase::new();
//! let big_spot_fleets = KbQuery::spot_candidates()
//!     .filter(|k| k.vm_count >= 10)
//!     .count(&kb);
//! assert_eq!(big_spot_fleets, 0);
//! ```

use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use crate::store::KnowledgeBase;
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::prelude::*;
use std::fmt;

/// A boxed residual predicate of a [`KbQuery`].
type Predicate<'a> = Box<dyn Fn(&WorkloadKnowledge) -> bool + 'a>;

/// What a [`KbQuery`] selects, before residual filtering. Every variant
/// except [`KbSelector::All`] is served by a secondary index, so the
/// store only touches entries that actually match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum KbSelector {
    /// Every entry (a full scan — the only non-indexed selector).
    All,
    /// Workloads of one cloud with the given dominant pattern.
    Pattern(CloudKind, UtilizationPattern),
    /// Workloads whose churn is mostly of the given lifetime class.
    Lifetime(LifetimeClass),
    /// Spot-VM adoption candidates (Insight 2 implication).
    SpotCandidates,
    /// Over-subscription candidates of one cloud (Insight 3 implication).
    OversubscriptionCandidates(CloudKind),
    /// Region-agnostic workloads shiftable between regions (Insight 4).
    Shiftable,
}

/// A typed, composable knowledge-base query: a [`KbSelector`] plus any
/// number of residual predicates, consumed through one of the terminals.
/// Build one with the constructors, refine with [`KbQuery::filter`], and
/// run it against any [`KnowledgeBase`] — queries borrow nothing from a
/// store, so one query value can serve many stores.
pub struct KbQuery<'a> {
    selector: KbSelector,
    filters: Vec<Predicate<'a>>,
}

impl fmt::Debug for KbQuery<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KbQuery")
            .field("selector", &self.selector)
            .field("filters", &self.filters.len())
            .finish()
    }
}

impl<'a> KbQuery<'a> {
    /// A query over `selector` with no residual filters.
    #[must_use]
    pub fn select(selector: KbSelector) -> Self {
        Self {
            selector,
            filters: Vec::new(),
        }
    }

    /// Every entry in the store (full scan).
    #[must_use]
    pub fn all() -> Self {
        Self::select(KbSelector::All)
    }

    /// Every entry matching `predicate` (full scan) — the replacement
    /// for the old `KnowledgeBase::query(predicate)`.
    #[must_use]
    pub fn matching(predicate: impl Fn(&WorkloadKnowledge) -> bool + 'a) -> Self {
        Self::all().filter(predicate)
    }

    /// Workloads of `cloud` with dominant pattern `pattern` (indexed).
    #[must_use]
    pub fn by_pattern(cloud: CloudKind, pattern: UtilizationPattern) -> Self {
        Self::select(KbSelector::Pattern(cloud, pattern))
    }

    /// Workloads whose churn is mostly of lifetime `class` (indexed).
    #[must_use]
    pub fn by_lifetime(class: LifetimeClass) -> Self {
        Self::select(KbSelector::Lifetime(class))
    }

    /// Spot-VM adoption candidates (indexed; Insight 2 implication).
    #[must_use]
    pub fn spot_candidates() -> Self {
        Self::select(KbSelector::SpotCandidates)
    }

    /// Over-subscription candidates of `cloud` (indexed; Insight 3).
    #[must_use]
    pub fn oversubscription_candidates(cloud: CloudKind) -> Self {
        Self::select(KbSelector::OversubscriptionCandidates(cloud))
    }

    /// Region-shiftable workloads (indexed; Insight 4 implication).
    #[must_use]
    pub fn shiftable() -> Self {
        Self::select(KbSelector::Shiftable)
    }

    /// Adds a residual predicate; all predicates must hold for an entry
    /// to reach a terminal. Predicates run against borrowed entries — no
    /// clone is ever made to evaluate one.
    #[must_use]
    pub fn filter(mut self, predicate: impl Fn(&WorkloadKnowledge) -> bool + 'a) -> Self {
        self.filters.push(Box::new(predicate));
        self
    }

    /// The query's selector.
    #[must_use]
    pub fn selector(&self) -> KbSelector {
        self.selector
    }

    /// `true` if the query carries residual predicates beyond its
    /// selector.
    #[must_use]
    pub(crate) fn has_filters(&self) -> bool {
        !self.filters.is_empty()
    }

    /// Evaluates the residual predicates against one entry.
    pub(crate) fn passes(&self, k: &WorkloadKnowledge) -> bool {
        self.filters.iter().all(|f| f(k))
    }

    /// Visits every matching entry in ascending subscription order,
    /// without cloning any of them.
    pub fn for_each(&self, kb: &KnowledgeBase, f: impl FnMut(&WorkloadKnowledge)) {
        kb.for_each_match(self, f);
    }

    /// Folds the matching entries (ascending subscription order) into an
    /// accumulator, without cloning any of them.
    pub fn fold<A>(
        &self,
        kb: &KnowledgeBase,
        init: A,
        mut f: impl FnMut(A, &WorkloadKnowledge) -> A,
    ) -> A {
        let mut acc = Some(init);
        self.for_each(kb, |k| {
            let next = f(acc.take().expect("fold accumulator present"), k);
            acc = Some(next);
        });
        acc.expect("fold accumulator present")
    }

    /// Number of matching entries. With no residual filters this is a
    /// pure index walk: no entry is visited, let alone cloned.
    #[must_use]
    pub fn count(&self, kb: &KnowledgeBase) -> usize {
        kb.count_matches(self)
    }

    /// Snapshot of the matching entries, sorted by subscription. The
    /// only terminal that clones — and it clones exactly the matches.
    #[must_use]
    pub fn collect(&self, kb: &KnowledgeBase) -> Vec<WorkloadKnowledge> {
        kb.collect_matches(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::prelude::SimTime;

    fn knowledge(id: u32, cloud: CloudKind, lifetime: LifetimeClass) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud,
            pattern: Some(UtilizationPattern::Stable),
            lifetime,
            mean_util: 10.0,
            p95_util: 20.0,
            util_cv: 0.1,
            regions: 1,
            region_agnostic: None,
            vm_count: id as usize + 1,
            cores: 4,
            updated_at: SimTime::ZERO,
        }
    }

    fn populated() -> KnowledgeBase {
        let kb = KnowledgeBase::with_shards(3);
        kb.feed([
            knowledge(2, CloudKind::Public, LifetimeClass::MostlyShort),
            knowledge(0, CloudKind::Public, LifetimeClass::MostlyShort),
            knowledge(1, CloudKind::Private, LifetimeClass::MostlyLong),
            knowledge(3, CloudKind::Public, LifetimeClass::Mixed),
        ]);
        kb
    }

    #[test]
    fn terminals_agree_and_sort_by_subscription() {
        let kb = populated();
        let query = KbQuery::spot_candidates();
        let collected = query.collect(&kb);
        assert_eq!(collected.len(), 2);
        assert!(collected[0].subscription < collected[1].subscription);
        assert_eq!(query.count(&kb), collected.len());
        let mut seen = Vec::new();
        query.for_each(&kb, |k| seen.push(k.subscription));
        assert_eq!(
            seen,
            collected.iter().map(|k| k.subscription).collect::<Vec<_>>()
        );
        let total_vms = query.fold(&kb, 0usize, |acc, k| acc + k.vm_count);
        assert_eq!(total_vms, collected.iter().map(|k| k.vm_count).sum());
    }

    #[test]
    fn filters_compose_and_never_widen() {
        let kb = populated();
        let all = KbQuery::all().count(&kb);
        assert_eq!(all, 4);
        let filtered = KbQuery::all()
            .filter(|k| k.cloud == CloudKind::Public)
            .filter(|k| k.vm_count >= 4)
            .collect(&kb);
        assert_eq!(filtered.len(), 1);
        assert_eq!(filtered[0].subscription, SubscriptionId::new(3));
        // matching() is all() + filter().
        let matching =
            KbQuery::matching(|k| k.cloud == CloudKind::Public && k.vm_count >= 4).collect(&kb);
        assert_eq!(matching, filtered);
    }

    #[test]
    fn indexed_selectors_match_scan_equivalents() {
        let kb = populated();
        let by_index = KbQuery::by_lifetime(LifetimeClass::MostlyShort).collect(&kb);
        let by_scan = KbQuery::matching(|k| k.lifetime == LifetimeClass::MostlyShort).collect(&kb);
        assert_eq!(by_index, by_scan);
        assert_eq!(
            KbQuery::by_pattern(CloudKind::Public, UtilizationPattern::Stable).count(&kb),
            3
        );
        assert_eq!(
            KbQuery::by_pattern(CloudKind::Public, UtilizationPattern::Diurnal).count(&kb),
            0
        );
    }

    #[test]
    fn debug_shows_selector_and_filter_count() {
        let q = KbQuery::shiftable().filter(|_| true);
        let dbg = format!("{q:?}");
        assert!(dbg.contains("Shiftable"), "{dbg}");
        assert!(dbg.contains("filters: 1"), "{dbg}");
    }
}
