//! Offline stand-in for the `bytes` crate: a cheaply cloneable,
//! slice-shareable immutable byte buffer. Implements the subset the
//! workspace uses — construction from `Vec<u8>`, `Deref<Target = [u8]>`,
//! and zero-copy [`Bytes::slice`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// An immutable byte buffer; clones and sub-slices share the underlying
/// allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    buf: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self::from(data.to_vec())
    }

    /// Returns a sub-buffer sharing the underlying allocation.
    ///
    /// # Panics
    /// Panics if the range is out of bounds or inverted.
    #[must_use]
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.end - self.start;
        let lo = match range.start_bound() {
            std::ops::Bound::Included(&i) => i,
            std::ops::Bound::Excluded(&i) => i + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            std::ops::Bound::Included(&i) => i + 1,
            std::ops::Bound::Excluded(&i) => i,
            std::ops::Bound::Unbounded => len,
        };
        assert!(
            lo <= hi && hi <= len,
            "slice {lo}..{hi} out of bounds for {len}"
        );
        Self {
            buf: Arc::clone(&self.buf),
            start: self.start + lo,
            end: self.start + hi,
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let end = v.len();
        Self {
            buf: v.into(),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        (**self).hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_slicing_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        assert_eq!(b.len(), 5);
        assert_eq!(b[2], 3);
        let s = b.slice(1..4);
        assert_eq!(&*s, &[2, 3, 4]);
        let ss = s.slice(1..);
        assert_eq!(&*ss, &[3, 4]);
        assert_eq!(Arc::strong_count(&b.buf), 3);
    }

    #[test]
    fn equality_ignores_offsets() {
        let a = Bytes::from(vec![9u8, 7, 7, 9]).slice(1..3);
        let b = Bytes::from(vec![7u8, 7]);
        assert_eq!(a, b);
        assert_ne!(a, Bytes::from(vec![7u8, 8]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_bounds_checked() {
        let _ = Bytes::from(vec![1u8]).slice(0..2);
    }
}
