//! # cloudscope-tracegen
//!
//! Synthetic stand-in for the proprietary one-week Azure trace of the
//! DSN'23 study *"How Different are the Cloud Workloads?"*: a seeded
//! generator producing VM deployment records and 5-minute CPU telemetry
//! for a private and a public cloud whose input distributions are
//! calibrated to every quantitative statement in the paper (lifetime
//! bins, deployment sizes, subscriptions per cluster, pattern mixtures,
//! burst behaviour, geo-load-balanced region-agnostic services — see
//! DESIGN.md §4 for the fact ledger).
//!
//! Deployment flows through the real allocation-service substrate
//! ([`cloudscope_cluster`]) on a discrete-event engine, so placement
//! artifacts (co-location, allocation failures near capacity, fault-
//! domain spreading pressure) emerge mechanically rather than being
//! painted on.
//!
//! ## Example
//! ```no_run
//! use cloudscope_tracegen::{generate, GeneratorConfig};
//!
//! let generated = generate(&GeneratorConfig::default());
//! let stats = generated.trace.stats();
//! assert!(stats.private_vms > 0 && stats.public_vms > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod config;
pub mod generate;
pub mod lifetime;
pub mod reference;
pub mod services;
pub mod sizes;
pub mod store_io;
pub mod utilization;
pub mod validate;

pub use config::{
    ArrivalProfile, CloudProfile, GeneratorConfig, LifetimeProfile, PatternMix, RegionSpec,
    SizeProfile, TopologyConfig,
};
pub use generate::{
    generate, generate_with, generate_with_partition, GeneratedTrace, GenerationReport,
    PartitionMode, ServiceInfo,
};
pub use lifetime::LifetimeSampler;
pub use reference::generate_serial_reference;
pub use sizes::SizeSampler;
pub use store_io::{generate_to_store, read_generated, read_trace_only, write_generated};
pub use utilization::{generate_vm_series, PatternKind, ServiceUtilProfile};
pub use validate::ConfigError;
