//! The per-cluster allocation service: placement policies, fault-domain
//! spreading, spot eviction, and live migration.
//!
//! This is the simulator's stand-in for the platform's allocation service
//! (Protean in the real system): requests name a VM, its size, service,
//! and priority; the allocator picks a node subject to capacity and the
//! spreading rule, or reports a typed failure.

use crate::error::AllocationError;
use crate::node::NodeState;
use cloudscope_model::fast_hash::FastMap;
use cloudscope_model::ids::{ClusterId, NodeId, RackId, ServiceId, VmId};
use cloudscope_model::topology::Cluster;
use cloudscope_model::vm::{Priority, VmSize};
use serde::{Deserialize, Serialize};

/// A placement request, as the allocation service sees it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlacementRequest {
    /// VM to place.
    pub vm: VmId,
    /// Resource shape.
    pub size: VmSize,
    /// Logical service, the unit the spreading rule counts.
    pub service: ServiceId,
    /// Priority class; spot VMs are evictable by on-demand requests.
    pub priority: Priority,
}

/// Node-selection policy among feasible nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Lowest-id node that fits: fast, fragments more.
    FirstFit,
    /// Node with the fewest free cores after placement: packs tightly,
    /// the default of production allocators under capacity pressure.
    #[default]
    BestFit,
    /// Node with the most free cores after placement: spreads load.
    WorstFit,
}

/// Fault-domain spreading: at most `max_same_service_per_rack` VMs of one
/// service per rack. `None` disables the rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpreadingRule {
    /// Per-rack cap on same-service VMs; `None` = unlimited.
    pub max_same_service_per_rack: Option<u32>,
}

/// Counters the allocator maintains; the allocation-failure analyses and
/// the Insight-1 ablation read these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AllocatorStats {
    /// Placement attempts.
    pub attempts: u64,
    /// Successful placements.
    pub successes: u64,
    /// Failures because no node had capacity.
    pub capacity_failures: u64,
    /// Failures because spreading forbade every feasible node.
    pub spreading_failures: u64,
    /// Spot VMs evicted to make room for on-demand requests.
    pub evictions: u64,
    /// Live migrations performed.
    pub migrations: u64,
}

impl AllocatorStats {
    /// Adds another counter set into this one. Stats are commutative
    /// integer sums, so partials from independently driven clusters (or
    /// cluster-group generation tasks) merge in any order.
    pub fn absorb(&mut self, other: &AllocatorStats) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.capacity_failures += other.capacity_failures;
        self.spreading_failures += other.spreading_failures;
        self.evictions += other.evictions;
        self.migrations += other.migrations;
    }

    /// Failure rate over all attempts (0 if no attempts).
    #[must_use]
    pub fn failure_rate(&self) -> f64 {
        if self.attempts == 0 {
            return 0.0;
        }
        (self.capacity_failures + self.spreading_failures) as f64 / self.attempts as f64
    }
}

/// Where a VM currently lives, kept for release/eviction/migration.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Placement {
    node: NodeId,
    size: VmSize,
    service: ServiceId,
    priority: Priority,
}

/// The allocation service for one cluster.
///
/// Node selection is served from an incrementally maintained
/// free-capacity index: nodes are bucketed by free cores (the SKU is
/// uniform within a cluster, so buckets form a dense `0..=sku.cores`
/// array), each bucket keeping node offsets in ascending order. Every
/// [`PlacementPolicy`] walks the buckets in its own direction and
/// reproduces the linear scan's tie-breaks exactly; debug builds
/// cross-check each selection against the scan, and
/// `tests/index_oracle.rs` proptests the equivalence in release mode.
#[derive(Debug, Clone)]
pub struct ClusterAllocator {
    id: ClusterId,
    node_ids: Vec<NodeId>,
    nodes: Vec<NodeState>,
    node_offset: FastMap<NodeId, usize>,
    placements: FastMap<VmId, Placement>,
    rack_service: FastMap<(RackId, ServiceId), u32>,
    policy: PlacementPolicy,
    spreading: SpreadingRule,
    stats: AllocatorStats,
    /// `free_index[f]` = offsets of nodes with exactly `f` free cores,
    /// ascending. Buckets are small sorted vectors (at most the node
    /// count, usually a handful): binary-search insert/remove beats a
    /// tree at this size, and walking a bucket is a slice scan.
    free_index: Vec<Vec<u32>>,
    /// Bitmask over `free_index`: bit `f` of word `f / 64` is set iff
    /// bucket `f` is non-empty, so policy walks jump straight to
    /// occupied buckets instead of probing every empty one.
    occupied: Vec<u64>,
    /// Evictable (spot) cores per node, for the eviction-plan prefilter.
    spot_cores: Vec<u32>,
    /// Running totals so `core_allocation_ratio` is O(1).
    cores_used_total: u64,
    cores_capacity: u64,
    /// Nodes probed by the index walk (see `index_candidates()`).
    index_candidates: u64,
    /// Reference mode: answer from the pre-index linear scans instead of
    /// the index, reconstructing the old cost model for benchmarks.
    scan_reference: bool,
    /// Cached handles for the per-placement metrics, fetched once from
    /// the registry current at construction: the place path is hot, and
    /// a registry name lookup per call would dominate it.
    metric_placements: cloudscope_obs::Counter,
    metric_failures: cloudscope_obs::Counter,
    metric_candidates: cloudscope_obs::Counter,
}

impl ClusterAllocator {
    /// Creates an empty allocator over a cluster's topology.
    #[must_use]
    pub fn new(cluster: &Cluster, policy: PlacementPolicy, spreading: SpreadingRule) -> Self {
        let mut node_ids = Vec::with_capacity(cluster.nodes.len());
        let mut nodes = Vec::with_capacity(cluster.nodes.len());
        let mut node_offset =
            FastMap::with_capacity_and_hasher(cluster.nodes.len(), Default::default());
        let nodes_per_rack = cluster.nodes.len() / cluster.racks.len();
        for (i, &nid) in cluster.nodes.iter().enumerate() {
            let rack = cluster.racks[(i / nodes_per_rack).min(cluster.racks.len() - 1)];
            node_ids.push(nid);
            nodes.push(NodeState::new(cluster.sku, rack));
            node_offset.insert(nid, i);
        }
        let buckets = cluster.sku.cores as usize + 1;
        let mut free_index = vec![Vec::new(); buckets];
        free_index[buckets - 1] = (0..nodes.len() as u32).collect();
        let mut occupied = vec![0u64; buckets.div_ceil(64)];
        if !nodes.is_empty() {
            occupied[(buckets - 1) / 64] |= 1 << ((buckets - 1) % 64);
        }
        let cores_capacity = nodes.iter().map(|n| u64::from(n.cores_total())).sum();
        Self {
            id: cluster.id,
            node_ids,
            spot_cores: vec![0; nodes.len()],
            nodes,
            node_offset,
            placements: FastMap::default(),
            rack_service: FastMap::default(),
            policy,
            spreading,
            stats: AllocatorStats::default(),
            free_index,
            occupied,
            cores_used_total: 0,
            cores_capacity,
            index_candidates: 0,
            scan_reference: false,
            metric_placements: cloudscope_obs::counter("cluster.allocator.placements"),
            metric_failures: cloudscope_obs::counter("cluster.allocator.placement_failures"),
            metric_candidates: cloudscope_obs::counter("cluster.alloc.index_candidates"),
        }
    }

    /// Switches this allocator to the pre-index reference path: node
    /// selection, `core_allocation_ratio`, and the eviction plan all run
    /// the original O(nodes) scans. Placement decisions are identical
    /// (the index reproduces the scan byte-for-byte); only the cost
    /// model changes. Benchmarks use this as the serial baseline, and
    /// the oracle proptests compare both paths on live allocators.
    #[must_use]
    pub fn scan_reference_mode(mut self) -> Self {
        self.scan_reference = true;
        self
    }

    /// Whether this allocator is in [`scan reference
    /// mode`](Self::scan_reference_mode).
    #[must_use]
    pub const fn is_scan_reference(&self) -> bool {
        self.scan_reference
    }

    /// The cluster this allocator manages.
    #[must_use]
    pub const fn cluster_id(&self) -> ClusterId {
        self.id
    }

    /// Allocation counters so far.
    #[must_use]
    pub const fn stats(&self) -> &AllocatorStats {
        &self.stats
    }

    /// Number of VMs currently placed.
    #[must_use]
    pub fn placed_count(&self) -> usize {
        self.placements.len()
    }

    /// Fraction of the cluster's cores currently allocated.
    ///
    /// Served from running counters maintained by `commit`/`release`
    /// (O(1)); the counts are exact integer sums, so the value is
    /// bit-identical to a fresh scan over the nodes.
    #[must_use]
    pub fn core_allocation_ratio(&self) -> f64 {
        if self.scan_reference {
            let used: u64 = self.nodes.iter().map(|n| u64::from(n.cores_used())).sum();
            let total: u64 = self.nodes.iter().map(|n| u64::from(n.cores_total())).sum();
            return if total == 0 {
                0.0
            } else {
                used as f64 / total as f64
            };
        }
        if self.cores_capacity == 0 {
            0.0
        } else {
            self.cores_used_total as f64 / self.cores_capacity as f64
        }
    }

    /// Total nodes the index walk has probed while answering placement
    /// requests. Flushed to the `cluster.alloc.index_candidates` metric;
    /// the ratio `index_candidates / attempts` is the per-request probe
    /// cost the index achieves (the scan's equivalent is the node count).
    #[must_use]
    pub const fn index_candidates(&self) -> u64 {
        self.index_candidates
    }

    /// Read-only view of a node's state.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownNode`] if the node is not here.
    pub fn node_state(&self, node: NodeId) -> Result<&NodeState, AllocationError> {
        self.node_offset
            .get(&node)
            .map(|&i| &self.nodes[i])
            .ok_or(AllocationError::UnknownNode(node))
    }

    /// The node currently hosting `vm`, if placed.
    #[must_use]
    pub fn placement_of(&self, vm: VmId) -> Option<NodeId> {
        self.placements.get(&vm).map(|p| p.node)
    }

    /// The size `vm` was placed with, if currently placed.
    #[must_use]
    pub fn placed_size(&self, vm: VmId) -> Option<VmSize> {
        self.placements.get(&vm).map(|p| p.size)
    }

    fn spreading_ok(&self, node_idx: usize, service: ServiceId) -> bool {
        match self.spreading.max_same_service_per_rack {
            None => true,
            Some(cap) => {
                let rack = self.nodes[node_idx].rack();
                self.rack_service
                    .get(&(rack, service))
                    .copied()
                    .unwrap_or(0)
                    < cap
            }
        }
    }

    /// Chooses a node for `request`, or classifies the failure. Does not
    /// mutate state. Answers from the free-capacity index (debug builds
    /// cross-check the linear scan) unless in scan-reference mode.
    fn choose_node(&self, request: &PlacementRequest) -> (Result<usize, AllocationError>, u64) {
        if self.scan_reference {
            return (self.choose_node_scan(request), self.nodes.len() as u64);
        }
        let chosen = self.choose_node_indexed(request);
        debug_assert_eq!(
            chosen.0,
            self.choose_node_scan(request),
            "free-capacity index diverged from the linear-scan oracle"
        );
        chosen
    }

    /// The original O(nodes) selection scan, kept as the oracle the
    /// index is checked against (debug asserts + release proptests).
    fn choose_node_scan(&self, request: &PlacementRequest) -> Result<usize, AllocationError> {
        let mut any_fits = false;
        let mut best: Option<(usize, u32)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.fits(request.size) {
                continue;
            }
            any_fits = true;
            if !self.spreading_ok(i, request.service) {
                continue;
            }
            let free_after = node.cores_free() - request.size.cores();
            let candidate = (i, free_after);
            best = match (self.policy, best) {
                (_, None) => Some(candidate),
                (PlacementPolicy::FirstFit, some) => some,
                (PlacementPolicy::BestFit, Some((_, f))) if free_after < f => Some(candidate),
                (PlacementPolicy::WorstFit, Some((_, f))) if free_after > f => Some(candidate),
                (_, some) => some,
            };
            // FirstFit can stop at the first feasible node.
            if self.policy == PlacementPolicy::FirstFit {
                break;
            }
        }
        match best {
            Some((i, _)) => Ok(i),
            None if any_fits => Err(AllocationError::SpreadingViolation(self.id)),
            None => Err(AllocationError::InsufficientCapacity(self.id)),
        }
    }

    /// Lowest non-empty bucket index `>= from`, via the occupancy
    /// bitmask.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= self.free_index.len() {
            return None;
        }
        let mut word = from / 64;
        let mut bits = self.occupied[word] & (u64::MAX << (from % 64));
        loop {
            if bits != 0 {
                let f = word * 64 + bits.trailing_zeros() as usize;
                return (f < self.free_index.len()).then_some(f);
            }
            word += 1;
            if word >= self.occupied.len() {
                return None;
            }
            bits = self.occupied[word];
        }
    }

    /// Highest non-empty bucket index `<= upto`, via the occupancy
    /// bitmask.
    fn prev_occupied(&self, upto: usize) -> Option<usize> {
        let upto = upto.min(self.free_index.len() - 1);
        let mut word = upto / 64;
        let mut bits = self.occupied[word] & (u64::MAX >> (63 - upto % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + 63 - bits.leading_zeros() as usize);
            }
            if word == 0 {
                return None;
            }
            word -= 1;
            bits = self.occupied[word];
        }
    }

    /// Index-backed selection. Walks the free-cores buckets in the
    /// policy's direction; within a bucket every node shares the same
    /// `free_after`, so the scan's strict-inequality tie-break (lowest
    /// offset wins among equals) is exactly the bucket's ascending
    /// order. Returns the choice plus the number of nodes probed.
    ///
    /// Failure classification matches the scan: when no feasible node
    /// exists the walk has visited every node with enough free cores, so
    /// "did anything fit before spreading" is known exactly.
    fn choose_node_indexed(
        &self,
        request: &PlacementRequest,
    ) -> (Result<usize, AllocationError>, u64) {
        let needed = request.size.cores() as usize;
        let mut probed = 0u64;
        let mut any_fits = false;
        if needed < self.free_index.len() {
            match self.policy {
                PlacementPolicy::BestFit => {
                    // Lowest feasible free count = tightest fit.
                    let mut f = self.next_occupied(needed);
                    while let Some(b) = f {
                        for &i in &self.free_index[b] {
                            let i = i as usize;
                            probed += 1;
                            if !self.nodes[i].fits(request.size) {
                                continue; // enough cores, not enough memory
                            }
                            any_fits = true;
                            if self.spreading_ok(i, request.service) {
                                return (Ok(i), probed);
                            }
                        }
                        f = self.next_occupied(b + 1);
                    }
                }
                PlacementPolicy::WorstFit => {
                    let mut f = self.prev_occupied(self.free_index.len() - 1);
                    while let Some(b) = f {
                        if b < needed {
                            break;
                        }
                        for &i in &self.free_index[b] {
                            let i = i as usize;
                            probed += 1;
                            if !self.nodes[i].fits(request.size) {
                                continue;
                            }
                            any_fits = true;
                            if self.spreading_ok(i, request.service) {
                                return (Ok(i), probed);
                            }
                        }
                        f = b.checked_sub(1).and_then(|b| self.prev_occupied(b));
                    }
                }
                PlacementPolicy::FirstFit => {
                    // Lowest offset across all eligible buckets. Buckets
                    // iterate ascending, so a bucket stops contributing
                    // once its offsets pass the best found so far.
                    let mut best: Option<usize> = None;
                    let mut f = self.next_occupied(needed);
                    while let Some(b) = f {
                        for &i in &self.free_index[b] {
                            let i = i as usize;
                            if best.is_some_and(|b| i >= b) {
                                break;
                            }
                            probed += 1;
                            if !self.nodes[i].fits(request.size) {
                                continue;
                            }
                            any_fits = true;
                            if self.spreading_ok(i, request.service) {
                                best = Some(i);
                                break;
                            }
                        }
                        f = self.next_occupied(b + 1);
                    }
                    if let Some(i) = best {
                        return (Ok(i), probed);
                    }
                }
            }
        }
        let err = if any_fits {
            AllocationError::SpreadingViolation(self.id)
        } else {
            AllocationError::InsufficientCapacity(self.id)
        };
        (Err(err), probed)
    }

    /// Non-mutating placement probe through the index path, as a
    /// [`NodeId`]. The release-mode oracle proptests compare this
    /// against [`ClusterAllocator::probe_scan`] on live allocators.
    ///
    /// # Errors
    /// Same classification as [`ClusterAllocator::place`].
    pub fn probe(&self, request: &PlacementRequest) -> Result<NodeId, AllocationError> {
        self.choose_node_indexed(request)
            .0
            .map(|i| self.node_ids[i])
    }

    /// Non-mutating placement probe through the linear-scan oracle.
    ///
    /// # Errors
    /// Same classification as [`ClusterAllocator::place`].
    pub fn probe_scan(&self, request: &PlacementRequest) -> Result<NodeId, AllocationError> {
        self.choose_node_scan(request).map(|i| self.node_ids[i])
    }

    /// Places a VM, returning the chosen node.
    ///
    /// # Errors
    /// - [`AllocationError::AlreadyPlaced`] if the VM is already placed.
    /// - [`AllocationError::InsufficientCapacity`] if no node fits.
    /// - [`AllocationError::SpreadingViolation`] if only spreading blocks.
    pub fn place(&mut self, request: PlacementRequest) -> Result<NodeId, AllocationError> {
        if self.placements.contains_key(&request.vm) {
            return Err(AllocationError::AlreadyPlaced(request.vm));
        }
        self.stats.attempts += 1;
        let (chosen, probed) = self.choose_node(&request);
        self.index_candidates += probed;
        let idx = match chosen {
            Ok(idx) => idx,
            Err(e) => {
                match e {
                    AllocationError::InsufficientCapacity(_) => {
                        self.stats.capacity_failures += 1;
                    }
                    AllocationError::SpreadingViolation(_) => {
                        self.stats.spreading_failures += 1;
                    }
                    _ => {}
                }
                self.metric_failures.inc();
                self.metric_candidates.add(probed);
                return Err(e);
            }
        };
        self.commit(idx, request);
        self.metric_placements.inc();
        self.metric_candidates.add(probed);
        Ok(self.node_ids[idx])
    }

    /// Moves node `idx` between free-cores buckets after its free count
    /// changed from `old_free` to its current value.
    fn reindex_node(&mut self, idx: usize, old_free: u32) {
        let new_free = self.nodes[idx].cores_free();
        if new_free == old_free {
            return;
        }
        let old_bucket = &mut self.free_index[old_free as usize];
        let pos = old_bucket
            .binary_search(&(idx as u32))
            .expect("node missing from its free-cores bucket");
        old_bucket.remove(pos);
        if old_bucket.is_empty() {
            self.occupied[old_free as usize / 64] &= !(1u64 << (old_free % 64));
        }
        let new_bucket = &mut self.free_index[new_free as usize];
        let pos = new_bucket
            .binary_search(&(idx as u32))
            .expect_err("node already in target bucket");
        new_bucket.insert(pos, idx as u32);
        self.occupied[new_free as usize / 64] |= 1u64 << (new_free % 64);
    }

    fn commit(&mut self, idx: usize, request: PlacementRequest) {
        let old_free = self.nodes[idx].cores_free();
        self.nodes[idx].place(request.vm, request.size);
        self.reindex_node(idx, old_free);
        self.cores_used_total += u64::from(request.size.cores());
        if request.priority == Priority::Spot {
            self.spot_cores[idx] += request.size.cores();
        }
        let rack = self.nodes[idx].rack();
        *self
            .rack_service
            .entry((rack, request.service))
            .or_insert(0) += 1;
        self.placements.insert(
            request.vm,
            Placement {
                node: self.node_ids[idx],
                size: request.size,
                service: request.service,
                priority: request.priority,
            },
        );
        self.stats.successes += 1;
    }

    /// Places an on-demand VM, evicting spot VMs if necessary: if normal
    /// placement fails on capacity, the node whose spot VMs would free
    /// enough room with the fewest evictions is chosen, its spot VMs are
    /// evicted (youngest placement first), and placement is retried.
    ///
    /// Returns the chosen node and the evicted spot VMs (empty on a clean
    /// placement).
    ///
    /// # Errors
    /// Same as [`ClusterAllocator::place`] when eviction cannot help.
    pub fn place_with_eviction(
        &mut self,
        request: PlacementRequest,
    ) -> Result<(NodeId, Vec<VmId>), AllocationError> {
        match self.place(request) {
            Ok(node) => Ok((node, Vec::new())),
            Err(AllocationError::InsufficientCapacity(_)) => {
                let Some((idx, victims)) = self.eviction_plan(&request) else {
                    return Err(AllocationError::InsufficientCapacity(self.id));
                };
                for vm in &victims {
                    self.release(*vm).expect("victim is placed");
                    self.stats.evictions += 1;
                }
                // Retry directly on the freed node.
                if !self.spreading_ok(idx, request.service) {
                    return Err(AllocationError::SpreadingViolation(self.id));
                }
                self.stats.attempts += 1;
                self.commit(idx, request);
                Ok((self.node_ids[idx], victims))
            }
            Err(e) => Err(e),
        }
    }

    /// Finds the node where evicting the fewest spot VMs makes the
    /// request fit; returns node index and victim list.
    ///
    /// Rides the same incremental indexes as placement: a per-node
    /// evictable-cores counter prefilters nodes that could not reach the
    /// requested core count even with every spot VM gone (an exact
    /// integer bound, so the surviving candidate set — and therefore the
    /// chosen plan — is identical to the full scan's). Memory is left to
    /// the per-victim walk: it accumulates `f64` sizes in eviction
    /// order, and short-circuiting it on a precomputed total could
    /// reorder those additions.
    fn eviction_plan(&self, request: &PlacementRequest) -> Option<(usize, Vec<VmId>)> {
        if request.priority != Priority::OnDemand {
            return None;
        }
        let mut best: Option<(usize, Vec<VmId>)> = None;
        for (i, node) in self.nodes.iter().enumerate() {
            if !self.scan_reference && node.cores_free() + self.spot_cores[i] < request.size.cores()
            {
                continue;
            }
            let mut free_cores = node.cores_free();
            let mut free_mem = node.memory_free();
            let mut victims = Vec::new();
            // Youngest-first: later placements are evicted first.
            for &vm in node.vms().iter().rev() {
                if free_cores >= request.size.cores() && free_mem + 1e-9 >= request.size.memory_gb()
                {
                    break;
                }
                let p = &self.placements[&vm];
                if p.priority == Priority::Spot {
                    free_cores += p.size.cores();
                    free_mem += p.size.memory_gb();
                    victims.push(vm);
                }
            }
            if free_cores >= request.size.cores() && free_mem + 1e-9 >= request.size.memory_gb() {
                let better = match &best {
                    None => true,
                    Some((_, b)) => victims.len() < b.len(),
                };
                if better && self.spreading_ok(i, request.service) {
                    best = Some((i, victims));
                }
            }
        }
        best
    }

    /// Releases a VM's resources (termination or eviction), returning the
    /// node it occupied.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownVm`] if the VM is not placed.
    pub fn release(&mut self, vm: VmId) -> Result<NodeId, AllocationError> {
        let placement = self
            .placements
            .remove(&vm)
            .ok_or(AllocationError::UnknownVm(vm))?;
        let idx = self.node_offset[&placement.node];
        let old_free = self.nodes[idx].cores_free();
        let released = self.nodes[idx].release(vm, placement.size);
        debug_assert!(released, "placement table and node state diverged");
        self.reindex_node(idx, old_free);
        self.cores_used_total -= u64::from(placement.size.cores());
        if placement.priority == Priority::Spot {
            self.spot_cores[idx] -= placement.size.cores();
        }
        let rack = self.nodes[idx].rack();
        if let Some(count) = self.rack_service.get_mut(&(rack, placement.service)) {
            *count = count.saturating_sub(1);
        }
        Ok(placement.node)
    }

    /// Live-migrates a VM to a specific node (e.g. off an unhealthy host).
    ///
    /// The fault-domain spreading rule is *not* re-checked: evacuations
    /// take priority and may temporarily exceed a rack's same-service cap
    /// (subsequent placements still observe the inflated counts).
    ///
    /// # Errors
    /// - [`AllocationError::UnknownVm`] if the VM is not placed.
    /// - [`AllocationError::UnknownNode`] if the target is not here.
    /// - [`AllocationError::InsufficientCapacity`] if the target cannot
    ///   hold the VM.
    pub fn migrate(&mut self, vm: VmId, to: NodeId) -> Result<(), AllocationError> {
        let placement = *self
            .placements
            .get(&vm)
            .ok_or(AllocationError::UnknownVm(vm))?;
        let to_idx = *self
            .node_offset
            .get(&to)
            .ok_or(AllocationError::UnknownNode(to))?;
        if placement.node == to {
            return Ok(());
        }
        if !self.nodes[to_idx].fits(placement.size) {
            return Err(AllocationError::InsufficientCapacity(self.id));
        }
        self.release(vm).expect("vm placed");
        self.stats.attempts += 1;
        self.commit(
            to_idx,
            PlacementRequest {
                vm,
                size: placement.size,
                service: placement.service,
                priority: placement.priority,
            },
        );
        self.stats.migrations += 1;
        Ok(())
    }

    /// Iterates `(node, state)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &NodeState)> {
        self.node_ids.iter().copied().zip(self.nodes.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::subscription::CloudKind;
    use cloudscope_model::topology::{NodeSku, Topology};

    /// 2 racks × 2 nodes of 8 cores / 64 GiB.
    fn allocator(policy: PlacementPolicy, spreading: SpreadingRule) -> ClusterAllocator {
        let mut b = Topology::builder();
        let r = b.add_region("test", 0, "US");
        let d = b.add_datacenter(r);
        let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(8, 64.0), 2, 2);
        let topo = b.build();
        ClusterAllocator::new(topo.cluster(c).unwrap(), policy, spreading)
    }

    fn req(vm: u64, cores: u32, service: u32) -> PlacementRequest {
        PlacementRequest {
            vm: VmId::new(vm),
            size: VmSize::new(cores, f64::from(cores) * 4.0),
            service: ServiceId::new(service),
            priority: Priority::OnDemand,
        }
    }

    #[test]
    fn best_fit_packs_tightly() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        let n0 = a.place(req(0, 5, 0)).unwrap();
        // Best fit should co-locate the 3-core VM with the 5-core one.
        let n1 = a.place(req(1, 3, 0)).unwrap();
        assert_eq!(n0, n1);
        assert_eq!(a.placed_count(), 2);
        assert!((a.core_allocation_ratio() - 8.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn worst_fit_spreads() {
        let mut a = allocator(PlacementPolicy::WorstFit, SpreadingRule::default());
        let n0 = a.place(req(0, 5, 0)).unwrap();
        let n1 = a.place(req(1, 3, 0)).unwrap();
        assert_ne!(n0, n1);
    }

    #[test]
    fn first_fit_takes_lowest_id() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        let n0 = a.place(req(0, 2, 0)).unwrap();
        let n1 = a.place(req(1, 2, 0)).unwrap();
        assert_eq!(n0, n1);
    }

    #[test]
    fn capacity_failure_when_full() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(req(i, 8, 0)).unwrap();
        }
        let err = a.place(req(9, 1, 0)).unwrap_err();
        assert!(matches!(err, AllocationError::InsufficientCapacity(_)));
        assert_eq!(a.stats().capacity_failures, 1);
        assert!(a.stats().failure_rate() > 0.0);
    }

    #[test]
    fn spreading_rule_blocks_same_rack() {
        let spreading = SpreadingRule {
            max_same_service_per_rack: Some(1),
        };
        let mut a = allocator(PlacementPolicy::FirstFit, spreading);
        // Service 7: one VM per rack allowed -> 2 placements, 3rd fails.
        a.place(req(0, 1, 7)).unwrap();
        a.place(req(1, 1, 7)).unwrap();
        let err = a.place(req(2, 1, 7)).unwrap_err();
        assert!(matches!(err, AllocationError::SpreadingViolation(_)));
        assert_eq!(a.stats().spreading_failures, 1);
        // A different service still places fine.
        a.place(req(3, 1, 8)).unwrap();
    }

    #[test]
    fn release_frees_spreading_budget() {
        let spreading = SpreadingRule {
            max_same_service_per_rack: Some(1),
        };
        let mut a = allocator(PlacementPolicy::FirstFit, spreading);
        a.place(req(0, 1, 7)).unwrap();
        a.place(req(1, 1, 7)).unwrap();
        assert!(a.place(req(2, 1, 7)).is_err());
        a.release(VmId::new(0)).unwrap();
        a.place(req(2, 1, 7)).unwrap();
    }

    #[test]
    fn double_place_and_unknown_release() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        a.place(req(0, 1, 0)).unwrap();
        assert!(matches!(
            a.place(req(0, 1, 0)),
            Err(AllocationError::AlreadyPlaced(_))
        ));
        assert!(matches!(
            a.release(VmId::new(99)),
            Err(AllocationError::UnknownVm(_))
        ));
    }

    #[test]
    fn eviction_makes_room_for_on_demand() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        // Fill every node with spot VMs.
        for i in 0..4 {
            a.place(PlacementRequest {
                priority: Priority::Spot,
                ..req(i, 8, 0)
            })
            .unwrap();
        }
        let (node, evicted) = a.place_with_eviction(req(10, 8, 1)).unwrap();
        assert_eq!(evicted.len(), 1);
        assert_eq!(a.stats().evictions, 1);
        assert_eq!(a.placement_of(VmId::new(10)), Some(node));
        assert_eq!(a.placement_of(evicted[0]), None);
    }

    #[test]
    fn eviction_never_touches_on_demand() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(req(i, 8, 0)).unwrap(); // on-demand fills the cluster
        }
        assert!(matches!(
            a.place_with_eviction(req(10, 8, 1)),
            Err(AllocationError::InsufficientCapacity(_))
        ));
        assert_eq!(a.stats().evictions, 0);
    }

    #[test]
    fn spot_request_cannot_trigger_eviction() {
        let mut a = allocator(PlacementPolicy::BestFit, SpreadingRule::default());
        for i in 0..4 {
            a.place(PlacementRequest {
                priority: Priority::Spot,
                ..req(i, 8, 0)
            })
            .unwrap();
        }
        let spot_req = PlacementRequest {
            priority: Priority::Spot,
            ..req(10, 8, 1)
        };
        assert!(a.place_with_eviction(spot_req).is_err());
    }

    #[test]
    fn migration_moves_capacity() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        let from = a.place(req(0, 4, 0)).unwrap();
        let target = a.nodes().map(|(id, _)| id).find(|&id| id != from).unwrap();
        a.migrate(VmId::new(0), target).unwrap();
        assert_eq!(a.placement_of(VmId::new(0)), Some(target));
        assert_eq!(a.node_state(from).unwrap().cores_used(), 0);
        assert_eq!(a.stats().migrations, 1);
        // Self-migration is a no-op.
        a.migrate(VmId::new(0), target).unwrap();
        assert_eq!(a.stats().migrations, 1);
    }

    #[test]
    fn migration_validates_target() {
        let mut a = allocator(PlacementPolicy::FirstFit, SpreadingRule::default());
        a.place(req(0, 8, 0)).unwrap();
        let occupied = a.placement_of(VmId::new(0)).unwrap();
        a.place(req(1, 8, 0)).unwrap();
        let other = a.placement_of(VmId::new(1)).unwrap();
        assert!(matches!(
            a.migrate(VmId::new(0), other),
            Err(AllocationError::InsufficientCapacity(_))
        ));
        assert!(matches!(
            a.migrate(VmId::new(0), NodeId::new(999)),
            Err(AllocationError::UnknownNode(_))
        ));
        assert!(matches!(
            a.migrate(VmId::new(42), occupied),
            Err(AllocationError::UnknownVm(_))
        ));
    }
}
