//! Test configuration and the deterministic case RNG.

/// Configuration for one `proptest!` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps shrink-free suites fast while
        // still exercising a broad input sample.
        Self { cases: 64 }
    }
}

/// A failed property case, mirroring upstream's `TestCaseError` (without
/// the reject/fail distinction driving shrinking, which this shim omits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with the given reason.
    #[must_use]
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// Upstream distinguishes rejected (filtered-out) inputs; here a
    /// reject is reported like a failure.
    #[must_use]
    pub fn reject(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(reason: String) -> Self {
        Self(reason)
    }
}

impl From<&str> for TestCaseError {
    fn from(reason: &str) -> Self {
        Self(reason.to_string())
    }
}

/// SplitMix64 RNG seeded from the test name, so every property runs a
/// reproducible sequence (override the seed with `PROPTEST_SEED`).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for the named test.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let extra = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(0);
        Self { state: h ^ extra }
    }

    /// The next random word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_determines_stream() {
        let a: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::for_test("x");
            (0..4).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = TestRng::for_test("y");
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn config_cases() {
        assert_eq!(ProptestConfig::with_cases(12).cases, 12);
        assert!(ProptestConfig::default().cases >= 32);
    }
}
