//! Offline stand-in for `proptest`, implementing the subset the workspace
//! uses: the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! `Just`, `prop_oneof!`, `any::<T>()`, `prop::collection::vec`,
//! `prop::bool::ANY`, and [`test_runner::ProptestConfig`].
//!
//! Generation is deterministic per test name (SplitMix64 seeded from an
//! FNV-1a hash), so failures reproduce exactly. There is no shrinking:
//! a failing case reports the case number and the assertion message.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub use crate::collection;

    /// Boolean strategies.
    pub mod bool {
        /// Uniform `true`/`false`.
        pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
    }
}

/// Everything a property test module needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each property; see the crate docs. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for case in 0..config.cases {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut rng,
                        );
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            message
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current property case if the condition does not hold.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "{} (left: {:?}, right: {:?})",
                ::std::format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l == r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(::std::format!(
                "{} (both: {:?})",
                ::std::format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Uniformly picks one of the listed strategies per case (unweighted; all
/// arms must share a value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
