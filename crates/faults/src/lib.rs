//! # cloudscope-faults
//!
//! Deterministic fault injection for the telemetry pipeline. Real
//! monitoring fleets lose samples, duplicate them, deliver them out of
//! order, emit garbage readings, run on skewed clocks, and sit behind
//! stores that time out — the paper's characterization has to survive
//! all of that. This crate turns a pristine generated [`Trace`] into the
//! trace a real collector would have recorded, under a fully seeded
//! [`FaultPlan`], so every robustness experiment is reproducible
//! byte-for-byte.
//!
//! The injection pipeline mirrors a real collector:
//!
//! 1. **Explode** — each VM's dense series becomes timestamped wire
//!    samples, as the in-guest monitor would emit them.
//! 2. **Corrupt** — the seeded plan drops, duplicates, reorders,
//!    invalidates, and time-skews samples, and blacks out whole regions
//!    for a window (a monitoring outage).
//! 3. **Ingest** — samples are validated, snapped to the 5-minute grid,
//!    deduplicated (last write wins), and re-assembled into a
//!    [`UtilSeries`] whose unfilled slots are *gaps*, which the
//!    analysis layer handles via its missing-data policies.
//!
//! [`FlakyStore`] covers the storage side: it wraps any
//! [`KbStore`](cloudscope_kb::KbStore) and injects seeded transient
//! write failures, exercising the extraction pipeline's retry path.
//!
//! ## Example
//! ```no_run
//! use cloudscope_faults::{corrupt_trace, FaultPlan};
//! # use cloudscope_tracegen::{generate, GeneratorConfig};
//! let generated = generate(&GeneratorConfig::small(7));
//! let (corrupted, report) = corrupt_trace(&generated.trace, &FaultPlan::standard(7));
//! println!("lost {:.1}% of samples", report.loss_fraction() * 100.0);
//! ```
//!
//! [`Trace`]: cloudscope_model::trace::Trace
//! [`UtilSeries`]: cloudscope_model::telemetry::UtilSeries

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod flaky;
pub mod plan;

pub use corrupt::{
    corrupt_trace, corrupt_util_series, corrupt_wire_samples, ingest_wire_samples, WireSample,
};
pub use flaky::FlakyStore;
pub use plan::{Blackout, FaultPlan, FaultReport};
