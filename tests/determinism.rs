//! Determinism: the generator and the full pipeline are pure functions of
//! the configuration seed, regardless of thread scheduling.

use cloudscope::faults::{corrupt_trace, FaultPlan};
use cloudscope::model::export::write_telemetry;
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;

#[test]
fn same_seed_same_trace_and_report() {
    let a = generate(&GeneratorConfig::small(5));
    let b = generate(&GeneratorConfig::small(5));
    assert_eq!(a.trace.stats(), b.trace.stats());
    assert_eq!(a.report, b.report);
    // Spot-check record and telemetry equality.
    for idx in [0u64, 17, 99] {
        let vm = VmId::new(idx);
        assert_eq!(a.trace.vm(vm).unwrap(), b.trace.vm(vm).unwrap());
        assert_eq!(a.trace.util(vm), b.trace.util(vm));
    }
    let ra = CharacterizationReport::analyze(&a.trace, &ReportConfig::default()).unwrap();
    let rb = CharacterizationReport::analyze(&b.trace, &ReportConfig::default()).unwrap();
    assert_eq!(
        ra.temporal.private_short_fraction,
        rb.temporal.private_short_fraction
    );
    assert_eq!(
        ra.node_correlation.0.median(),
        rb.node_correlation.0.median()
    );
    assert_eq!(
        ra.private_patterns.classified(),
        rb.private_patterns.classified()
    );
}

#[test]
fn different_seeds_differ() {
    let a = generate(&GeneratorConfig::small(1));
    let b = generate(&GeneratorConfig::small(2));
    assert_ne!(a.trace.stats(), b.trace.stats());
}

#[test]
fn par_map_is_invariant_in_the_worker_count() {
    // A realistic workload: classify every VM of a generated trace.
    // The result must be the sequential order-preserving map no matter
    // how the items are sliced across threads.
    let g = generate(&GeneratorConfig::small(5));
    let classifier = PatternClassifier::default();
    let vms: Vec<VmId> = g.trace.vms().iter().map(|vm| vm.id).collect();
    assert!(vms.len() > 500, "enough work to split: {}", vms.len());

    let classify = |vm: &VmId| classifier.classify_vm(&g.trace, *vm);
    let reference: Vec<Option<UtilizationPattern>> = vms.iter().map(classify).collect();
    for workers in [1usize, 2, 7, 16] {
        let parallel = Parallelism::with_workers(workers).par_map(&vms, classify);
        assert_eq!(
            parallel, reference,
            "par_map diverged from the sequential map at {workers} workers"
        );
    }
}

/// Corrupted telemetry exports byte-identically for the same plan seed:
/// the fault layer keys every VM's corruption stream off the VM id, not
/// iteration order or wall clock.
#[test]
fn fault_plans_are_deterministic_and_seed_sensitive() {
    let clean = generate(&GeneratorConfig::small(5));
    let export = |plan: &FaultPlan| -> Vec<u8> {
        let (trace, _) = corrupt_trace(&clean.trace, plan);
        let mut bytes = Vec::new();
        write_telemetry(&trace, &mut bytes).expect("in-memory export");
        bytes
    };

    let first = export(&FaultPlan::standard(41));
    let again = export(&FaultPlan::standard(41));
    assert_eq!(first, again, "same seed must corrupt byte-identically");

    let other = export(&FaultPlan::standard(42));
    assert_ne!(first, other, "a different seed must corrupt differently");

    // And the clean plan round-trips the original telemetry untouched.
    let mut original = Vec::new();
    write_telemetry(&clean.trace, &mut original).expect("in-memory export");
    assert_eq!(export(&FaultPlan::clean(41)), original);
}

#[test]
fn services_directory_is_stable() {
    let a = generate(&GeneratorConfig::small(5));
    let b = generate(&GeneratorConfig::small(5));
    assert_eq!(a.services.len(), b.services.len());
    for (x, y) in a.services.iter().zip(&b.services) {
        assert_eq!(x.service, y.service);
        assert_eq!(x.profile, y.profile);
        assert_eq!(x.regions, y.regions);
        assert_eq!(x.standing_vms, y.standing_vms);
    }
}
