//! Cross-crate integration of the analysis pipeline against generated
//! traces (unit tests use the hand-built miniature trace instead).

use cloudscope_analysis::temporal::burst_hours;
use cloudscope_model::prelude::*;
use cloudscope_tracegen::{generate, GeneratorConfig};
use std::sync::OnceLock;

fn generated() -> &'static cloudscope_tracegen::GeneratedTrace {
    static TRACE: OnceLock<cloudscope_tracegen::GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(555)))
}

#[test]
fn private_creations_burst_public_do_not() {
    let g = generated();
    let mut private_bursts = 0usize;
    let mut public_bursts = 0usize;
    for region in g.trace.topology().regions() {
        private_bursts += burst_hours(&g.trace, CloudKind::Private, region.id).len();
        public_bursts += burst_hours(&g.trace, CloudKind::Public, region.id).len();
    }
    assert!(
        private_bursts > 0,
        "private deployment bursts must be detectable"
    );
    assert!(
        private_bursts > 2 * public_bursts,
        "bursts are a private-cloud phenomenon: {private_bursts} vs {public_bursts}"
    );
}

#[test]
fn burst_hours_match_ground_truth_magnitude() {
    // Every detected burst hour has far more creations than the region's
    // median hour.
    let g = generated();
    for region in g.trace.topology().regions().iter().take(3) {
        let series = cloudscope_analysis::temporal::creations_per_hour(
            &g.trace,
            CloudKind::Private,
            region.id,
        );
        let mut sorted = series.values().to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        for hour in burst_hours(&g.trace, CloudKind::Private, region.id) {
            assert!(
                series.values()[hour] > 3.0 * median.max(1.0),
                "burst hour {hour} not actually large"
            );
        }
    }
}
