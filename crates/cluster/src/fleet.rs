//! Fleet-level allocation: routing placement requests to clusters within
//! a region, with fallback across the region's clusters.

use crate::allocator::{
    AllocatorStats, ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule,
};
use crate::error::AllocationError;
use cloudscope_model::fast_hash::FastMap;
use cloudscope_model::ids::{ClusterId, NodeId, RegionId, VmId};
use cloudscope_model::subscription::CloudKind;
use cloudscope_model::topology::Topology;

/// The allocation service over every cluster of one cloud: routes each
/// request to the least-allocated cluster in the requested region, falling
/// back to the next cluster on failure (region-local retry, as real
/// allocators do before failing the request).
#[derive(Debug, Clone)]
pub struct Fleet {
    cloud: CloudKind,
    clusters: Vec<ClusterAllocator>,
    by_region: FastMap<RegionId, Vec<usize>>,
    vm_cluster: FastMap<VmId, usize>,
}

impl Fleet {
    /// Builds allocators for every cluster of `cloud` in the topology.
    #[must_use]
    pub fn new(
        topology: &Topology,
        cloud: CloudKind,
        policy: PlacementPolicy,
        spreading: SpreadingRule,
    ) -> Self {
        let mut clusters = Vec::new();
        let mut by_region: FastMap<RegionId, Vec<usize>> = FastMap::default();
        for cluster in topology.clusters_of(cloud) {
            by_region
                .entry(cluster.region)
                .or_default()
                .push(clusters.len());
            clusters.push(ClusterAllocator::new(cluster, policy, spreading));
        }
        Self {
            cloud,
            clusters,
            by_region,
            vm_cluster: FastMap::default(),
        }
    }

    /// Builds allocators for `cloud`'s clusters in `region` only — the
    /// shard a region-parallel generation worker drives. Cluster order
    /// (and hence the load-balancing tie-break order in
    /// [`Fleet::place_in_region`]) matches the region-restricted
    /// subsequence of [`Fleet::new`], so a per-region fleet replays
    /// exactly the operations the whole-cloud fleet would perform for
    /// that region.
    #[must_use]
    pub fn for_region(
        topology: &Topology,
        cloud: CloudKind,
        region: RegionId,
        policy: PlacementPolicy,
        spreading: SpreadingRule,
    ) -> Self {
        let mut clusters = Vec::new();
        let mut by_region: FastMap<RegionId, Vec<usize>> = FastMap::default();
        for cluster in topology.clusters_of(cloud) {
            if cluster.region != region {
                continue;
            }
            by_region
                .entry(cluster.region)
                .or_default()
                .push(clusters.len());
            clusters.push(ClusterAllocator::new(cluster, policy, spreading));
        }
        Self {
            cloud,
            clusters,
            by_region,
            vm_cluster: FastMap::default(),
        }
    }

    /// Switches every cluster allocator to the pre-index reference path
    /// (see [`ClusterAllocator::scan_reference_mode`]): placements stay
    /// identical, but node selection and the cluster-ordering ratio run
    /// the original O(nodes) scans. Benchmark baseline only.
    #[must_use]
    pub fn scan_reference_mode(mut self) -> Self {
        self.clusters = self
            .clusters
            .into_iter()
            .map(ClusterAllocator::scan_reference_mode)
            .collect();
        self
    }

    /// Which cloud this fleet serves.
    #[must_use]
    pub const fn cloud(&self) -> CloudKind {
        self.cloud
    }

    /// Places a VM in `region`, trying clusters from least to most
    /// allocated. Returns `(cluster, node)`.
    ///
    /// # Errors
    /// Returns the last cluster's error, or
    /// [`AllocationError::InsufficientCapacity`] of an arbitrary region
    /// cluster if the region is unknown/empty.
    pub fn place_in_region(
        &mut self,
        region: RegionId,
        request: PlacementRequest,
    ) -> Result<(ClusterId, NodeId), AllocationError> {
        let Some(indices) = self.by_region.get(&region) else {
            return Err(AllocationError::InsufficientCapacity(ClusterId::new(
                u32::MAX,
            )));
        };
        // Fast path: regions with a single cluster (the common topology)
        // skip the order vector — an allocation plus a sort per request
        // shows up in the generator's hot loop. Scan reference mode keeps
        // the original clone+sort so the benchmark baseline replays the
        // pre-index cost model faithfully.
        if indices.len() == 1 && !self.clusters[indices[0]].is_scan_reference() {
            let idx = indices[0];
            let node = self.clusters[idx].place(request)?;
            self.vm_cluster.insert(request.vm, idx);
            return Ok((self.clusters[idx].cluster_id(), node));
        }
        let mut order: Vec<usize> = indices.clone();
        order.sort_by(|&a, &b| {
            self.clusters[a]
                .core_allocation_ratio()
                .partial_cmp(&self.clusters[b].core_allocation_ratio())
                .expect("ratios finite")
        });
        let mut last_err = AllocationError::InsufficientCapacity(ClusterId::new(u32::MAX));
        for idx in order {
            match self.clusters[idx].place(request) {
                Ok(node) => {
                    self.vm_cluster.insert(request.vm, idx);
                    return Ok((self.clusters[idx].cluster_id(), node));
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Releases a VM wherever it is placed.
    ///
    /// # Errors
    /// Returns [`AllocationError::UnknownVm`] if the fleet never placed
    /// it.
    pub fn release(&mut self, vm: VmId) -> Result<(ClusterId, NodeId), AllocationError> {
        let idx = self
            .vm_cluster
            .remove(&vm)
            .ok_or(AllocationError::UnknownVm(vm))?;
        let node = self.clusters[idx].release(vm)?;
        Ok((self.clusters[idx].cluster_id(), node))
    }

    /// Aggregated stats over all clusters.
    #[must_use]
    pub fn stats(&self) -> AllocatorStats {
        let mut total = AllocatorStats::default();
        for c in &self.clusters {
            total.absorb(c.stats());
        }
        total
    }

    /// Per-cluster allocators, for inspection.
    #[must_use]
    pub fn clusters(&self) -> &[ClusterAllocator] {
        &self.clusters
    }

    /// Mean core-allocation ratio across the region's clusters, or `None`
    /// for an unknown region.
    #[must_use]
    pub fn region_allocation_ratio(&self, region: RegionId) -> Option<f64> {
        let indices = self.by_region.get(&region)?;
        if indices.is_empty() {
            return None;
        }
        Some(
            indices
                .iter()
                .map(|&i| self.clusters[i].core_allocation_ratio())
                .sum::<f64>()
                / indices.len() as f64,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::ids::ServiceId;
    use cloudscope_model::topology::NodeSku;
    use cloudscope_model::vm::{Priority, VmSize};

    /// Region 0 has two public clusters, region 1 has one.
    fn fleet() -> Fleet {
        let mut b = Topology::builder();
        let r0 = b.add_region("us-a", -8, "US");
        let r1 = b.add_region("us-b", -5, "US");
        let d0 = b.add_datacenter(r0);
        let d1 = b.add_datacenter(r1);
        b.add_cluster(d0, CloudKind::Public, NodeSku::new(4, 32.0), 1, 2);
        b.add_cluster(d0, CloudKind::Public, NodeSku::new(4, 32.0), 1, 2);
        b.add_cluster(d1, CloudKind::Public, NodeSku::new(4, 32.0), 1, 2);
        // A private cluster the public fleet must ignore.
        b.add_cluster(d0, CloudKind::Private, NodeSku::new(4, 32.0), 1, 2);
        let topo = b.build();
        Fleet::new(
            &topo,
            CloudKind::Public,
            PlacementPolicy::BestFit,
            SpreadingRule::default(),
        )
    }

    fn req(vm: u64) -> PlacementRequest {
        PlacementRequest {
            vm: VmId::new(vm),
            size: VmSize::new(4, 32.0),
            service: ServiceId::new(0),
            priority: Priority::OnDemand,
        }
    }

    #[test]
    fn fleet_only_manages_its_cloud() {
        let f = fleet();
        assert_eq!(f.clusters().len(), 3);
        assert_eq!(f.cloud(), CloudKind::Public);
    }

    #[test]
    fn placement_prefers_least_allocated_cluster() {
        let mut f = fleet();
        let (c0, _) = f.place_in_region(RegionId::new(0), req(0)).unwrap();
        let (c1, _) = f.place_in_region(RegionId::new(0), req(1)).unwrap();
        assert_ne!(c0, c1, "second placement should go to the emptier cluster");
    }

    #[test]
    fn regional_fallback_until_region_full() {
        let mut f = fleet();
        // Region 0 capacity: 2 clusters x 2 nodes x 4 cores = 4 VMs of 4 cores.
        for i in 0..4 {
            f.place_in_region(RegionId::new(0), req(i)).unwrap();
        }
        assert!(matches!(
            f.place_in_region(RegionId::new(0), req(9)),
            Err(AllocationError::InsufficientCapacity(_))
        ));
        // Region 1 still has room.
        f.place_in_region(RegionId::new(1), req(9)).unwrap();
        assert_eq!(f.stats().successes, 5);
    }

    #[test]
    fn unknown_region_fails() {
        let mut f = fleet();
        assert!(f.place_in_region(RegionId::new(42), req(0)).is_err());
        assert!(f.region_allocation_ratio(RegionId::new(42)).is_none());
    }

    #[test]
    fn release_routes_to_owning_cluster() {
        let mut f = fleet();
        let (cluster, node) = f.place_in_region(RegionId::new(1), req(5)).unwrap();
        let (rc, rn) = f.release(VmId::new(5)).unwrap();
        assert_eq!((rc, rn), (cluster, node));
        assert!(matches!(
            f.release(VmId::new(5)),
            Err(AllocationError::UnknownVm(_))
        ));
    }

    #[test]
    fn region_allocation_ratio_tracks_load() {
        let mut f = fleet();
        assert_eq!(f.region_allocation_ratio(RegionId::new(0)), Some(0.0));
        f.place_in_region(RegionId::new(0), req(0)).unwrap();
        let ratio = f.region_allocation_ratio(RegionId::new(0)).unwrap();
        assert!(
            (ratio - 0.25).abs() < 1e-12,
            "one of 2 clusters half full: {ratio}"
        );
    }
}
