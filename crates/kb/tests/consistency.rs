//! Property tests for the sharded store: under arbitrary operation
//! sequences (upserts, removals, stale upserts) every secondary index
//! must agree exactly with a brute-force rescan of the shard maps, and
//! query results must be identical for any shard count.

use cloudscope_analysis::UtilizationPattern;
use cloudscope_kb::{KbQuery, KbSelector, KnowledgeBase, LifetimeClass, WorkloadKnowledge};
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::prelude::{CloudKind, SimTime};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// One step of a randomized store workload.
#[derive(Debug, Clone)]
enum Op {
    Upsert(WorkloadKnowledge),
    Remove(SubscriptionId),
}

const PATTERNS: [Option<UtilizationPattern>; 5] = [
    None,
    Some(UtilizationPattern::Diurnal),
    Some(UtilizationPattern::Stable),
    Some(UtilizationPattern::Irregular),
    Some(UtilizationPattern::HourlyPeak),
];

const LIFETIMES: [LifetimeClass; 3] = [
    LifetimeClass::MostlyShort,
    LifetimeClass::Mixed,
    LifetimeClass::MostlyLong,
];

/// Decodes one packed op tuple. Keeping the strategy a plain tuple of
/// integers keeps generation fast and the op space easy to reason about:
/// ids collide often (forcing refresh/stale paths), timestamps are drawn
/// from a small range (so stale upserts are common, not corner cases).
fn decode(op: (u32, u32, u32, i64)) -> Op {
    let (kind, id, shape, minutes) = op;
    let subscription = SubscriptionId::new(id % 24);
    if kind % 4 == 0 {
        return Op::Remove(subscription);
    }
    Op::Upsert(WorkloadKnowledge {
        subscription,
        cloud: if shape % 2 == 0 {
            CloudKind::Private
        } else {
            CloudKind::Public
        },
        pattern: PATTERNS[(shape / 2) as usize % PATTERNS.len()],
        lifetime: LIFETIMES[(shape / 16) as usize % LIFETIMES.len()],
        mean_util: f64::from(id % 100),
        p95_util: f64::from(id % 100) + 1.0,
        util_cv: 0.25,
        regions: ((shape / 64) % 4 + 1) as usize,
        region_agnostic: match (shape / 256) % 3 {
            0 => None,
            1 => Some(false),
            _ => Some(true),
        },
        vm_count: id as usize % 40 + 1,
        cores: u64::from(id % 40) + 4,
        updated_at: SimTime::from_minutes(minutes),
    })
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec((any::<u32>(), any::<u32>(), any::<u32>(), 0i64..32), 0..120)
        .prop_map(|raw| raw.into_iter().map(decode).collect())
}

/// Replays `ops` against a store with `shards` shards and, in lockstep,
/// against a brute-force reference model with the same freshness rule.
fn replay(
    ops: &[Op],
    shards: usize,
) -> (KnowledgeBase, BTreeMap<SubscriptionId, WorkloadKnowledge>) {
    let kb = KnowledgeBase::with_shards(shards);
    let mut model: BTreeMap<SubscriptionId, WorkloadKnowledge> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Upsert(k) => {
                let model_stored = match model.get(&k.subscription) {
                    Some(existing) => existing.updated_at <= k.updated_at,
                    None => true,
                };
                let stored = kb.upsert(k.clone());
                assert_eq!(stored, model_stored, "freshness rule diverged for {k:?}");
                if model_stored {
                    model.insert(k.subscription, k.clone());
                }
            }
            Op::Remove(id) => {
                let removed = kb.remove(*id);
                assert_eq!(removed.is_some(), model.remove(id).is_some());
            }
        }
    }
    (kb, model)
}

/// Every selector the indexes serve, for exhaustive cross-checking.
fn all_selectors() -> Vec<KbSelector> {
    let mut selectors = vec![
        KbSelector::All,
        KbSelector::SpotCandidates,
        KbSelector::Shiftable,
    ];
    for cloud in CloudKind::BOTH {
        selectors.push(KbSelector::OversubscriptionCandidates(cloud));
        for pattern in [
            UtilizationPattern::Diurnal,
            UtilizationPattern::Stable,
            UtilizationPattern::Irregular,
            UtilizationPattern::HourlyPeak,
        ] {
            selectors.push(KbSelector::Pattern(cloud, pattern));
        }
    }
    for class in LIFETIMES {
        selectors.push(KbSelector::Lifetime(class));
    }
    selectors
}

/// The scan-side truth for what a selector should return.
fn brute_force(
    model: &BTreeMap<SubscriptionId, WorkloadKnowledge>,
    selector: KbSelector,
) -> Vec<WorkloadKnowledge> {
    model
        .values()
        .filter(|k| match selector {
            KbSelector::All => true,
            KbSelector::Pattern(cloud, pattern) => k.cloud == cloud && k.pattern == Some(pattern),
            KbSelector::Lifetime(class) => k.lifetime == class,
            KbSelector::SpotCandidates => k.spot_candidate(),
            KbSelector::OversubscriptionCandidates(cloud) => {
                k.cloud == cloud && k.oversubscription_candidate()
            }
            KbSelector::Shiftable => k.shiftable(),
            _ => unreachable!("non_exhaustive placeholder"),
        })
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any op sequence, the store's internal invariant holds (every
    /// index posting rebuilt from scratch matches the maintained one) and
    /// every indexed query agrees entry-for-entry with a brute-force
    /// rescan of a reference model.
    #[test]
    fn indexes_agree_with_brute_force_rescan(ops in ops_strategy()) {
        for shards in [1usize, 3, 8] {
            let (kb, model) = replay(&ops, shards);
            let entries = kb.check_consistency().expect("index/entry consistency");
            prop_assert_eq!(entries, model.len());
            prop_assert_eq!(kb.len(), model.len());
            for selector in all_selectors() {
                let expected = brute_force(&model, selector);
                let query = KbQuery::select(selector);
                // collect: full entries, subscription-sorted (BTreeMap
                // iteration order is already ascending).
                prop_assert_eq!(&query.collect(&kb), &expected, "selector {:?}", selector);
                // count: the pure index walk agrees with the scan.
                prop_assert_eq!(query.count(&kb), expected.len());
            }
        }
    }

    /// Seeded replays are byte-identical regardless of shard count: the
    /// shard count is a concurrency knob, never a semantics knob.
    #[test]
    fn shard_count_never_changes_results(ops in ops_strategy()) {
        let (reference, _) = replay(&ops, 1);
        for shards in [2usize, 5, 16] {
            let (kb, _) = replay(&ops, shards);
            for selector in all_selectors() {
                let query = KbQuery::select(selector);
                prop_assert_eq!(
                    query.collect(&kb),
                    query.collect(&reference),
                    "selector {:?} diverged at {} shards", selector, shards
                );
            }
            // Residual filters run on top of the same ordered walk.
            let filtered = KbQuery::spot_candidates().filter(|k| k.vm_count >= 10);
            prop_assert_eq!(filtered.collect(&kb), filtered.collect(&reference));
        }
    }
}
