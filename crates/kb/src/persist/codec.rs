//! The binary wire format shared by the WAL and the snapshot files.
//!
//! Two layers:
//!
//! - **Entries**: one [`WorkloadKnowledge`] is a fixed [`ENTRY_BYTES`]-byte
//!   little-endian record. Floats are stored as raw IEEE-754 bits
//!   (`f64::to_bits`), so a restored KB is bit-identical to the one that
//!   was written — no decimal formatting loss.
//! - **Frames**: every durable record (a WAL append, a snapshot header,
//!   one snapshot entry) is wrapped as
//!   `[payload len: u32 LE][crc32(payload): u32 LE][payload]`. The CRC
//!   makes any bit flip loud; the length prefix makes a torn final
//!   write (a crash mid-append) distinguishable from corruption.

use super::crc::crc32;
use super::PersistError;
use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::subscription::CloudKind;
use cloudscope_model::time::SimTime;

/// Size of one encoded [`WorkloadKnowledge`].
pub(crate) const ENTRY_BYTES: usize = 64;

/// Frame header: payload length (u32) + payload CRC-32 (u32).
pub(crate) const FRAME_HEADER: usize = 8;

/// Ceiling on a single frame's payload. Nothing legitimate comes close
/// (the largest payload is one extraction batch); a length beyond this
/// is a corrupted length field, not a torn write.
pub(crate) const MAX_FRAME: usize = 1 << 26; // 64 MiB

/// Appends the fixed-width encoding of `k` to `out`.
pub(crate) fn encode_entry(k: &WorkloadKnowledge, out: &mut Vec<u8>) {
    out.extend_from_slice(&k.subscription.index().to_le_bytes());
    out.push(match k.cloud {
        CloudKind::Private => 0,
        CloudKind::Public => 1,
    });
    out.push(match k.pattern {
        None => 0,
        Some(UtilizationPattern::Diurnal) => 1,
        Some(UtilizationPattern::Stable) => 2,
        Some(UtilizationPattern::Irregular) => 3,
        Some(UtilizationPattern::HourlyPeak) => 4,
    });
    out.push(match k.lifetime {
        LifetimeClass::MostlyShort => 0,
        LifetimeClass::Mixed => 1,
        LifetimeClass::MostlyLong => 2,
    });
    out.push(match k.region_agnostic {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    });
    out.extend_from_slice(&k.mean_util.to_bits().to_le_bytes());
    out.extend_from_slice(&k.p95_util.to_bits().to_le_bytes());
    out.extend_from_slice(&k.util_cv.to_bits().to_le_bytes());
    out.extend_from_slice(&(k.regions as u64).to_le_bytes());
    out.extend_from_slice(&(k.vm_count as u64).to_le_bytes());
    out.extend_from_slice(&k.cores.to_le_bytes());
    out.extend_from_slice(&k.updated_at.minutes().to_le_bytes());
}

/// Little-endian array extraction helpers over an exact-size slice.
fn arr8(buf: &[u8], at: usize) -> [u8; 8] {
    buf[at..at + 8].try_into().expect("slice is 8 bytes")
}

/// Decodes one entry from an exactly [`ENTRY_BYTES`]-byte slice.
///
/// # Errors
/// A description of the malformed field. The CRC catches random
/// corruption before this runs; decode errors mean format drift.
pub(crate) fn decode_entry(buf: &[u8]) -> Result<WorkloadKnowledge, String> {
    debug_assert_eq!(buf.len(), ENTRY_BYTES);
    Ok(WorkloadKnowledge {
        subscription: SubscriptionId::new(u32::from_le_bytes(
            buf[0..4].try_into().expect("slice is 4 bytes"),
        )),
        cloud: match buf[4] {
            0 => CloudKind::Private,
            1 => CloudKind::Public,
            other => return Err(format!("unknown cloud tag {other}")),
        },
        pattern: match buf[5] {
            0 => None,
            1 => Some(UtilizationPattern::Diurnal),
            2 => Some(UtilizationPattern::Stable),
            3 => Some(UtilizationPattern::Irregular),
            4 => Some(UtilizationPattern::HourlyPeak),
            other => return Err(format!("unknown pattern tag {other}")),
        },
        lifetime: match buf[6] {
            0 => LifetimeClass::MostlyShort,
            1 => LifetimeClass::Mixed,
            2 => LifetimeClass::MostlyLong,
            other => return Err(format!("unknown lifetime tag {other}")),
        },
        region_agnostic: match buf[7] {
            0 => None,
            1 => Some(false),
            2 => Some(true),
            other => return Err(format!("unknown region_agnostic tag {other}")),
        },
        mean_util: f64::from_bits(u64::from_le_bytes(arr8(buf, 8))),
        p95_util: f64::from_bits(u64::from_le_bytes(arr8(buf, 16))),
        util_cv: f64::from_bits(u64::from_le_bytes(arr8(buf, 24))),
        regions: u64::from_le_bytes(arr8(buf, 32)) as usize,
        vm_count: u64::from_le_bytes(arr8(buf, 40)) as usize,
        cores: u64::from_le_bytes(arr8(buf, 48)),
        updated_at: SimTime::from_minutes(i64::from_le_bytes(arr8(buf, 56))),
    })
}

/// Wraps `payload` as one frame and appends it to `out`.
pub(crate) fn append_frame(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of reading the frame at one position.
#[derive(Debug)]
pub(crate) enum FrameOutcome<'a> {
    /// A complete, checksum-valid frame: its payload and the position of
    /// the next frame.
    Frame(&'a [u8], usize),
    /// The buffer ends before this frame completes — the torn tail a
    /// crash mid-append leaves behind. Only legitimate at the very end
    /// of a WAL; snapshot files are renamed into place whole, so their
    /// readers escalate this to corruption.
    TornTail,
    /// Clean end of the buffer: no more frames.
    End,
}

/// Reads the frame starting at `pos`. `record` is the 1-based ordinal
/// of this frame in `file`, used to point error messages at the
/// offending record.
pub(crate) fn next_frame<'a>(
    buf: &'a [u8],
    pos: usize,
    file: &str,
    record: u64,
) -> Result<FrameOutcome<'a>, PersistError> {
    if pos == buf.len() {
        return Ok(FrameOutcome::End);
    }
    if buf.len() - pos < FRAME_HEADER {
        return Ok(FrameOutcome::TornTail);
    }
    let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(buf[pos + 4..pos + 8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        // A torn write can truncate a frame but never mint an absurd
        // length: the 4 length bytes are either all present or short
        // (caught above). This is a corrupted length field.
        return Err(PersistError::Corrupt {
            file: file.to_owned(),
            record,
            reason: format!("implausible record length {len} at byte {pos}"),
        });
    }
    let body = pos + FRAME_HEADER;
    if buf.len() - body < len {
        return Ok(FrameOutcome::TornTail);
    }
    let payload = &buf[body..body + len];
    let actual = crc32(payload);
    if actual != crc {
        return Err(PersistError::Corrupt {
            file: file.to_owned(),
            record,
            reason: format!(
                "checksum mismatch at byte {pos} (stored {crc:#010x}, computed {actual:#010x})"
            ),
        });
    }
    Ok(FrameOutcome::Frame(payload, body + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(id: u32) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Public,
            pattern: Some(UtilizationPattern::HourlyPeak),
            lifetime: LifetimeClass::Mixed,
            mean_util: 12.345_678_901_234_567,
            p95_util: f64::MIN_POSITIVE,
            util_cv: 1.0e300,
            regions: 3,
            region_agnostic: Some(false),
            vm_count: usize::MAX >> 1,
            cores: u64::MAX,
            updated_at: SimTime::from_minutes(-123_456),
        }
    }

    #[test]
    fn entry_roundtrip_is_bit_exact() {
        let k = entry(7);
        let mut buf = Vec::new();
        encode_entry(&k, &mut buf);
        assert_eq!(buf.len(), ENTRY_BYTES);
        let back = decode_entry(&buf).unwrap();
        assert_eq!(back, k);
        assert_eq!(back.mean_util.to_bits(), k.mean_util.to_bits());
        assert_eq!(back.util_cv.to_bits(), k.util_cv.to_bits());
    }

    #[test]
    fn unknown_enum_tags_are_rejected() {
        let mut buf = Vec::new();
        encode_entry(&entry(1), &mut buf);
        for (at, what) in [
            (4, "cloud"),
            (5, "pattern"),
            (6, "lifetime"),
            (7, "region_agnostic"),
        ] {
            let mut bad = buf.clone();
            bad[at] = 0xEE;
            let err = decode_entry(&bad).unwrap_err();
            assert!(err.contains(what), "{what}: {err}");
        }
    }

    #[test]
    fn frame_roundtrip_and_corruption() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"hello");
        append_frame(&mut buf, b"world!");
        let FrameOutcome::Frame(p1, next) = next_frame(&buf, 0, "t", 1).unwrap() else {
            panic!("first frame reads");
        };
        assert_eq!(p1, b"hello");
        let FrameOutcome::Frame(p2, end) = next_frame(&buf, next, "t", 2).unwrap() else {
            panic!("second frame reads");
        };
        assert_eq!(p2, b"world!");
        assert!(matches!(
            next_frame(&buf, end, "t", 3).unwrap(),
            FrameOutcome::End
        ));

        // Any flipped payload byte trips the CRC with the record number.
        let mut bad = buf.clone();
        bad[FRAME_HEADER + 1] ^= 0x40;
        let err = next_frame(&bad, 0, "wal.log", 1).unwrap_err();
        assert!(err.to_string().contains("record 1"), "{err}");
        assert!(err.to_string().contains("checksum mismatch"), "{err}");

        // A truncated tail is torn, not corrupt.
        assert!(matches!(
            next_frame(&buf[..buf.len() - 3], next, "t", 2).unwrap(),
            FrameOutcome::TornTail
        ));
        assert!(matches!(
            next_frame(&buf[..3], 0, "t", 1).unwrap(),
            FrameOutcome::TornTail
        ));
    }

    #[test]
    fn implausible_length_is_corruption_not_torn_tail() {
        let mut buf = Vec::new();
        append_frame(&mut buf, b"payload");
        buf[3] = 0xFF; // length's high byte: claims a ~4 GiB record
        let err = next_frame(&buf, 0, "wal.log", 4).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("record 4"), "{msg}");
        assert!(msg.contains("implausible record length"), "{msg}");
    }
}
