//! Error type for the characterization pipeline.

use cloudscope_stats::StatsError;
use cloudscope_timeseries::SeriesError;
use std::error::Error;
use std::fmt;

/// Errors returned by the analysis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AnalysisError {
    /// The trace holds no data for the requested analysis; carries what
    /// was being computed.
    NoData(&'static str),
    /// A statistics kernel rejected its input.
    Stats(StatsError),
    /// A time-series transform rejected its input.
    Series(SeriesError),
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::NoData(what) => write!(f, "no data for {what}"),
            AnalysisError::Stats(e) => write!(f, "statistics error: {e}"),
            AnalysisError::Series(e) => write!(f, "time-series error: {e}"),
        }
    }
}

impl Error for AnalysisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AnalysisError::NoData(_) => None,
            AnalysisError::Stats(e) => Some(e),
            AnalysisError::Series(e) => Some(e),
        }
    }
}

impl From<StatsError> for AnalysisError {
    fn from(e: StatsError) -> Self {
        AnalysisError::Stats(e)
    }
}

impl From<SeriesError> for AnalysisError {
    fn from(e: SeriesError) -> Self {
        AnalysisError::Series(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_sources() {
        let e = AnalysisError::NoData("lifetimes");
        assert_eq!(e.to_string(), "no data for lifetimes");
        assert!(e.source().is_none());
        let e: AnalysisError = StatsError::EmptyInput("x").into();
        assert!(e.source().is_some());
        let e: AnalysisError = SeriesError::ZeroVariance.into();
        assert!(e.to_string().contains("time-series"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AnalysisError>();
    }
}
