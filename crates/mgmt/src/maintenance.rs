//! Lifetime-aware maintenance migration — the paper's introductory
//! motivating example: when a node shows unhealthy signals (e.g. a disk
//! about to fail), the platform migrates VMs away; *"with knowledge of
//! the lifetime of VMs running on this node, the cloud platform can
//! optimize this procedure by only migrating out VMs with long remaining
//! time"*.

use crate::error::MgmtError;
use cloudscope_kb::{KnowledgeBase, LifetimeClass};
use cloudscope_model::prelude::*;
use serde::{Deserialize, Serialize};

/// Expected remaining lifetime of one VM, in minutes.
///
/// The predictor combines the knowledge base's per-subscription lifetime
/// class with the VM's observed age: exponential-ish churn is roughly
/// memoryless (remaining ≈ class mean), while standing VMs of long-lived
/// subscriptions keep running (remaining grows with observed age — the
/// "used goods" effect of heavy-tailed lifetimes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RemainingLifetimePredictor {
    /// Mean remaining minutes for mostly-short churn.
    pub short_mean_minutes: f64,
    /// Mean remaining minutes for mixed churn.
    pub mixed_mean_minutes: f64,
    /// For mostly-long workloads: remaining ≈ `long_age_factor × age`
    /// (heavy-tailed survival), floored at `mixed_mean_minutes`.
    pub long_age_factor: f64,
    /// A VM whose observed age already exceeds `escalation_factor ×` its
    /// class mean is almost surely a standing VM of a churny
    /// subscription (the Lindy effect of heavy-tailed lifetimes) and is
    /// predicted as long-lived instead.
    pub escalation_factor: f64,
}

impl Default for RemainingLifetimePredictor {
    fn default() -> Self {
        Self {
            short_mean_minutes: 30.0,
            mixed_mean_minutes: 8.0 * 60.0,
            long_age_factor: 0.8,
            escalation_factor: 10.0,
        }
    }
}

impl RemainingLifetimePredictor {
    /// Predicts the remaining lifetime of `vm` at time `now`.
    ///
    /// Falls back to the mixed-class mean when the knowledge base has no
    /// entry for the VM's subscription.
    #[must_use]
    pub fn predict(&self, kb: &KnowledgeBase, vm: &VmRecord, now: SimTime) -> SimDuration {
        let class = kb
            .get(vm.subscription)
            .map_or(LifetimeClass::Mixed, |k| k.lifetime);
        let age_minutes = now.saturating_since(vm.created).minutes() as f64;
        let long_estimate = (self.long_age_factor * age_minutes).max(self.mixed_mean_minutes);
        let remaining = match class {
            LifetimeClass::MostlyShort
                if age_minutes <= self.escalation_factor * self.short_mean_minutes =>
            {
                self.short_mean_minutes
            }
            LifetimeClass::Mixed
                if age_minutes <= self.escalation_factor * self.mixed_mean_minutes =>
            {
                self.mixed_mean_minutes
            }
            // Outlived its class by far, or genuinely long-lived: the
            // survivor keeps surviving.
            _ => long_estimate,
        };
        SimDuration::from_minutes(remaining.round() as i64)
    }
}

/// What to do with one VM on the unhealthy node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MaintenanceAction {
    /// Live-migrate the VM to a healthy node (it will outlive the node).
    Migrate,
    /// Let the VM finish naturally; it is expected to terminate before
    /// the node must be taken down.
    LetFinish,
}

/// The maintenance plan for one unhealthy node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaintenancePlan {
    /// The node being drained.
    pub node: NodeId,
    /// Per-VM decisions, `(vm, predicted remaining minutes, action)`.
    pub decisions: Vec<(VmId, i64, MaintenanceAction)>,
    /// The deadline by which the node must be empty.
    pub deadline: SimTime,
}

impl MaintenancePlan {
    /// VMs chosen for migration.
    pub fn migrations(&self) -> impl Iterator<Item = VmId> + '_ {
        self.decisions
            .iter()
            .filter(|(_, _, a)| *a == MaintenanceAction::Migrate)
            .map(|(vm, _, _)| *vm)
    }

    /// Number of migrations avoided versus the migrate-everything
    /// baseline.
    #[must_use]
    pub fn migrations_saved(&self) -> usize {
        self.decisions
            .iter()
            .filter(|(_, _, a)| *a == MaintenanceAction::LetFinish)
            .count()
    }
}

/// Plans the drain of an unhealthy node: every alive VM whose predicted
/// remaining lifetime extends past `deadline` is migrated; the rest are
/// left to finish (saving migration cost and VM disruption).
///
/// # Errors
/// Returns [`MgmtError::InvalidParameter`] if `deadline` is not after
/// `now`.
pub fn plan_node_maintenance(
    trace: &Trace,
    kb: &KnowledgeBase,
    predictor: &RemainingLifetimePredictor,
    node: NodeId,
    now: SimTime,
    deadline: SimTime,
) -> Result<MaintenancePlan, MgmtError> {
    if deadline <= now {
        return Err(MgmtError::InvalidParameter("deadline must be after now"));
    }
    let slack = deadline.saturating_since(now);
    let mut decisions = Vec::new();
    for &vm_id in trace.vms_on_node(node) {
        let Ok(vm) = trace.vm(vm_id) else { continue };
        if !vm.alive_at(now) {
            continue;
        }
        let remaining = predictor.predict(kb, vm, now);
        let action = if remaining > slack {
            MaintenanceAction::Migrate
        } else {
            MaintenanceAction::LetFinish
        };
        decisions.push((vm_id, remaining.minutes(), action));
    }
    // Longest-remaining first: those migrations are the most urgent.
    decisions.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let plan = MaintenancePlan {
        node,
        decisions,
        deadline,
    };
    cloudscope_obs::counter("mgmt.maintenance.plans_computed").inc();
    cloudscope_obs::counter("mgmt.maintenance.migrations_saved")
        .add(plan.migrations_saved() as u64);
    Ok(plan)
}

/// Evaluates a plan against ground truth: of the VMs left to finish, how
/// many actually terminated before the deadline (`correct_let_finish`),
/// and how many would have been disrupted by the node failure
/// (`missed`) — plus how many needless migrations the plan avoided
/// relative to migrating everything.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MaintenanceEvaluation {
    /// VMs correctly left to finish (ended before the deadline).
    pub correct_let_finish: usize,
    /// VMs left to finish that were still alive at the deadline.
    pub missed: usize,
    /// VMs migrated.
    pub migrated: usize,
    /// Of the migrated VMs, how many would anyway have ended in time
    /// (unnecessary migrations).
    pub unnecessary_migrations: usize,
}

/// Scores a plan against the trace's actual lifetimes.
#[must_use]
pub fn evaluate_plan(trace: &Trace, plan: &MaintenancePlan) -> MaintenanceEvaluation {
    let mut eval = MaintenanceEvaluation {
        correct_let_finish: 0,
        missed: 0,
        migrated: 0,
        unnecessary_migrations: 0,
    };
    for (vm_id, _, action) in &plan.decisions {
        let Ok(vm) = trace.vm(*vm_id) else { continue };
        let ended_in_time = vm.ended.is_some_and(|e| e <= plan.deadline);
        match action {
            MaintenanceAction::LetFinish => {
                if ended_in_time {
                    eval.correct_let_finish += 1;
                } else {
                    eval.missed += 1;
                }
            }
            MaintenanceAction::Migrate => {
                eval.migrated += 1;
                if ended_in_time {
                    eval.unnecessary_migrations += 1;
                }
            }
        }
    }
    eval
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_analysis::UtilizationPattern;
    use cloudscope_kb::WorkloadKnowledge;
    use cloudscope_model::subscription::PartyKind;
    use cloudscope_model::topology::NodeSku;

    /// One node hosting a short-churn VM and a long-standing VM.
    fn trace_and_kb() -> (Trace, KnowledgeBase) {
        let mut tb = Topology::builder();
        let r = tb.add_region("m", 0, "US");
        let d = tb.add_datacenter(r);
        let _c = tb.add_cluster(d, CloudKind::Public, NodeSku::new(32, 256.0), 1, 1);
        let mut b = Trace::builder(tb.build());
        for (i, lifetime) in [LifetimeClass::MostlyShort, LifetimeClass::MostlyLong]
            .iter()
            .enumerate()
        {
            let _ = lifetime;
            b.add_subscription(Subscription::new(
                SubscriptionId::new(i as u32),
                CloudKind::Public,
                PartyKind::ThirdParty,
            ))
            .unwrap();
        }
        let mk = |id: u64, sub: u32, created: i64, ended: Option<i64>| VmRecord {
            id: VmId::new(id),
            subscription: SubscriptionId::new(sub),
            service: ServiceId::new(sub),
            size: VmSize::new(4, 16.0),
            priority: Priority::OnDemand,
            service_model: ServiceModel::Iaas,
            region: RegionId::new(0),
            cluster: ClusterId::new(0),
            node: Some(NodeId::new(0)),
            created: SimTime::from_minutes(created),
            ended: ended.map(SimTime::from_minutes),
        };
        // Short churn VM: created at t=1000, actually ends at t=1030.
        b.add_vm(mk(0, 0, 1000, Some(1030)), None).unwrap();
        // Standing VM: created long before, never ends.
        b.add_vm(mk(1, 1, -20_000, None), None).unwrap();
        // Already-terminated VM: ignored by the planner.
        b.add_vm(mk(2, 0, 100, Some(200)), None).unwrap();
        let trace = b.build();

        let kb = KnowledgeBase::new();
        let knowledge = |id: u32, lifetime| WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Public,
            pattern: Some(UtilizationPattern::Stable),
            lifetime,
            mean_util: 10.0,
            p95_util: 20.0,
            util_cv: 0.1,
            regions: 1,
            region_agnostic: None,
            vm_count: 1,
            cores: 4,
            updated_at: SimTime::ZERO,
        };
        kb.upsert(knowledge(0, LifetimeClass::MostlyShort));
        kb.upsert(knowledge(1, LifetimeClass::MostlyLong));
        (trace, kb)
    }

    #[test]
    fn short_churn_finishes_long_standing_migrates() {
        let (trace, kb) = trace_and_kb();
        let now = SimTime::from_minutes(1010);
        let deadline = now + SimDuration::from_hours(2);
        let plan = plan_node_maintenance(
            &trace,
            &kb,
            &RemainingLifetimePredictor::default(),
            NodeId::new(0),
            now,
            deadline,
        )
        .unwrap();
        assert_eq!(plan.decisions.len(), 2, "terminated VM excluded");
        let actions: std::collections::HashMap<VmId, MaintenanceAction> =
            plan.decisions.iter().map(|(vm, _, a)| (*vm, *a)).collect();
        assert_eq!(actions[&VmId::new(0)], MaintenanceAction::LetFinish);
        assert_eq!(actions[&VmId::new(1)], MaintenanceAction::Migrate);
        assert_eq!(plan.migrations_saved(), 1);
        assert_eq!(plan.migrations().count(), 1);
    }

    #[test]
    fn evaluation_scores_against_ground_truth() {
        let (trace, kb) = trace_and_kb();
        let now = SimTime::from_minutes(1010);
        let deadline = now + SimDuration::from_hours(2);
        let plan = plan_node_maintenance(
            &trace,
            &kb,
            &RemainingLifetimePredictor::default(),
            NodeId::new(0),
            now,
            deadline,
        )
        .unwrap();
        let eval = evaluate_plan(&trace, &plan);
        // The short VM (ends 1030 <= deadline) was correctly let finish;
        // the standing VM was migrated, and necessarily so.
        assert_eq!(eval.correct_let_finish, 1);
        assert_eq!(eval.missed, 0);
        assert_eq!(eval.migrated, 1);
        assert_eq!(eval.unnecessary_migrations, 0);
    }

    #[test]
    fn tight_deadline_migrates_everything() {
        let (trace, kb) = trace_and_kb();
        let now = SimTime::from_minutes(1010);
        // 5-minute deadline: even short churn is predicted to outlive it.
        let deadline = now + SimDuration::from_minutes(5);
        let plan = plan_node_maintenance(
            &trace,
            &kb,
            &RemainingLifetimePredictor::default(),
            NodeId::new(0),
            now,
            deadline,
        )
        .unwrap();
        assert_eq!(plan.migrations().count(), 2);
        assert_eq!(plan.migrations_saved(), 0);
    }

    #[test]
    fn migrations_saved_and_migrations_partition_the_decisions() {
        let (trace, kb) = trace_and_kb();
        let now = SimTime::from_minutes(1010);
        // Across a range of deadlines, every decision is exactly one of
        // migrate / let-finish, so the two tallies always partition.
        for slack_minutes in [1, 5, 60, 600, 20_000] {
            let plan = plan_node_maintenance(
                &trace,
                &kb,
                &RemainingLifetimePredictor::default(),
                NodeId::new(0),
                now,
                now + SimDuration::from_minutes(slack_minutes),
            )
            .unwrap();
            assert_eq!(
                plan.migrations_saved() + plan.migrations().count(),
                plan.decisions.len(),
                "slack={slack_minutes}"
            );
        }
    }

    #[test]
    fn age_grows_long_lived_predictions() {
        let (trace, kb) = trace_and_kb();
        let predictor = RemainingLifetimePredictor::default();
        let vm = trace.vm(VmId::new(1)).unwrap();
        let young = predictor.predict(&kb, vm, SimTime::from_minutes(-19_000));
        let old = predictor.predict(&kb, vm, SimTime::from_minutes(10_000));
        assert!(old > young, "{old:?} vs {young:?}");
    }

    #[test]
    fn invalid_deadline_rejected() {
        let (trace, kb) = trace_and_kb();
        let now = SimTime::from_minutes(100);
        assert!(plan_node_maintenance(
            &trace,
            &kb,
            &RemainingLifetimePredictor::default(),
            NodeId::new(0),
            now,
            now,
        )
        .is_err());
    }
}
