//! Predicate pushdown through the trace store: region/day-sliced
//! metadata reads must touch strictly fewer chunks than a full sweep
//! while reproducing the trace-backed analyses exactly.

use cloudscope::analysis::deployment::DeploymentSizeAnalysis;
use cloudscope::analysis::spatial::SpatialAnalysis;
use cloudscope::analysis::temporal::TemporalAnalysis;
use cloudscope::analysis::vmsize::VmSizeAnalysis;
use cloudscope::model::ids::RegionId;
use cloudscope::model::time::MINUTES_PER_DAY;
use cloudscope::obs::testing::snapshot_diff;
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::store::{write_trace, ScanFilter, TelemetryMode, TraceReader, WriteOptions};
use std::path::PathBuf;
use std::sync::Arc;

/// A unique temp store directory, removed on drop.
struct TempStore {
    path: PathBuf,
}

impl TempStore {
    fn new(tag: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("cloudscope-pushdown-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("create temp dir");
        Self { path }
    }
}

impl Drop for TempStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.path);
    }
}

fn chunks_read(diff: &cloudscope::obs::Snapshot) -> u64 {
    diff.counter("store.read.chunks").unwrap_or(0)
}

#[test]
fn sliced_metadata_reads_touch_fewer_chunks_and_agree_with_the_trace() {
    let g = generate(&GeneratorConfig::small(11));
    let dir = TempStore::new("sliced");
    let par = Parallelism::auto();
    write_trace(&g.trace, &dir.path, WriteOptions::default(), &par).expect("write store");
    let reader = TraceReader::open(&dir.path).expect("open store");
    let subscriptions = reader.read_subscriptions().expect("subscriptions blob");
    assert_eq!(subscriptions, g.trace.subscriptions());

    let registry = Arc::new(cloudscope::obs::Registry::new());

    // Full metadata sweep: every record, in id order.
    let (all, full_diff) = snapshot_diff(&registry, || {
        reader
            .read_vm_records(ScanFilter::all(), &par)
            .expect("full sweep")
    });
    assert_eq!(all, g.trace.vms());
    let full_chunks = chunks_read(&full_diff);
    assert!(full_chunks > 1, "small trace must span several chunks");

    // Region pushdown: only the sample region's chunks are read.
    let region = RegionId::new(0);
    let (region_records, region_diff) = snapshot_diff(&registry, || {
        reader
            .read_vm_records(ScanFilter::all().region(region.index()), &par)
            .expect("region slice")
    });
    assert!(
        chunks_read(&region_diff) < full_chunks,
        "region slice read {} of {} chunks",
        chunks_read(&region_diff),
        full_chunks
    );
    assert!(!region_records.is_empty());
    assert!(region_records.iter().all(|vm| vm.region == region));
    let expected: Vec<_> = g
        .trace
        .vms()
        .iter()
        .filter(|vm| vm.region == region)
        .cloned()
        .collect();
    assert_eq!(region_records, expected);

    // Day pushdown: chunks are keyed by (clamped) creation day, so a
    // snapshot on day 2 never reads later-day chunks.
    let snapshot = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);
    let snapshot_day = u8::try_from(snapshot.minutes() / MINUTES_PER_DAY).expect("day");
    let (day_records, day_diff) = snapshot_diff(&registry, || {
        reader
            .read_vm_records(ScanFilter::all().max_day(snapshot_day), &par)
            .expect("day slice")
    });
    assert!(
        chunks_read(&day_diff) < full_chunks,
        "day slice read {} of {} chunks",
        chunks_read(&day_diff),
        full_chunks
    );
    // The slice is a superset of the VMs alive at the snapshot…
    assert!(day_records
        .iter()
        .all(|vm| vm.created.minutes() < (i64::from(snapshot_day) + 1) * MINUTES_PER_DAY));
    assert!(g
        .trace
        .vms()
        .iter()
        .filter(|vm| vm.alive_at(snapshot))
        .all(|vm| day_records.contains(vm)));

    // …so the pushed-down Figure 1 equals the trace-backed run exactly.
    let pushed = DeploymentSizeAnalysis::run_from_records(&day_records, &subscriptions, snapshot)
        .expect("pushed-down fig1");
    let full = DeploymentSizeAnalysis::run(&g.trace, snapshot).expect("trace fig1");
    assert_eq!(pushed, full);

    // Figure 3 from records: global curves from the full sweep, the
    // region-sliced 3(b)/(c) series from the pushed-down slice.
    let pushed = TemporalAnalysis::run_from_records(&all, &region_records, &subscriptions, region)
        .expect("pushed-down fig3");
    let full = TemporalAnalysis::run(&g.trace, region).expect("trace fig3");
    assert_eq!(pushed, full);
}

#[test]
fn metadata_only_figures_skip_every_telemetry_chunk() {
    let g = generate(&GeneratorConfig::small(13));
    let dir = TempStore::new("metaonly");
    let par = Parallelism::auto();
    write_trace(&g.trace, &dir.path, WriteOptions::default(), &par).expect("write store");
    let reader = TraceReader::open(&dir.path).expect("open store");
    let subscriptions = reader.read_subscriptions().expect("subscriptions blob");

    let registry = Arc::new(cloudscope::obs::Registry::new());

    // Baseline: materializing the whole trace decodes metadata AND
    // telemetry chunks.
    let (trace, full_diff) = snapshot_diff(&registry, || {
        reader
            .read_trace(TelemetryMode::Resident, &par)
            .expect("full trace")
    });
    let full_chunks = chunks_read(&full_diff);

    // The fig2/fig4 pushdown path: a metadata-only sweep.
    let (records, meta_diff) = snapshot_diff(&registry, || {
        reader
            .read_vm_records(ScanFilter::all(), &par)
            .expect("metadata sweep")
    });
    let meta_chunks = chunks_read(&meta_diff);
    assert!(
        meta_chunks < full_chunks,
        "metadata sweep read {meta_chunks} of {full_chunks} chunks"
    );
    assert_eq!(records, g.trace.vms());

    // Both metadata-only figures reproduce the trace-backed runs
    // exactly from the pushed-down slice.
    let pushed = VmSizeAnalysis::run_from_records(&records, &subscriptions).expect("records fig2");
    let full = VmSizeAnalysis::run(&trace).expect("trace fig2");
    assert_eq!(pushed, full);

    let pushed = SpatialAnalysis::run_from_records(&records, &subscriptions).expect("records fig4");
    let full = SpatialAnalysis::run(&trace).expect("trace fig4");
    assert_eq!(pushed, full);
}
