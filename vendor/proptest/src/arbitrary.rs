//! `any::<T>()` — canonical strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates one value covering the type's full range.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, mirroring `proptest::arbitrary::any`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_u64_varies() {
        let mut rng = TestRng::for_test("any");
        let a = any::<u64>().generate(&mut rng);
        let b = any::<u64>().generate(&mut rng);
        assert_ne!(a, b);
        let _: bool = any::<bool>().generate(&mut rng);
    }
}
