//! Byte-level golden digests of generated traces.
//!
//! The headline-metric goldens (`tests/golden.rs`) survive any change
//! that leaves the *statistics* alone; these digests do not. They hash
//! every exported deployment row, the raw bits of every telemetry
//! sample, and the full generation report, so a refactor of the
//! generator (indexed placement, calendar queue, region-parallel drive)
//! is provably byte-identical — or fails here with the digest that
//! changed.
//!
//! To bless an intentional generator change:
//!
//! ```text
//! CLOUDSCOPE_UPDATE_GOLDEN=1 cargo test -p cloudscope --test trace_digest
//! ```

use cloudscope::model::export::write_deployments;
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::tracegen::{generate_with, generate_with_partition, GeneratedTrace, PartitionMode};
use std::fmt::Write as _;
use std::path::PathBuf;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/trace_digests.txt")
}

/// FNV-1a 64 over a byte stream: tiny, dependency-free, and any single
/// changed byte anywhere in the trace changes the digest.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Digest of everything [`generate`] produces: deployment rows exactly
/// as exported, telemetry as raw IEEE-754 bits (the `{:.1}` CSV export
/// would mask sub-decimal drift), service ground truth, and the
/// generation report with both fleets' allocator counters.
pub fn trace_digest(generated: &GeneratedTrace) -> u64 {
    let mut fnv = Fnv::new();
    let mut rows = Vec::new();
    write_deployments(&generated.trace, &mut rows).expect("write to Vec cannot fail");
    fnv.update(&rows);
    for vm in generated.trace.vms() {
        if let Some(util) = generated.trace.util(vm.id) {
            fnv.update(&util.start().minutes().to_le_bytes());
            for v in util.iter() {
                fnv.update(&v.to_bits().to_le_bytes());
            }
        }
    }
    for service in &generated.services {
        fnv.update(format!("{service:?}").as_bytes());
    }
    fnv.update(format!("{:?}", generated.report).as_bytes());
    fnv.update(format!("{:?}", generated.trace.stats()).as_bytes());
    fnv.0
}

/// The pinned generation workloads. Two small seeds with telemetry (the
/// golden-metric seeds), plus a medium deployment-only run so the
/// placement/simulation path is pinned at a scale where every placement
/// policy and the churn machinery are exercised hard.
fn digest_lines() -> String {
    let mut out = String::new();
    for seed in [7u64, 1234] {
        let g = generate(&GeneratorConfig::small(seed));
        writeln!(out, "small_seed{seed},{:#018x}", trace_digest(&g)).expect("string write");
    }
    let mut cfg = GeneratorConfig::medium(7);
    cfg.telemetry = false;
    let g = generate(&cfg);
    writeln!(out, "medium_deploy_seed7,{:#018x}", trace_digest(&g)).expect("string write");
    out
}

#[test]
fn trace_digests_match_golden() {
    let actual = digest_lines();
    let path = golden_path();

    if std::env::var_os("CLOUDSCOPE_UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &actual).expect("write golden digests");
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden digest file {} ({e}); run with CLOUDSCOPE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "generated trace bytes drifted from tests/golden/trace_digests.txt.\n\
         This means the generator no longer reproduces the pre-refactor bytes.\n\
         Only bless (CLOUDSCOPE_UPDATE_GOLDEN=1) if the change is intentional."
    );
}

/// Same config must digest identically across repeated in-process runs
/// (catches any hidden global state in the generator).
#[test]
fn digest_is_stable_across_runs() {
    let a = trace_digest(&generate(&GeneratorConfig::small(42)));
    let b = trace_digest(&generate(&GeneratorConfig::small(42)));
    assert_eq!(a, b);
}

/// Worker-count and partition-granularity invariance of the parallel
/// drive: the same seed must produce the identical trace digest at 1,
/// 2, 4, and 8 workers under every forced partition mode, and through
/// the `CLOUDSCOPE_WORKERS` override that [`generate`] reads. Modes are
/// forced because the small config short-circuits Auto to the serial
/// drive — the very digest the forced modes are checked against.
#[test]
fn digest_is_worker_count_invariant() {
    let cfg = GeneratorConfig::small(7);
    let base = trace_digest(&generate_with(&cfg, Parallelism::with_workers(1)));
    for mode in [PartitionMode::Region, PartitionMode::ClusterGroup] {
        for workers in [1usize, 2, 4, 8] {
            let got = trace_digest(&generate_with_partition(
                &cfg,
                Parallelism::with_workers(workers),
                mode,
            ));
            assert_eq!(got, base, "digest drifted: {mode:?} at {workers} workers");
        }
    }

    // The environment override feeds Parallelism::auto() inside plain
    // generate(). Setting it mid-process is safe here precisely because
    // of the property under test: worker count changes no output byte.
    std::env::set_var("CLOUDSCOPE_WORKERS", "8");
    let via_env = trace_digest(&generate(&cfg));
    std::env::remove_var("CLOUDSCOPE_WORKERS");
    assert_eq!(via_env, base, "CLOUDSCOPE_WORKERS=8 changed the digest");
}

/// Golden digests hold across a disk round trip: a trace persisted to
/// the columnar store and read back — resident or streaming
/// out-of-core — digests to the identical value, and so does a store
/// produced by the streamed [`generate_to_store`] path.
#[test]
fn digest_survives_disk_round_trip() {
    use cloudscope::store::{TelemetryMode, WriteOptions};
    use cloudscope::tracegen::{generate_to_store, read_generated, write_generated};

    struct TempDir(PathBuf);
    impl Drop for TempDir {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.0);
        }
    }
    let base = std::env::temp_dir().join(format!("cloudscope-digest-store-{}", std::process::id()));

    let cfg = GeneratorConfig::small(7);
    let par = Parallelism::with_workers(4);
    let generated = generate_with(&cfg, par);
    let expected = trace_digest(&generated);

    let written = TempDir(base.join("written"));
    write_generated(&generated, &written.0, WriteOptions::default(), &par).expect("store writes");
    for (label, mode) in [
        ("resident", TelemetryMode::Resident),
        ("out-of-core", TelemetryMode::OutOfCore { cache_chunks: 2 }),
    ] {
        let back = read_generated(&written.0, mode, &par).expect("store reads");
        assert_eq!(
            trace_digest(&back),
            expected,
            "{label} round trip changed the digest"
        );
    }

    let streamed = TempDir(base.join("streamed"));
    generate_to_store(&cfg, &streamed.0, WriteOptions::default(), par).expect("streamed write");
    let back = read_generated(
        &streamed.0,
        TelemetryMode::OutOfCore { cache_chunks: 2 },
        &par,
    )
    .expect("streamed store reads");
    assert_eq!(
        trace_digest(&back),
        expected,
        "generate_to_store changed the digest"
    );
}
