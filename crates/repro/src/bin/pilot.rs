//! The Canada pilot (Section IV-B): shifting ServiceX from a hot region
//! to a cold one. Paper: source underutilized cores 23% -> 16%, source
//! core-utilization rate 42% -> 37%; destination changes minor.

use cloudscope::mgmt::rebalance::{region_capacity_stats, simulate_shift};
use cloudscope::prelude::*;
use cloudscope_repro::ShapeChecks;

fn main() {
    let generated = cloudscope_repro::default_trace();
    let at = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);

    // As in the paper's pilot, the moved service is a region-agnostic
    // one dragging down its source region's health: pick the
    // (service, region) pair with the most cores on underutilized VMs.
    let mut best: Option<(&cloudscope::tracegen::ServiceInfo, RegionId, u64)> = None;
    for svc in generated.services.iter().filter(|s| {
        s.cloud == CloudKind::Private && s.profile.region_agnostic && s.regions.len() >= 2
    }) {
        for &region in &svc.regions {
            let mut under = 0u64;
            for &vm_id in generated.trace.vms_of_service(svc.service) {
                let vm = generated.trace.vm(vm_id).expect("indexed vm");
                if vm.region == region
                    && vm.node.is_some()
                    && vm.alive_at(at)
                    && generated.trace.util(vm_id).is_some_and(|u| u.mean() < 10.0)
                {
                    under += u64::from(vm.size.cores());
                }
            }
            if best.is_none_or(|(_, _, b)| under > b) {
                best = Some((svc, region, under));
            }
        }
    }
    let (flagship, hot, _) = best.expect("a shiftable underutilized service");
    let cold = generated
        .trace
        .topology()
        .regions()
        .iter()
        .filter(|r| r.id != hot)
        .filter_map(|r| {
            region_capacity_stats(&generated.trace, CloudKind::Private, r.id, at)
                .ok()
                .map(|s| (r.id, s.core_utilization_rate()))
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("cold region")
        .0;

    let outcome = simulate_shift(
        &generated.trace,
        CloudKind::Private,
        flagship.service,
        hot,
        cold,
        at,
    )
    .expect("shift");

    println!(
        "## Pilot: shift ServiceX ({}) {hot} -> {cold}",
        flagship.service
    );
    println!("metric,source_before,source_after,dest_before,dest_after");
    println!(
        "underutilized_core_pct,{:.1},{:.1},{:.1},{:.1}",
        100.0 * outcome.source_before.underutilized_pct(),
        100.0 * outcome.source_after.underutilized_pct(),
        100.0 * outcome.destination_before.underutilized_pct(),
        100.0 * outcome.destination_after.underutilized_pct(),
    );
    println!(
        "core_utilization_rate,{:.1},{:.1},{:.1},{:.1}",
        100.0 * outcome.source_before.core_utilization_rate(),
        100.0 * outcome.source_after.core_utilization_rate(),
        100.0 * outcome.destination_before.core_utilization_rate(),
        100.0 * outcome.destination_after.core_utilization_rate(),
    );
    println!("moved_vms,{},,,", outcome.moved_vms);
    println!();

    let mut checks = ShapeChecks::new();
    checks.check(
        "source underutilized-core pct decreases (paper 23% -> 16%)",
        outcome.source_after.underutilized_pct() < outcome.source_before.underutilized_pct(),
        format!(
            "{:.1}% -> {:.1}%",
            100.0 * outcome.source_before.underutilized_pct(),
            100.0 * outcome.source_after.underutilized_pct()
        ),
    );
    checks.check(
        "source core-utilization rate decreases (paper 42% -> 37%)",
        outcome.source_after.core_utilization_rate()
            < outcome.source_before.core_utilization_rate(),
        format!(
            "{:.1}% -> {:.1}%",
            100.0 * outcome.source_before.core_utilization_rate(),
            100.0 * outcome.source_after.core_utilization_rate()
        ),
    );
    checks.check(
        "destination absorbs the shift with capacity to spare",
        outcome.destination_after.core_utilization_rate() < 0.9,
        format!(
            "destination rate {:.1}% -> {:.1}%",
            100.0 * outcome.destination_before.core_utilization_rate(),
            100.0 * outcome.destination_after.core_utilization_rate()
        ),
    );
    std::process::exit(i32::from(!checks.finish("pilot")));
}
