//! Sequence helpers: the [`SliceRandom`] extension trait.

use crate::Rng;

/// Randomization methods on slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.contains(v.choose(&mut rng).unwrap()));
    }
}
