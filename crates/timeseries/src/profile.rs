//! Temporal profiles: folding a week of telemetry into daily shapes,
//! weekday/weekend splits, cross-population percentile bands (Figure 6),
//! and peak-alignment helpers (Figure 7(c)).

use crate::error::SeriesError;
use crate::series::Series;
use cloudscope_stats::percentile::percentiles_into;
use serde::{Deserialize, Serialize};

/// Minutes per day, re-declared to avoid a model-crate dependency.
const MINUTES_PER_DAY: i64 = 24 * 60;
/// Minutes per week.
const MINUTES_PER_WEEK: i64 = 7 * MINUTES_PER_DAY;

/// Folds a series into its average daily shape: bucket `i` is the mean of
/// all samples whose time-of-day falls in the `i`-th step-sized slot.
/// Non-finite samples (gaps) are skipped; a bucket with no finite sample
/// folds to 0, like a bucket the series never covers.
///
/// # Errors
/// Returns [`SeriesError::TooShort`] if the series is empty or its step
/// does not divide a day.
pub fn daily_profile(series: &Series) -> Result<Vec<f64>, SeriesError> {
    let step = series.step_minutes();
    if series.is_empty() || MINUTES_PER_DAY % step != 0 {
        return Err(SeriesError::TooShort(series.len()));
    }
    let buckets = (MINUTES_PER_DAY / step) as usize;
    let mut sums = vec![0.0f64; buckets];
    let mut counts = vec![0u32; buckets];
    for (i, &v) in series.values().iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let minute = series.time_of(i).rem_euclid(MINUTES_PER_DAY);
        let b = (minute / step) as usize;
        sums[b] += v;
        counts[b] += 1;
    }
    Ok(sums
        .into_iter()
        .zip(counts)
        .map(|(s, c)| if c == 0 { 0.0 } else { s / f64::from(c) })
        .collect())
}

/// Mean over weekday samples and mean over weekend samples, assuming the
/// series starts at minute 0 = Monday 00:00 (the trace convention).
///
/// # Errors
/// Returns [`SeriesError::TooShort`] if the series is empty.
pub fn weekday_weekend_means(series: &Series) -> Result<(f64, f64), SeriesError> {
    if series.is_empty() {
        return Err(SeriesError::TooShort(0));
    }
    let (mut wd_sum, mut wd_n, mut we_sum, mut we_n) = (0.0f64, 0u32, 0.0f64, 0u32);
    for (i, &v) in series.values().iter().enumerate() {
        if !v.is_finite() {
            continue;
        }
        let day = series.time_of(i).rem_euclid(MINUTES_PER_WEEK) / MINUTES_PER_DAY;
        if day >= 5 {
            we_sum += v;
            we_n += 1;
        } else {
            wd_sum += v;
            wd_n += 1;
        }
    }
    let wd = if wd_n == 0 {
        0.0
    } else {
        wd_sum / f64::from(wd_n)
    };
    let we = if we_n == 0 {
        0.0
    } else {
        we_sum / f64::from(we_n)
    };
    Ok((wd, we))
}

/// Time-of-day (minutes since midnight) at which the average daily
/// profile peaks.
///
/// # Errors
/// Propagates [`daily_profile`] errors.
pub fn peak_minute_of_day(series: &Series) -> Result<i64, SeriesError> {
    let profile = daily_profile(series)?;
    let (idx, _) = profile
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
        .expect("profile non-empty");
    Ok(idx as i64 * series.step_minutes())
}

/// Percentile bands across a *population* of series: at each time index,
/// the requested percentiles of the population's values — exactly what
/// Figure 6 plots for CPU utilization over a week and over a day.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PercentileBands {
    /// Percentile levels, ascending (e.g. `[5, 25, 50, 75, 95]`).
    pub levels: Vec<f64>,
    /// `bands[level_idx][time_idx]` = that percentile at that time.
    pub bands: Vec<Vec<f64>>,
    /// Step in minutes of the underlying series.
    pub step_minutes: i64,
}

impl PercentileBands {
    /// Computes bands across equally long series.
    ///
    /// # Errors
    /// - [`SeriesError::TooShort`] if `population` is empty or any series
    ///   is empty.
    /// - [`SeriesError::Misaligned`] if lengths or steps differ.
    pub fn across(population: &[&Series], levels: &[f64]) -> Result<Self, SeriesError> {
        let first = population.first().ok_or(SeriesError::TooShort(0))?;
        if first.is_empty() {
            return Err(SeriesError::TooShort(0));
        }
        if population
            .iter()
            .any(|s| s.len() != first.len() || s.step_minutes() != first.step_minutes())
        {
            return Err(SeriesError::Misaligned);
        }
        let mut bands = vec![Vec::with_capacity(first.len()); levels.len()];
        let mut column = Vec::with_capacity(population.len());
        let mut scratch = Vec::with_capacity(population.len());
        let mut vals = Vec::with_capacity(levels.len());
        for t in 0..first.len() {
            column.clear();
            // Gap slots (NaN) drop out of the column: the band at time t
            // is the percentile over the series that have a sample there.
            column.extend(
                population
                    .iter()
                    .map(|s| s.values()[t])
                    .filter(|v| v.is_finite()),
            );
            if column.is_empty() {
                return Err(SeriesError::TooShort(0));
            }
            percentiles_into(&column, levels, &mut scratch, &mut vals)
                .map_err(|_| SeriesError::Misaligned)?;
            for (band, &v) in bands.iter_mut().zip(&vals) {
                band.push(v);
            }
        }
        Ok(Self {
            levels: levels.to_vec(),
            bands,
            step_minutes: first.step_minutes(),
        })
    }

    /// The band for one level, if it was requested.
    #[must_use]
    pub fn band(&self, level: f64) -> Option<&[f64]> {
        self.levels
            .iter()
            .position(|&l| l == level)
            .map(|i| self.bands[i].as_slice())
    }

    /// Mean width between the highest and lowest requested band — a
    /// flatness measure: the paper observes public-cloud utilization bands
    /// are tighter/more stable than private-cloud ones.
    #[must_use]
    pub fn mean_spread(&self) -> f64 {
        if self.bands.len() < 2 || self.bands[0].is_empty() {
            return 0.0;
        }
        let lo = &self.bands[0];
        let hi = &self.bands[self.bands.len() - 1];
        lo.iter().zip(hi).map(|(a, b)| b - a).sum::<f64>() / lo.len() as f64
    }

    /// Temporal variability of the median band (its population standard
    /// deviation over time): near zero for a flat profile.
    #[must_use]
    pub fn median_band_std(&self) -> f64 {
        let Some(median) = self.band(50.0) else {
            return 0.0;
        };
        let mean = median.iter().sum::<f64>() / median.len() as f64;
        (median.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / median.len() as f64).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn day_sine(step: i64, days: usize, amp: f64, phase_minutes: f64) -> Series {
        let per_day = (MINUTES_PER_DAY / step) as usize;
        let values = (0..per_day * days)
            .map(|i| {
                let minute = i as f64 * step as f64;
                50.0 + amp
                    * (std::f64::consts::TAU * (minute - phase_minutes) / MINUTES_PER_DAY as f64)
                        .sin()
            })
            .collect();
        Series::new(0, step, values)
    }

    #[test]
    fn daily_profile_folds_days() {
        let s = day_sine(60, 7, 10.0, 0.0);
        let profile = daily_profile(&s).unwrap();
        assert_eq!(profile.len(), 24);
        // All days identical, so the profile equals one day's shape.
        for (i, &v) in profile.iter().enumerate() {
            assert!((v - s.values()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn daily_profile_requires_divisible_step() {
        let s = Series::new(0, 7, vec![1.0; 100]);
        assert!(daily_profile(&s).is_err());
        let empty = Series::new(0, 60, vec![]);
        assert!(daily_profile(&empty).is_err());
    }

    #[test]
    fn weekday_weekend_split() {
        // 7 days hourly: weekdays at 80, weekend at 20.
        let values: Vec<f64> = (0..168)
            .map(|h| if h / 24 >= 5 { 20.0 } else { 80.0 })
            .collect();
        let s = Series::new(0, 60, values);
        let (wd, we) = weekday_weekend_means(&s).unwrap();
        assert_eq!(wd, 80.0);
        assert_eq!(we, 20.0);
    }

    #[test]
    fn peak_minute_found() {
        // Sine peaking a quarter-day after the phase reference.
        let s = day_sine(60, 7, 10.0, 0.0);
        let peak = peak_minute_of_day(&s).unwrap();
        assert_eq!(peak, 6 * 60, "sine peaks at 06:00");
        let shifted = day_sine(60, 7, 10.0, 3.0 * 60.0);
        assert_eq!(peak_minute_of_day(&shifted).unwrap(), 9 * 60);
    }

    #[test]
    fn bands_across_population() {
        let population: Vec<Series> = (0..10)
            .map(|k| Series::new(0, 60, vec![k as f64; 24]))
            .collect();
        let refs: Vec<&Series> = population.iter().collect();
        let bands = PercentileBands::across(&refs, &[25.0, 50.0, 75.0]).unwrap();
        let median = bands.band(50.0).unwrap();
        assert!(median.iter().all(|&v| (v - 4.5).abs() < 1e-9));
        assert!(bands.band(99.0).is_none());
        assert!((bands.mean_spread() - 4.5).abs() < 1e-9);
        assert!(bands.median_band_std() < 1e-12);
    }

    #[test]
    fn bands_reject_misaligned_population() {
        let a = Series::new(0, 60, vec![1.0; 24]);
        let b = Series::new(0, 60, vec![1.0; 23]);
        assert!(PercentileBands::across(&[&a, &b], &[50.0]).is_err());
        assert!(PercentileBands::across(&[], &[50.0]).is_err());
        let c = Series::new(0, 30, vec![1.0; 24]);
        assert!(PercentileBands::across(&[&a, &c], &[50.0]).is_err());
    }

    #[test]
    fn profiles_skip_gap_samples() {
        let mut s = day_sine(60, 7, 10.0, 0.0);
        let clean_profile = daily_profile(&s).unwrap();
        let (clean_wd, clean_we) = weekday_weekend_means(&s).unwrap();
        // Punch out one full day; all days are identical so the folds
        // must not move.
        for v in &mut s.values_mut()[24..48] {
            *v = f64::NAN;
        }
        let gappy_profile = daily_profile(&s).unwrap();
        for (a, b) in clean_profile.iter().zip(&gappy_profile) {
            assert!((a - b).abs() < 1e-9);
        }
        let (wd, we) = weekday_weekend_means(&s).unwrap();
        assert!((wd - clean_wd).abs() < 1e-9);
        assert!((we - clean_we).abs() < 1e-9);
    }

    #[test]
    fn bands_skip_gap_columns_per_slot() {
        let mut population: Vec<Series> = (0..10)
            .map(|k| Series::new(0, 60, vec![k as f64; 4]))
            .collect();
        // At t=1 the top half of the population is missing.
        for s in population.iter_mut().skip(5) {
            s.values_mut()[1] = f64::NAN;
        }
        let refs: Vec<&Series> = population.iter().collect();
        let bands = PercentileBands::across(&refs, &[50.0]).unwrap();
        let median = bands.band(50.0).unwrap();
        assert!((median[0] - 4.5).abs() < 1e-9);
        assert!((median[1] - 2.0).abs() < 1e-9, "median over present half");
        // A slot missing everywhere is an error, not a silent zero.
        let mut all_gone = population;
        for s in &mut all_gone {
            s.values_mut()[2] = f64::NAN;
        }
        let refs: Vec<&Series> = all_gone.iter().collect();
        assert!(PercentileBands::across(&refs, &[50.0]).is_err());
    }

    #[test]
    fn flat_vs_varying_median_band() {
        // A population whose median moves over time has a larger
        // median-band std than a static one.
        let moving: Vec<Series> = (0..6).map(|_| day_sine(60, 1, 20.0, 0.0)).collect();
        let flat: Vec<Series> = (0..6)
            .map(|k| Series::new(0, 60, vec![10.0 + k as f64; 24]))
            .collect();
        let m_refs: Vec<&Series> = moving.iter().collect();
        let f_refs: Vec<&Series> = flat.iter().collect();
        let m = PercentileBands::across(&m_refs, &[50.0]).unwrap();
        let f = PercentileBands::across(&f_refs, &[50.0]).unwrap();
        assert!(m.median_band_std() > 5.0 * f.median_band_std());
    }
}
