//! Durable restart: run the paper's extraction pipeline into a
//! WAL-backed knowledge base, checkpoint it, keep serving writes, then
//! simulate a restart — the cold `open()` must reproduce the exact
//! pre-restart store (snapshot generation + WAL-tail replay) and serve
//! the same policy queries.
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("cloudscope-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Generate a small week and extract per-subscription knowledge
    // straight into the durable store: every batch is WAL-committed
    // before it lands in memory.
    let generated = generate(&GeneratorConfig::small(17));
    let classifier = PatternClassifier::default();
    let db = DurableKb::open(&dir)?;
    for cloud in CloudKind::BOTH {
        let knowledge = extract_cloud_knowledge(&generated.trace, cloud, &classifier, 4);
        db.feed(&knowledge)?;
    }

    // Checkpoint, then keep writing: the refreshed entries after the
    // snapshot live only in the WAL tail until the next checkpoint.
    db.snapshot()?;
    let refreshed: Vec<WorkloadKnowledge> = KbQuery::spot_candidates()
        .collect(db.kb())
        .into_iter()
        .take(8)
        .map(|mut k| {
            k.updated_at += SimDuration::from_minutes(5);
            k
        })
        .collect();
    db.feed(&refreshed)?;

    let before = db.kb().len();
    let spot_before = KbQuery::spot_candidates().count(db.kb());
    drop(db); // "crash": the only survivors are the files on disk

    let recovered = DurableKb::open(&dir)?;
    assert_eq!(recovered.kb().len(), before, "entry count survives restart");
    assert_eq!(
        KbQuery::spot_candidates().count(recovered.kb()),
        spot_before,
        "policy query results survive restart"
    );
    recovered
        .kb()
        .check_consistency()
        .expect("indexes consistent after recovery");

    let stats = recovered.recovery_stats();
    println!(
        "recovered {before} entries: generation {}, {} from the snapshot, \
         {} replayed from the WAL tail (torn tail: {}), {spot_before} spot candidates",
        stats.generation, stats.snapshot_entries, stats.replayed_entries, stats.torn_tail
    );
    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
