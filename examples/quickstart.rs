//! Quickstart: generate a synthetic private+public cloud week, run the
//! full characterization, and print the paper's four insight verdicts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A scaled-down platform so the example runs in seconds; use
    // `GeneratorConfig::default()` for the full-scale study.
    let config = GeneratorConfig::medium(2024);
    let generated = generate(&config);

    let stats = generated.trace.stats();
    println!(
        "generated one week: {} private VMs ({} subscriptions), {} public VMs ({} subscriptions)",
        stats.private_vms,
        stats.private_subscriptions,
        stats.public_vms,
        stats.public_subscriptions
    );
    println!(
        "allocation service: {} placements, {} failures, {} VMs dropped",
        generated.report.private_alloc.successes + generated.report.public_alloc.successes,
        generated.report.private_alloc.capacity_failures
            + generated.report.private_alloc.spreading_failures
            + generated.report.public_alloc.capacity_failures
            + generated.report.public_alloc.spreading_failures,
        generated.report.dropped_vms
    );

    let report = CharacterizationReport::analyze(&generated.trace, &ReportConfig::default())?;
    println!("\npaper insight verdicts:");
    for (holds, verdict) in report.insight_verdicts() {
        println!("  [{}] {verdict}", if holds { "ok" } else { "MISS" });
    }

    println!("\nheadline statistics (paper values in parentheses):");
    println!(
        "  shortest-lifetime bin: {:.0}% private vs {:.0}% public   (49% vs 81%)",
        100.0 * report.temporal.private_short_fraction,
        100.0 * report.temporal.public_short_fraction
    );
    println!(
        "  subscriptions per cluster: public = {:.1}x private        (~20x)",
        report.deployment.subscriptions_per_cluster_ratio
    );
    println!(
        "  node-level correlation median: {:.2} vs {:.2}             (0.55 vs 0.02)",
        report.node_correlation.0.median(),
        report.node_correlation.1.median()
    );
    Ok(())
}
