//! Property tests: the pattern classifier recovers the generating
//! archetype across randomly drawn service profiles — the ground-truth
//! validation the synthetic substrate makes possible.

use cloudscope_analysis::{PatternClassifier, UtilizationPattern};
use cloudscope_model::time::{SimTime, SAMPLES_PER_WEEK};
use cloudscope_timeseries::Series;
use cloudscope_tracegen::{generate_vm_series, PatternKind, ServiceUtilProfile};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn classify(profile: &ServiceUtilProfile, tz: i32, seed: u64) -> Option<UtilizationPattern> {
    let mut rng = StdRng::seed_from_u64(seed);
    let util = generate_vm_series(profile, tz, SimTime::ZERO, SAMPLES_PER_WEEK, &mut rng);
    let series = Series::new(0, 5, util.to_f64_vec());
    PatternClassifier::default().classify_series(&series)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn diurnal_profiles_classify_diurnal(
        seed in any::<u64>(),
        tz in -10i32..=2,
        agnostic in any::<bool>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = ServiceUtilProfile::sample(PatternKind::Diurnal, agnostic, &mut rng);
        prop_assert_eq!(
            classify(&profile, tz, seed ^ 1),
            Some(UtilizationPattern::Diurnal),
            "profile {:?}", profile
        );
    }

    #[test]
    fn stable_profiles_classify_stable(seed in any::<u64>(), tz in -10i32..=2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = ServiceUtilProfile::sample(PatternKind::Stable, false, &mut rng);
        prop_assert_eq!(classify(&profile, tz, seed ^ 1), Some(UtilizationPattern::Stable));
    }

    #[test]
    fn hourly_profiles_classify_hourly(seed in any::<u64>(), tz in -10i32..=2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = ServiceUtilProfile::sample(PatternKind::HourlyPeak, false, &mut rng);
        prop_assert_eq!(
            classify(&profile, tz, seed ^ 1),
            Some(UtilizationPattern::HourlyPeak),
            "profile {:?}", profile
        );
    }

    #[test]
    fn irregular_profiles_never_classify_periodic(seed in any::<u64>(), tz in -10i32..=2) {
        let mut rng = StdRng::seed_from_u64(seed);
        let profile = ServiceUtilProfile::sample(PatternKind::Irregular, false, &mut rng);
        let got = classify(&profile, tz, seed ^ 1);
        // Sparse spikes carry no period; depending on spike density the
        // series may read as stable (few spikes) or irregular, but never
        // as diurnal or hourly-peak.
        prop_assert!(
            matches!(
                got,
                Some(UtilizationPattern::Irregular) | Some(UtilizationPattern::Stable)
            ),
            "irregular profile classified {got:?}"
        );
    }
}
