//! # cloudscope-repro
//!
//! The figure-regeneration harness: one binary per evaluation artifact of
//! the paper (`fig1` … `fig7`, `pilot`, `oversub`), each printing the
//! plotted series as CSV plus a `SHAPE-CHECK` section comparing the
//! measured shape against the paper's reported values.
//!
//! Run e.g. `cargo run --release -p cloudscope-repro --bin fig3`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checks;

use crate::checks::CheckProfile;
use cloudscope::prelude::*;
use cloudscope::stats::Ecdf;
use std::path::{Path, PathBuf};

/// The trace scale the repro binaries run at, selected through the
/// `CLOUDSCOPE_TRACE_SCALE` environment variable (`full` is the
/// default; `medium` and `small` reuse the generator's scaled-down
/// configurations for faster smoke runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceScale {
    /// The paper-scale default trace.
    Full,
    /// `GeneratorConfig::medium`: ~quarter telemetry volume.
    Medium,
    /// `GeneratorConfig::small`: unit-test scale. A smoke scale only —
    /// population-level shape checks may miss on so few VMs.
    Small,
}

impl TraceScale {
    /// Reads `CLOUDSCOPE_TRACE_SCALE`, defaulting to [`TraceScale::Full`].
    ///
    /// # Errors
    /// Returns the offending value when it is not one of
    /// `full` / `medium` / `small`.
    pub fn from_env() -> Result<Self, String> {
        match std::env::var("CLOUDSCOPE_TRACE_SCALE") {
            Err(_) => Ok(Self::Full),
            Ok(v) => match v.as_str() {
                "" | "full" => Ok(Self::Full),
                "medium" => Ok(Self::Medium),
                "small" => Ok(Self::Small),
                _ => Err(v),
            },
        }
    }

    /// The generator configuration for this scale. Medium pins seed 99 —
    /// the configuration the tier-1 robustness gate validates all 26
    /// shape checks against — so the binaries at medium scale run the
    /// exact trace the medium check profile is calibrated to.
    #[must_use]
    pub fn generator_config(self) -> GeneratorConfig {
        match self {
            Self::Full => GeneratorConfig::default(),
            Self::Medium => GeneratorConfig::medium(99),
            Self::Small => GeneratorConfig::small(GeneratorConfig::default().seed),
        }
    }

    /// The check thresholds matched to this scale. The `small` trace has
    /// no dedicated profile; it borrows the relaxed `medium` margins.
    #[must_use]
    pub fn check_profile(self) -> CheckProfile {
        match self {
            Self::Full => CheckProfile::full(),
            Self::Medium | Self::Small => CheckProfile::medium(),
        }
    }
}

/// The scale selected by `CLOUDSCOPE_TRACE_SCALE`, exiting with a usage
/// message on an unknown value (the binaries must not silently run the
/// wrong profile).
#[must_use]
pub fn active_scale() -> TraceScale {
    TraceScale::from_env().unwrap_or_else(|bad| {
        eprintln!("error: CLOUDSCOPE_TRACE_SCALE={bad:?} (expected full, medium, or small)");
        std::process::exit(2);
    })
}

/// The [`CheckProfile`] matching [`active_scale`].
#[must_use]
pub fn active_profile() -> CheckProfile {
    active_scale().check_profile()
}

/// Generates the trace at [`active_scale`], timing it.
#[must_use]
pub fn default_trace() -> GeneratedTrace {
    let scale = active_scale();
    let t0 = std::time::Instant::now();
    let generated = generate(&scale.generator_config());
    let stats = generated.trace.stats();
    eprintln!(
        "# generated {:?} trace in {:?}: {} private vms, {} public vms, {} subscriptions",
        scale,
        t0.elapsed(),
        stats.private_vms,
        stats.public_vms,
        stats.private_subscriptions + stats.public_subscriptions
    );
    generated
}

/// Decoded-telemetry-chunk cache size for out-of-core runs, overridable
/// through `CLOUDSCOPE_STORE_CACHE`. The default 0 asks the store to
/// auto-size to one chunk per (region, day) lane — the working set of
/// an id-ordered sweep over the trace.
fn store_cache_chunks() -> usize {
    std::env::var("CLOUDSCOPE_STORE_CACHE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Common CLI options of the repro binaries: parse once at startup,
/// obtain the trace through [`MetricsOpt::load_trace`], and call
/// [`MetricsOpt::write`] right before the binary exits so the metrics
/// snapshot covers the whole run.
///
/// - `--metrics <path>`: write a metrics-registry JSON snapshot.
/// - `--trace-dir <dir>`: analyze a disk-resident trace store instead
///   of generating, streaming telemetry out-of-core.
/// - `--trace-out <dir>`: persist the trace as a store; without
///   `--trace-dir` the generator streams straight to disk and the
///   analysis then runs out-of-core from it.
#[derive(Debug, Default)]
pub struct MetricsOpt {
    path: Option<PathBuf>,
    trace_dir: Option<PathBuf>,
    trace_out: Option<PathBuf>,
}

impl MetricsOpt {
    /// Parses `--metrics <path>` (or `--metrics=<path>`) from the
    /// process arguments, exiting with a usage message when the flag is
    /// present without a path or an argument is unrecognized.
    #[must_use]
    pub fn from_args() -> Self {
        let (opt, extra) = Self::parse(std::env::args().skip(1));
        if let Some(arg) = extra.first() {
            eprintln!("error: unrecognized argument {arg:?} (expected --metrics <path>)");
            std::process::exit(2);
        }
        opt
    }

    /// Like [`MetricsOpt::from_args`], but returns the non-`--metrics`
    /// arguments instead of rejecting them (for binaries that take
    /// positional arguments of their own).
    #[must_use]
    pub fn from_args_with_positionals() -> (Self, Vec<String>) {
        Self::parse(std::env::args().skip(1))
    }

    fn parse(args: impl Iterator<Item = String>) -> (Self, Vec<String>) {
        let mut slots: [(&str, Option<PathBuf>); 3] = [
            ("--metrics", None),
            ("--trace-dir", None),
            ("--trace-out", None),
        ];
        let mut positionals = Vec::new();
        let mut args = args;
        'outer: while let Some(arg) = args.next() {
            for (flag, slot) in &mut slots {
                if arg == *flag {
                    match args.next() {
                        Some(p) => *slot = Some(PathBuf::from(p)),
                        None => {
                            eprintln!("error: {flag} requires a path");
                            std::process::exit(2);
                        }
                    }
                    continue 'outer;
                }
                if let Some(p) = arg.strip_prefix(&format!("{flag}=")) {
                    *slot = Some(PathBuf::from(p));
                    continue 'outer;
                }
            }
            positionals.push(arg);
        }
        let [(_, path), (_, trace_dir), (_, trace_out)] = slots;
        (
            Self {
                path,
                trace_dir,
                trace_out,
            },
            positionals,
        )
    }

    /// The `--trace-dir` store directory, when one was given — binaries
    /// whose analysis is metadata-only use it to push their region/day
    /// predicates into the chunk scan instead of loading the trace.
    #[must_use]
    pub fn trace_dir(&self) -> Option<&Path> {
        self.trace_dir.as_deref()
    }

    /// The `--trace-out` store directory, when one was given.
    #[must_use]
    pub fn trace_out(&self) -> Option<&Path> {
        self.trace_out.as_deref()
    }

    /// Produces the run's trace according to the trace flags:
    ///
    /// - `--trace-dir`: open that store and stream it out-of-core.
    /// - `--trace-out` alone: generate **straight to disk** at
    ///   [`active_scale`], then analyze out-of-core from the new store.
    /// - both: read from `--trace-dir`, persist a copy to `--trace-out`.
    /// - neither: the in-memory [`default_trace`].
    ///
    /// Exits non-zero with the store error on any I/O or validation
    /// failure — a damaged store must never silently degrade to a
    /// freshly generated trace.
    #[must_use]
    pub fn load_trace(&self) -> GeneratedTrace {
        let par = cloudscope::par::Parallelism::auto();
        let mode = cloudscope::store::TelemetryMode::OutOfCore {
            cache_chunks: store_cache_chunks(),
        };
        let fail = |what: &str, e: cloudscope::store::StoreError| -> ! {
            eprintln!("error: {what}: {e}");
            std::process::exit(2);
        };
        if let Some(dir) = &self.trace_dir {
            let t0 = std::time::Instant::now();
            let generated = cloudscope::tracegen::read_generated(dir, mode, &par)
                .unwrap_or_else(|e| fail(&format!("reading trace store {}", dir.display()), e));
            let cache = store_cache_chunks();
            eprintln!(
                "# streamed trace store {} in {:?} (telemetry out-of-core, cache {})",
                dir.display(),
                t0.elapsed(),
                if cache == 0 {
                    "auto-sized".to_string()
                } else {
                    format!("{cache} chunks")
                }
            );
            if let Some(out) = &self.trace_out {
                cloudscope::tracegen::write_generated(
                    &generated,
                    out,
                    cloudscope::store::WriteOptions::default(),
                    &par,
                )
                .unwrap_or_else(|e| fail(&format!("writing trace store {}", out.display()), e));
                eprintln!("# wrote trace store to {}", out.display());
            }
            return generated;
        }
        if let Some(out) = &self.trace_out {
            let scale = active_scale();
            let t0 = std::time::Instant::now();
            cloudscope::tracegen::generate_to_store(
                &scale.generator_config(),
                out,
                cloudscope::store::WriteOptions::default(),
                par,
            )
            .unwrap_or_else(|e| fail(&format!("writing trace store {}", out.display()), e));
            eprintln!(
                "# generated {:?} trace straight to store {} in {:?}",
                scale,
                out.display(),
                t0.elapsed()
            );
            return cloudscope::tracegen::read_generated(out, mode, &par)
                .unwrap_or_else(|e| fail(&format!("reading trace store {}", out.display()), e));
        }
        default_trace()
    }

    /// Writes the current registry snapshot as JSON to the requested
    /// path, if any; exits non-zero on I/O failure so scripted runs
    /// notice the missing artifact.
    pub fn write(&self) {
        let Some(path) = &self.path else { return };
        let json = cloudscope::obs::to_json(&cloudscope::obs_snapshot());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: writing metrics snapshot to {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("# wrote metrics snapshot to {}", path.display());
    }
}

/// Prints a CSV header followed by rows.
pub fn print_csv<const N: usize>(title: &str, header: [&str; N], rows: &[[f64; N]]) {
    println!("## {title}");
    println!("{}", header.join(","));
    for row in rows {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        println!("{}", cells.join(","));
    }
    println!();
}

/// Prints an ECDF as `(x, F)` rows on a quantile grid.
pub fn print_ecdf(title: &str, cdf: &Ecdf) {
    println!("## {title}");
    println!("x,cdf");
    for i in 0..=20 {
        let p = f64::from(i) / 20.0;
        let x = cdf.quantile(p);
        println!("{x:.4},{p:.2}");
    }
    println!();
}

/// Accumulates shape checks and renders a verdict table.
#[derive(Debug, Default)]
pub struct ShapeChecks {
    results: Vec<(bool, String)>,
}

impl ShapeChecks {
    /// Creates an empty check set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one check: `label` describes the paper's expectation,
    /// `detail` the measured values.
    pub fn check(&mut self, label: &str, holds: bool, detail: String) {
        cloudscope_obs::counter("repro.checks.recorded").inc();
        if !holds {
            cloudscope_obs::counter("repro.checks.failed").inc();
        }
        self.results.push((holds, format!("{label}: {detail}")));
    }

    /// Number of checks recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.results.len()
    }

    /// `true` if no check has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.results.is_empty()
    }

    /// `true` if every recorded check holds.
    #[must_use]
    pub fn all_hold(&self) -> bool {
        self.results.iter().all(|(h, _)| *h)
    }

    /// The rendered lines of checks that failed (empty if all hold).
    #[must_use]
    pub fn failures(&self) -> Vec<&str> {
        self.results
            .iter()
            .filter(|(h, _)| !h)
            .map(|(_, line)| line.as_str())
            .collect()
    }

    /// Every rendered check line with its verdict, in insertion order.
    pub fn lines(&self) -> impl Iterator<Item = (bool, &str)> {
        self.results.iter().map(|(h, line)| (*h, line.as_str()))
    }

    /// Prints the verdicts and returns `true` if all hold.
    pub fn finish(self, figure: &str) -> bool {
        println!("## SHAPE-CHECK {figure}");
        let mut all = true;
        for (holds, line) in &self.results {
            println!("[{}] {line}", if *holds { "ok" } else { "MISS" });
            all &= holds;
        }
        println!(
            "{}: {}/{} shape checks hold",
            figure,
            self.results.iter().filter(|(h, _)| *h).count(),
            self.results.len()
        );
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_checks_tally() {
        let mut checks = ShapeChecks::new();
        checks.check("a", true, "1 > 0".into());
        checks.check("b", false, "boom".into());
        assert!(!checks.finish("test"));
        let mut ok = ShapeChecks::new();
        ok.check("a", true, "fine".into());
        assert!(ok.finish("test"));
    }
}
