#!/usr/bin/env bash
# Pre-merge gate: formatting, lints, and the tier-1 build+test suite.
# Everything runs offline against the vendored dependency shims.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (debug: catches overflow/shift panics release wraps)"
cargo test -q --workspace

echo "==> cargo test -q --release"
cargo test -q --release --workspace

echo "==> OK: all checks passed"
