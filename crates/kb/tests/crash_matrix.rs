//! The crash-point matrix: simulate a process kill at every durability
//! boundary, at varying depths into an operation sequence, with and
//! without a prior snapshot — and assert that recovery reproduces
//! exactly the committed pre-crash state.

mod common;

use cloudscope_kb::{CrashPlan, CrashPoint, DurableKb, KnowledgeBase, PersistError};
use cloudscope_model::ids::SubscriptionId;
use common::{assert_kb_equal, entry, entry_at, TempDir};
use proptest::prelude::*;

/// Applies operation `i` of the scripted sequence to both the durable
/// store and an in-memory shadow. Returns `Err` when the armed crash
/// fires mid-operation.
fn apply_op(db: &DurableKb, shadow: &KnowledgeBase, i: u32) -> Result<(), PersistError> {
    match i % 4 {
        0 | 1 => {
            db.upsert(entry(i))?;
            shadow.upsert(entry(i));
        }
        2 => {
            let batch: Vec<_> = (0..3).map(|j| entry(100 + i * 3 + j)).collect();
            db.feed(&batch)?;
            shadow.feed(batch);
        }
        _ => {
            let victim = SubscriptionId::new(i.saturating_sub(3));
            db.remove(victim)?;
            shadow.remove(victim);
        }
    }
    Ok(())
}

/// The write-path matrix: crash at each write boundary, after each
/// prefix length of a scripted op sequence, with and without a prior
/// snapshot, recovering at a different shard count than the writer's.
#[test]
fn write_path_crash_matrix() {
    const OPS: u32 = 8;
    for point in CrashPoint::WRITE_PATH {
        for prefix in 0..OPS {
            for with_snapshot in [false, true] {
                let dir = TempDir::new("crash-write");
                let db = DurableKb::open_with_shards(dir.path(), Some(4)).unwrap();
                let shadow = KnowledgeBase::with_shards(1);

                for i in 0..prefix {
                    apply_op(&db, &shadow, i).unwrap();
                }
                if with_snapshot {
                    db.snapshot().unwrap();
                }

                // The crashing operation: committed iff the WAL append
                // completed before the kill.
                db.arm_crash(CrashPlan::at(point));
                let crashed = apply_op(&db, &shadow, prefix);
                assert!(crashed.is_err(), "{point:?} must kill the op");
                assert!(db.crashed());
                if !point.op_survives() {
                    // The shadow applied it, the durable store must not
                    // have: rebuild the shadow without the final op.
                    let rebuilt = KnowledgeBase::with_shards(1);
                    for i in 0..prefix {
                        apply_op_shadow_only(&rebuilt, i);
                    }
                    let recovered = DurableKb::open_with_shards(dir.path(), Some(7)).unwrap();
                    assert_kb_equal(
                        recovered.kb(),
                        &rebuilt,
                        &format!("{point:?} prefix {prefix} snapshot {with_snapshot}"),
                    );
                    if point == CrashPoint::MidWalRecord {
                        assert!(
                            recovered.recovery_stats().torn_tail,
                            "a mid-record kill leaves a torn tail"
                        );
                    }
                } else {
                    // AfterWalAppend: the record hit disk before the
                    // kill, so recovery must include the final op — the
                    // shadow never mirrored it (apply_op short-circuits
                    // on the error), so apply it now.
                    apply_op_shadow_only(&shadow, prefix);
                    let recovered = DurableKb::open_with_shards(dir.path(), Some(7)).unwrap();
                    assert_kb_equal(
                        recovered.kb(),
                        &shadow,
                        &format!("{point:?} prefix {prefix} snapshot {with_snapshot}"),
                    );
                }
            }
        }
    }
}

/// [`apply_op`] against the shadow only (to rebuild a committed-prefix
/// expectation without a durable store).
fn apply_op_shadow_only(shadow: &KnowledgeBase, i: u32) {
    match i % 4 {
        0 | 1 => {
            shadow.upsert(entry(i));
        }
        2 => {
            shadow.feed((0..3).map(|j| entry(100 + i * 3 + j)));
        }
        _ => {
            shadow.remove(SubscriptionId::new(i.saturating_sub(3)));
        }
    }
}

/// The snapshot-path matrix: a crash anywhere in `snapshot()` must lose
/// nothing — every write before it was WAL-committed, so recovery
/// reproduces the full pre-crash state no matter which boundary died.
#[test]
fn snapshot_path_crash_matrix() {
    const SHARDS: usize = 4;
    let mut plans: Vec<CrashPlan> = CrashPoint::SNAPSHOT_PATH
        .into_iter()
        .map(CrashPlan::at)
        .collect();
    // BetweenShardSnapshots at every depth: 1..SHARDS files renamed.
    for k in 2..=SHARDS as u32 {
        plans.push(CrashPlan::at_occurrence(
            CrashPoint::BetweenShardSnapshots,
            k,
        ));
    }
    // MidShardSnapshot on a later shard file too.
    plans.push(CrashPlan::at_occurrence(CrashPoint::MidShardSnapshot, 3));

    for plan in plans {
        for prior_snapshot in [false, true] {
            let dir = TempDir::new("crash-snap");
            let db = DurableKb::open_with_shards(dir.path(), Some(SHARDS)).unwrap();
            let shadow = KnowledgeBase::with_shards(1);
            for i in 0..20 {
                apply_op(&db, &shadow, i).unwrap();
            }
            if prior_snapshot {
                db.snapshot().unwrap();
                for i in 20..26 {
                    apply_op(&db, &shadow, i).unwrap();
                }
            }

            db.arm_crash(plan);
            let crashed = db.snapshot();
            assert!(crashed.is_err(), "{plan:?} must kill the snapshot");
            let recovered = DurableKb::open_with_shards(dir.path(), Some(3)).unwrap();
            assert_kb_equal(
                recovered.kb(),
                &shadow,
                &format!("{plan:?} prior_snapshot {prior_snapshot}"),
            );
            // The generation actually committed depends on where the
            // kill landed relative to the manifest rename (the commit
            // point): cleanup and WAL rotation run after it, so a kill
            // there still commits.
            let committed = recovered.recovery_stats().generation;
            let base = u64::from(prior_snapshot);
            if plan.point.snapshot_commits() {
                assert_eq!(committed, base + 1, "{plan:?}: rename landed, gen commits");
            } else {
                assert_eq!(committed, base, "{plan:?}: rename lost, old gen stays");
            }
        }
    }
}

/// Once a crash fires, the handle is dead: every operation errors with
/// `Crashed` and mutates nothing on disk or in memory.
#[test]
fn dead_handle_refuses_everything() {
    let dir = TempDir::new("crash-dead");
    let db = DurableKb::open(dir.path()).unwrap();
    db.feed(&(0..10).map(entry).collect::<Vec<_>>()).unwrap();
    db.arm_crash(CrashPlan::at(CrashPoint::BeforeWalAppend));
    assert!(db.upsert(entry(99)).is_err());

    let len_before = db.kb().len();
    assert!(matches!(db.upsert(entry(50)), Err(PersistError::Crashed)));
    assert!(matches!(db.feed(&[entry(51)]), Err(PersistError::Crashed)));
    assert!(matches!(
        db.remove(SubscriptionId::new(1)),
        Err(PersistError::Crashed)
    ));
    assert!(matches!(db.snapshot(), Err(PersistError::Crashed)));
    assert_eq!(db.kb().len(), len_before, "dead handle mutated memory");

    // And the dead handle left disk exactly at the committed state.
    let recovered = DurableKb::open(dir.path()).unwrap();
    let shadow = KnowledgeBase::new();
    shadow.feed((0..10).map(entry));
    assert_kb_equal(recovered.kb(), &shadow, "dead handle");
}

/// Crash, recover, keep writing, crash again, recover again: the WAL
/// truncation after a torn tail must leave a cleanly appendable log.
#[test]
fn recover_continue_recover_again() {
    let dir = TempDir::new("crash-cycle");
    let shadow = KnowledgeBase::with_shards(1);

    let db = DurableKb::open_with_shards(dir.path(), Some(4)).unwrap();
    for i in 0..6 {
        apply_op(&db, &shadow, i).unwrap();
    }
    db.arm_crash(CrashPlan::at(CrashPoint::MidWalRecord));
    assert!(db.upsert(entry(70)).is_err()); // lost: shadow skips it
    drop(db);

    // First recovery drops the torn tail, then keeps appending.
    let db = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    assert!(db.recovery_stats().torn_tail);
    assert_kb_equal(db.kb(), &shadow, "after first recovery");
    for i in 6..12 {
        apply_op(&db, &shadow, i).unwrap();
    }
    db.snapshot().unwrap();
    for i in 12..15 {
        apply_op(&db, &shadow, i).unwrap();
    }
    db.arm_crash(CrashPlan::at(CrashPoint::MidWalRecord));
    assert!(db.feed(&[entry(80), entry(81)]).is_err()); // lost again
    drop(db);

    let db = DurableKb::open_with_shards(dir.path(), Some(5)).unwrap();
    let stats = db.recovery_stats();
    assert!(stats.torn_tail);
    assert_eq!(stats.generation, 1);
    // Replay covers exactly the three post-snapshot ops.
    assert_eq!(stats.replayed_records, 3);
    assert_kb_equal(db.kb(), &shadow, "after second recovery");
}

/// A crash between arming and the manifest rename must leave the *old*
/// manifest fully intact — the previous generation keeps serving.
#[test]
fn failed_snapshot_preserves_previous_generation() {
    let dir = TempDir::new("crash-prevgen");
    let db = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    db.feed(&(0..30).map(entry).collect::<Vec<_>>()).unwrap();
    let first = db.snapshot().unwrap();
    assert_eq!(first.generation, 1);
    db.feed(&(30..40).map(entry).collect::<Vec<_>>()).unwrap();
    db.arm_crash(CrashPlan::at(CrashPoint::BeforeManifestRename));
    assert!(db.snapshot().is_err());
    drop(db);

    let recovered = DurableKb::open(dir.path()).unwrap();
    let stats = recovered.recovery_stats();
    assert_eq!(stats.generation, 1, "old generation stays committed");
    assert_eq!(stats.snapshot_entries, 30);
    let shadow = KnowledgeBase::new();
    shadow.feed((0..40).map(entry));
    assert_kb_equal(recovered.kb(), &shadow, "previous generation");
}

/// Injected transient append failures (the ENOSPC/EIO shape): the
/// failed append's partial bytes are rolled back, the handle stays
/// alive, and a retry lands after the valid prefix — recovery never
/// sees mid-file garbage from a failed-then-retried append.
#[test]
fn torn_append_faults_roll_back_and_retry_cleanly() {
    let dir = TempDir::new("torn-append");
    let db = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    let shadow = KnowledgeBase::with_shards(1);
    for i in 0..5 {
        apply_op(&db, &shadow, i).unwrap();
    }

    db.arm_torn_append_faults(2);
    assert!(matches!(db.upsert(entry(60)), Err(PersistError::Io { .. })));
    assert!(!db.crashed(), "a transient fault must not kill the handle");
    assert!(matches!(
        db.feed(&[entry(61)]),
        Err(PersistError::Io { .. })
    ));

    // Retries append after valid records, never after fault residue.
    db.upsert(entry(60)).unwrap();
    shadow.upsert(entry(60));
    db.feed(&[entry(61), entry(62)]).unwrap();
    shadow.feed([entry(61), entry(62)]);
    drop(db);

    let recovered = DurableKb::open_with_shards(dir.path(), Some(3)).unwrap();
    assert!(
        !recovered.recovery_stats().torn_tail,
        "rollback must leave no torn bytes behind"
    );
    assert_kb_equal(recovered.kb(), &shadow, "after torn-append retries");
}

/// Concurrent snapshot calls serialize: under parallel writers taking
/// overlapping snapshots, every generation commits a consistent file
/// set and recovery reproduces all acknowledged writes.
#[test]
fn concurrent_snapshots_never_lose_a_generation() {
    use std::sync::Arc;
    const WRITERS: u32 = 3;
    const OPS: u32 = 40;
    let dir = TempDir::new("snap-race");
    let db = Arc::new(DurableKb::open_with_shards(dir.path(), Some(4)).unwrap());

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for i in 0..OPS {
                    db.upsert(entry(w * 100 + i)).unwrap();
                    if i % 8 == 0 {
                        db.snapshot().unwrap();
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    // 5 snapshots per writer, serialized, plus this one: generations
    // are never skipped or double-assigned.
    let last = db.snapshot().unwrap();
    assert_eq!(last.generation, u64::from(WRITERS) * 5 + 1);
    drop(db);

    let recovered = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    let shadow = KnowledgeBase::with_shards(1);
    for w in 0..WRITERS {
        shadow.feed((0..OPS).map(|i| entry(w * 100 + i)));
    }
    assert_kb_equal(recovered.kb(), &shadow, "after concurrent snapshots");
}

/// Proptest: random interleavings of upserts, feeds, removes, snapshots
/// and one crash at a random point/occurrence — recovery always equals
/// the committed shadow.
#[derive(Debug, Clone)]
enum Op {
    Upsert(u32, i64),
    Feed(Vec<u32>),
    Remove(u32),
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..40, 0i64..100)
            .prop_map(|(id, at)| Op::Upsert(id, at))
            .boxed(),
        (0u32..40, 50i64..150)
            .prop_map(|(id, at)| Op::Upsert(id, at))
            .boxed(),
        proptest::collection::vec(0u32..40, 1..6)
            .prop_map(Op::Feed)
            .boxed(),
        (0u32..40).prop_map(Op::Remove).boxed(),
        Just(Op::Snapshot).boxed(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_interleavings_recover_committed_state(
        ops in proptest::collection::vec(op_strategy(), 1..25),
        point_idx in 0usize..CrashPoint::ALL.len(),
        occurrence in 1u32..4,
        writer_shards in 1usize..6,
        recover_shards in 1usize..6,
    ) {
        let point = CrashPoint::ALL[point_idx];
        let dir = TempDir::new("crash-prop");
        let db = DurableKb::open_with_shards(dir.path(), Some(writer_shards)).unwrap();
        let shadow = KnowledgeBase::with_shards(1);
        db.arm_crash(CrashPlan::at_occurrence(point, occurrence));

        for (step, op) in ops.iter().enumerate() {
            let minute = step as i64 + 1;
            // Apply to the durable store first; mirror into the shadow
            // only if the op survives (WAL append completed).
            let committed = match op {
                Op::Upsert(id, at) => db.upsert(entry_at(*id, *at)).map(|_| ()),
                Op::Feed(ids) => {
                    let batch: Vec<_> =
                        ids.iter().map(|id| entry_at(*id, minute)).collect();
                    db.feed(&batch).map(|_| ())
                }
                Op::Remove(id) => db.remove(SubscriptionId::new(*id)).map(|_| ()),
                Op::Snapshot => db.snapshot().map(|_| ()),
            };
            let survived = committed.is_ok()
                || (db.crashed() && point.op_survives());
            if survived {
                match op {
                    Op::Upsert(id, at) => { shadow.upsert(entry_at(*id, *at)); }
                    Op::Feed(ids) => {
                        shadow.feed(ids.iter().map(|id| entry_at(*id, minute)));
                    }
                    Op::Remove(id) => { shadow.remove(SubscriptionId::new(*id)); }
                    Op::Snapshot => {}
                }
            }
            if committed.is_err() {
                break;
            }
        }

        let recovered =
            DurableKb::open_with_shards(dir.path(), Some(recover_shards)).unwrap();
        assert_kb_equal(recovered.kb(), &shadow, &format!("{point:?} x{occurrence}"));
    }
}
