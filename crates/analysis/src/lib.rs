//! # cloudscope-analysis
//!
//! The characterization pipeline of the DSN'23 study *"How Different are
//! the Cloud Workloads?"* — the paper's primary contribution,
//! operationalized as a library. One module per evaluation artifact:
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`deployment`] | Fig 1: VMs/subscription CDFs, subscriptions/cluster box-plots |
//! | [`vmsize`] | Fig 2: cores × memory heatmaps, corner mass |
//! | [`temporal`] | Fig 3: lifetime CDFs, hourly counts/creations, per-region CV |
//! | [`spatial`] | Fig 4: regions/subscription CDFs, core-weighted variant |
//! | [`patterns`] | Fig 5: the 4-way utilization-pattern classifier and shares |
//! | [`utilization`] | Fig 6: weekly/daily percentile bands |
//! | [`correlation`] | Fig 7: node-level and cross-region Pearson, region-agnostic detection |
//! | [`report`] | everything at once, plus the four insight verdicts |
//!
//! ## Example
//! ```no_run
//! use cloudscope_analysis::report::{CharacterizationReport, ReportConfig};
//! use cloudscope_tracegen::{generate, GeneratorConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let generated = generate(&GeneratorConfig::default());
//! let report = CharacterizationReport::analyze(&generated.trace, &ReportConfig::default())?;
//! for (holds, verdict) in report.insight_verdicts() {
//!     println!("[{}] {verdict}", if holds { "ok" } else { "MISS" });
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod correlation;
pub mod coverage;
pub mod deployment;
pub mod error;
pub mod patterns;
pub mod report;
pub mod spatial;
pub mod temporal;
pub mod utilization;
pub mod vmsize;

#[cfg(test)]
pub(crate) mod test_support;

pub use compare::{CloudComparison, ComparedMetric};
pub use coverage::{filled_week_series, telemetry_slot_coverage, week_grid_values};
pub use error::AnalysisError;
pub use patterns::{
    pattern_shares, pattern_shares_from, PatternClassifier, PatternClassifierConfig, PatternShares,
    UtilizationPattern,
};
pub use report::{CharacterizationReport, ReportConfig};
