//! Autocorrelation function and helpers for validating candidate periods
//! on the ACF, the second stage of Vlachos-style period detection.
//!
//! Two implementations share one contract. [`autocorrelation_naive`] is
//! the O(n·max_lag) reference oracle, a direct transcription of the
//! biased estimator. [`autocorrelation_fft`] computes the same estimator
//! through the Wiener–Khinchin theorem — forward FFT, power spectrum,
//! inverse FFT — in O(m log m) for `m = next_pow2(n + max_lag)`, reusing
//! the thread-local plan cache of [`crate::fft`]. [`autocorrelation`]
//! dispatches: FFT for the large inputs the period detector feeds it,
//! naive where the direct sums are cheaper than a transform.

use crate::error::SeriesError;
use crate::fft::{next_power_of_two, with_plan, Complex};

/// Below this many multiply-adds (`n · (max_lag + 1)`), the direct sums
/// beat the FFT's fixed costs; measured crossover is a few thousand.
const NAIVE_WORK_CUTOFF: usize = 4096;

/// Sample autocorrelation at lags `0..=max_lag` of a signal.
///
/// Uses the biased estimator (normalizing by `n` at every lag), which is
/// what periodicity detection expects: it damps long-lag noise. Large
/// inputs are computed via FFT (Wiener–Khinchin), small ones directly;
/// both paths agree within `1e-9` in ACF units.
///
/// # Errors
/// - [`SeriesError::TooShort`] if the signal has fewer than 2 points or
///   `max_lag >= len`.
/// - [`SeriesError::ZeroVariance`] if the signal is constant.
///
/// # Examples
/// ```
/// # use cloudscope_timeseries::acf::autocorrelation;
/// # fn main() -> Result<(), cloudscope_timeseries::error::SeriesError> {
/// let acf = autocorrelation(&[1.0, -1.0, 1.0, -1.0, 1.0, -1.0], 2)?;
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[1] < 0.0); // alternating signal
/// assert!(acf[2] > 0.0);
/// # Ok(())
/// # }
/// ```
pub fn autocorrelation(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, SeriesError> {
    if signal.len().saturating_mul(max_lag + 1) <= NAIVE_WORK_CUTOFF {
        autocorrelation_naive(signal, max_lag)
    } else {
        autocorrelation_fft(signal, max_lag)
    }
}

/// Direct O(n·max_lag) biased-estimator autocorrelation: the reference
/// oracle the FFT path is verified against.
///
/// # Errors
/// Same contract as [`autocorrelation`].
pub fn autocorrelation_naive(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, SeriesError> {
    let (mean, var) = check_signal(signal, max_lag)?;
    let n = signal.len();
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 = signal[..n - lag]
            .iter()
            .zip(&signal[lag..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum();
        acf.push(cov / var);
    }
    Ok(acf)
}

/// FFT autocorrelation via the Wiener–Khinchin theorem: zero-pad the
/// mean-centred signal to `m = next_pow2(n + max_lag)` (enough room that
/// circular correlation equals linear correlation for every requested
/// lag), transform, take `|X_k|²`, transform back. The real parts of the
/// first `max_lag + 1` slots are the raw autocovariance sums, normalized
/// by the exact time-domain variance so the estimator semantics match
/// [`autocorrelation_naive`]. Lag 0 is pinned to exactly `1.0`, as the
/// naive quotient is by construction.
///
/// # Errors
/// Same contract as [`autocorrelation`].
pub fn autocorrelation_fft(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, SeriesError> {
    let (mean, var) = check_signal(signal, max_lag)?;
    let n = signal.len();
    let m = next_power_of_two(n + max_lag);
    with_plan(m, |plan, buf| {
        for (slot, &v) in buf.iter_mut().zip(signal) {
            *slot = Complex::new(v - mean, 0.0);
        }
        plan.forward(buf);
        for c in buf.iter_mut() {
            *c = Complex::new(c.norm_sq(), 0.0);
        }
        plan.inverse(buf);
        let mut acf = Vec::with_capacity(max_lag + 1);
        acf.push(1.0);
        acf.extend(buf[1..max_lag + 1].iter().map(|c| c.re / var));
        acf
    })
}

/// Mask-and-renormalize autocorrelation for gap-bearing signals (gaps are
/// NaN slots): mean and variance are taken over the present samples, each
/// lag's covariance is averaged over the jointly-present pairs, and the
/// per-lag quotient is rescaled by `(n - lag) / n` so the estimator
/// reduces *exactly* to the biased estimator of [`autocorrelation`] on a
/// dense signal. Lags with no jointly-present pair yield 0 (no evidence).
///
/// # Errors
/// - [`SeriesError::TooShort`] if fewer than 2 samples are present or
///   `max_lag >= len`.
/// - [`SeriesError::ZeroVariance`] if the present samples are constant.
pub fn autocorrelation_masked(signal: &[f64], max_lag: usize) -> Result<Vec<f64>, SeriesError> {
    let n = signal.len();
    if max_lag >= n {
        return Err(SeriesError::TooShort(n));
    }
    let mut mean = 0.0;
    let mut present = 0usize;
    for &v in signal {
        if v.is_finite() {
            mean += v;
            present += 1;
        }
    }
    if present < 2 {
        return Err(SeriesError::TooShort(present));
    }
    mean /= present as f64;
    let var: f64 = signal
        .iter()
        .filter(|v| v.is_finite())
        .map(|v| (v - mean) * (v - mean))
        .sum::<f64>()
        / present as f64;
    if var == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    acf.push(1.0);
    for lag in 1..=max_lag {
        let mut cov = 0.0;
        let mut pairs = 0usize;
        for (a, b) in signal[..n - lag].iter().zip(&signal[lag..]) {
            if a.is_finite() && b.is_finite() {
                cov += (a - mean) * (b - mean);
                pairs += 1;
            }
        }
        if pairs == 0 {
            acf.push(0.0);
        } else {
            let damping = (n - lag) as f64 / n as f64;
            acf.push(cov / pairs as f64 / var * damping);
        }
    }
    Ok(acf)
}

/// Shared validation: length/lag bounds and the mean/variance pass, with
/// error semantics identical across both implementations.
fn check_signal(signal: &[f64], max_lag: usize) -> Result<(f64, f64), SeriesError> {
    let n = signal.len();
    if n < 2 || max_lag >= n {
        return Err(SeriesError::TooShort(n));
    }
    let mean = signal.iter().sum::<f64>() / n as f64;
    let var: f64 = signal.iter().map(|v| (v - mean) * (v - mean)).sum();
    if var == 0.0 {
        return Err(SeriesError::ZeroVariance);
    }
    Ok((mean, var))
}

/// `true` if `lag` sits on a *hill* of the ACF: a local maximum whose
/// value exceeds `threshold`. Vlachos et al. validate periodogram
/// candidates by requiring them to land on an ACF hill rather than a
/// valley; this rejects spectral-leakage false positives.
#[must_use]
pub fn is_acf_hill(acf: &[f64], lag: usize, threshold: f64) -> bool {
    if lag == 0 || lag + 1 >= acf.len() {
        return false;
    }
    let v = acf[lag];
    // Look one step and a few steps out so flat-topped hills still count.
    let left = acf[lag - 1];
    let right = acf[lag + 1];
    v >= threshold && v >= left && v >= right
}

/// Searches the neighbourhood `lag ± radius` for the strongest ACF hill
/// and returns `(refined_lag, acf_value)` if one clears `threshold`.
#[must_use]
pub fn refine_on_acf(
    acf: &[f64],
    lag: usize,
    radius: usize,
    threshold: f64,
) -> Option<(usize, f64)> {
    let lo = lag.saturating_sub(radius).max(1);
    let hi = (lag + radius).min(acf.len().saturating_sub(2));
    let mut best: Option<(usize, f64)> = None;
    for cand in lo..=hi {
        if is_acf_hill(acf, cand, threshold) {
            match best {
                Some((_, v)) if v >= acf[cand] => {}
                _ => best = Some((cand, acf[cand])),
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(period: usize, cycles: usize) -> Vec<f64> {
        (0..period * cycles)
            .map(|i| (std::f64::consts::TAU * i as f64 / period as f64).sin())
            .collect()
    }

    #[test]
    fn lag_zero_is_one() {
        let acf = autocorrelation(&[1.0, 3.0, 2.0, 5.0], 2).unwrap();
        assert!((acf[0] - 1.0).abs() < 1e-12);
        assert_eq!(acf.len(), 3);
    }

    #[test]
    fn periodic_signal_peaks_at_period() {
        let signal = sine(24, 6);
        let acf = autocorrelation(&signal, 48).unwrap();
        // The ACF at the true period is a strong hill.
        assert!(acf[24] > 0.8, "acf[24] = {}", acf[24]);
        assert!(is_acf_hill(&acf, 24, 0.5));
        // Half-period is a valley for a sine.
        assert!(acf[12] < -0.5);
        assert!(!is_acf_hill(&acf, 12, 0.0));
    }

    #[test]
    fn white_noise_has_small_acf() {
        // Deterministic pseudo-noise via a splitmix64-style hash.
        fn hash_noise(i: u64) -> f64 {
            let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z = z ^ (z >> 31);
            (z % 10_000) as f64 / 10_000.0
        }
        let signal: Vec<f64> = (0..512).map(hash_noise).collect();
        let acf = autocorrelation(&signal, 32).unwrap();
        for &v in &acf[1..] {
            assert!(v.abs() < 0.2, "noise acf too large: {v}");
        }
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(
            autocorrelation(&[1.0], 0),
            Err(SeriesError::TooShort(1))
        ));
        assert!(matches!(
            autocorrelation(&[1.0, 2.0, 3.0], 3),
            Err(SeriesError::TooShort(3))
        ));
        assert!(matches!(
            autocorrelation(&[2.0, 2.0, 2.0], 1),
            Err(SeriesError::ZeroVariance)
        ));
    }

    #[test]
    fn both_implementations_share_error_semantics() {
        for f in [autocorrelation_naive, autocorrelation_fft] {
            assert!(matches!(f(&[1.0], 0), Err(SeriesError::TooShort(1))));
            assert!(matches!(
                f(&[1.0, 2.0, 3.0], 3),
                Err(SeriesError::TooShort(3))
            ));
            assert!(matches!(
                f(&[2.0, 2.0, 2.0], 1),
                Err(SeriesError::ZeroVariance)
            ));
        }
    }

    #[test]
    fn fft_matches_naive_on_periodic_signal() {
        let signal = sine(24, 12);
        let naive = autocorrelation_naive(&signal, signal.len() / 2).unwrap();
        let fft = autocorrelation_fft(&signal, signal.len() / 2).unwrap();
        assert_eq!(naive.len(), fft.len());
        for (lag, (a, b)) in naive.iter().zip(&fft).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {lag}: naive {a} vs fft {b}");
        }
        assert_eq!(fft[0], 1.0, "lag 0 is pinned exactly");
    }

    #[test]
    fn fft_matches_naive_on_awkward_lengths() {
        // Non-power-of-two lengths and max_lag = n - 1 (the tightest
        // padding case, m = next_pow2(2n - 1)).
        for n in [5usize, 37, 100, 333] {
            let signal: Vec<f64> = (0..n)
                .map(|i| (i as f64 * 0.83).sin() + 0.1 * i as f64)
                .collect();
            let naive = autocorrelation_naive(&signal, n - 1).unwrap();
            let fft = autocorrelation_fft(&signal, n - 1).unwrap();
            for (lag, (a, b)) in naive.iter().zip(&fft).enumerate() {
                assert!((a - b).abs() < 1e-9, "n {n} lag {lag}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn dispatcher_uses_fft_above_cutoff() {
        // Large enough that the dispatcher takes the FFT path; results
        // must stay within oracle tolerance either way.
        let signal = sine(288, 7);
        let via_dispatch = autocorrelation(&signal, signal.len() / 2).unwrap();
        let naive = autocorrelation_naive(&signal, signal.len() / 2).unwrap();
        for (a, b) in via_dispatch.iter().zip(&naive) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn refine_finds_nearby_hill() {
        let signal = sine(20, 8);
        let acf = autocorrelation(&signal, 60).unwrap();
        // Candidate slightly off the true period is refined to it.
        let (lag, v) = refine_on_acf(&acf, 18, 4, 0.3).expect("hill found");
        assert_eq!(lag, 20);
        assert!(v > 0.8);
        // No hill clears an impossible threshold.
        assert!(refine_on_acf(&acf, 18, 4, 0.999999).is_none());
    }

    #[test]
    fn hill_edges_are_not_hills() {
        let acf = vec![1.0, 0.9, 0.8];
        assert!(!is_acf_hill(&acf, 0, 0.0));
        assert!(!is_acf_hill(&acf, 2, 0.0));
    }

    #[test]
    fn masked_matches_dense_on_gap_free_signal() {
        let signal = sine(24, 8);
        let dense = autocorrelation(&signal, signal.len() / 2).unwrap();
        let masked = autocorrelation_masked(&signal, signal.len() / 2).unwrap();
        for (lag, (a, b)) in dense.iter().zip(&masked).enumerate() {
            assert!((a - b).abs() < 1e-9, "lag {lag}: dense {a} vs masked {b}");
        }
    }

    #[test]
    fn masked_recovers_period_under_loss() {
        // Knock out every 7th sample plus a contiguous blackout; the
        // period-24 hill must survive.
        let mut signal = sine(24, 8);
        for i in (0..signal.len()).step_by(7) {
            signal[i] = f64::NAN;
        }
        for v in &mut signal[60..90] {
            *v = f64::NAN;
        }
        let acf = autocorrelation_masked(&signal, 60).unwrap();
        assert!(acf[24] > 0.6, "acf[24] = {}", acf[24]);
        assert!(acf[12] < -0.3, "acf[12] = {}", acf[12]);
        assert_eq!(acf[0], 1.0);
    }

    #[test]
    fn masked_error_conditions() {
        assert!(matches!(
            autocorrelation_masked(&[f64::NAN, 1.0, f64::NAN], 1),
            Err(SeriesError::TooShort(1))
        ));
        assert!(matches!(
            autocorrelation_masked(&[1.0, 2.0], 2),
            Err(SeriesError::TooShort(2))
        ));
        assert!(matches!(
            autocorrelation_masked(&[3.0, f64::NAN, 3.0, 3.0], 1),
            Err(SeriesError::ZeroVariance)
        ));
    }
}
