//! Region balancing: detect region-agnostic workloads from telemetry,
//! then shift the best candidate from the hottest region to the coldest
//! (the paper's Canada pilot, as a library workflow).
//!
//! ```sh
//! cargo run --release --example region_balancing
//! ```

use cloudscope::analysis::correlation::region_agnostic_candidates;
use cloudscope::mgmt::rebalance::{recommend_shifts, region_capacity_stats, simulate_shift};
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&GeneratorConfig::small(11));
    let at = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);

    // 1. Detect region-agnostic subscriptions from utilization telemetry.
    let candidates = region_agnostic_candidates(&generated.trace, CloudKind::Private, "US", 0.8);
    println!(
        "{} region-agnostic private subscriptions detected",
        candidates.len()
    );

    // 2. Their services are the shiftable set.
    let shiftable: Vec<ServiceId> = generated
        .services
        .iter()
        .filter(|s| candidates.contains(&s.subscription))
        .map(|s| s.service)
        .collect();

    // 3. Ask the rebalancer for hot-to-cold recommendations.
    let recommendations =
        recommend_shifts(&generated.trace, CloudKind::Private, &shiftable, at, 0.02)?;
    println!("{} shift recommendations", recommendations.len());

    // 4. Replay the first recommendation and report the pilot metrics.
    if let Some(rec) = recommendations.first() {
        let outcome = simulate_shift(
            &generated.trace,
            CloudKind::Private,
            rec.service,
            rec.from,
            rec.to,
            at,
        )?;
        println!(
            "\nshifting {} ({} VMs, {} cores) {} -> {}:",
            rec.service, outcome.moved_vms, outcome.moved_cores, rec.from, rec.to
        );
        println!(
            "  source: utilization rate {:.1}% -> {:.1}%, underutilized {:.1}% -> {:.1}%",
            100.0 * outcome.source_before.core_utilization_rate(),
            100.0 * outcome.source_after.core_utilization_rate(),
            100.0 * outcome.source_before.underutilized_pct(),
            100.0 * outcome.source_after.underutilized_pct(),
        );
        println!(
            "  destination: utilization rate {:.1}% -> {:.1}%",
            100.0 * outcome.destination_before.core_utilization_rate(),
            100.0 * outcome.destination_after.core_utilization_rate(),
        );
    } else {
        // Regions already balanced below the target gap.
        for region in generated.trace.topology().regions() {
            let s = region_capacity_stats(&generated.trace, CloudKind::Private, region.id, at)?;
            println!(
                "  {}: {:.1}% allocated",
                region.name,
                100.0 * s.core_utilization_rate()
            );
        }
    }
    Ok(())
}
