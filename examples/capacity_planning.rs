//! Capacity planning: chance-constrained over-subscription of a pool of
//! stable workloads, plus allocation-failure risk scoring for a bursty
//! private-cloud deployment.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use cloudscope::mgmt::allocfail::{AllocFailureFeatures, AllocFailurePredictor};
use cloudscope::mgmt::oversub::{OversubMethod, OversubPlanner, VmDemand};
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&GeneratorConfig::small(7));

    // Pool the public cloud's full-week telemetry VMs.
    let pool: Vec<VmDemand> = generated
        .trace
        .vms_of(CloudKind::Public)
        .filter_map(|vm| {
            let util = generated.trace.util(vm.id)?;
            (util.start().minutes() == 0 && util.len() == 2016).then(|| VmDemand {
                cores: vm.size.cores(),
                utilization: util.to_f64_vec(),
            })
        })
        .take(200)
        .collect();
    println!(
        "over-subscribing a pool of {} public-cloud VMs:",
        pool.len()
    );
    println!("  epsilon  reserved/requested  improvement  violations");
    for eps in [0.001, 0.01, 0.05, 0.1] {
        let plan = OversubPlanner::new(eps, OversubMethod::EmpiricalQuantile)?.plan(&pool)?;
        println!(
            "  {eps:<7}  {:>6.0} / {:<8.0}  {:>9.0}%  {:>9.4}",
            plan.reserved_cores,
            plan.requested_cores,
            100.0 * plan.utilization_improvement,
            plan.violation_rate
        );
    }

    // Risk-score a burst deployment against clusters at varying load.
    let predictor = AllocFailurePredictor::default();
    println!("\nallocation-failure risk of a 500-core burst (bursty tenant, CV=3):");
    for allocation in [0.3, 0.6, 0.8, 0.9, 0.97] {
        let risk = predictor.failure_risk(&AllocFailureFeatures {
            allocation_ratio: allocation,
            request_fraction: 500.0 / 12_800.0,
            creation_cv: 3.0,
            spreading_pressure: 0.2,
        });
        let verdict = if risk > 0.5 { "REROUTE" } else { "place" };
        println!(
            "  cluster at {:>3.0}% allocated -> risk {risk:.3}  [{verdict}]",
            100.0 * allocation
        );
    }
    Ok(())
}
