//! The continuous extraction pipeline of Section V: worker threads pull
//! subscriptions off a channel, extract their workload knowledge from
//! telemetry, and feed the knowledge base concurrently — the shape a
//! production deployment would have, with the trace standing in for the
//! telemetry stream.

use crate::extract::extract_subscription_knowledge;
use crate::store::KnowledgeBase;
use cloudscope_analysis::PatternClassifier;
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::trace::Trace;
use crossbeam::channel;

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Subscriptions processed.
    pub processed: usize,
    /// Entries stored (subscriptions with at least one VM).
    pub stored: usize,
    /// Subscriptions skipped (no VMs).
    pub skipped: usize,
}

/// Runs the extraction pipeline over every subscription in the trace
/// with `workers` threads, feeding `kb`. Per-subscription extraction is
/// independent, so results are identical to a sequential sweep.
///
/// # Panics
/// Panics if `workers == 0`.
#[must_use]
pub fn run_extraction_pipeline(
    trace: &Trace,
    kb: &KnowledgeBase,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
    workers: usize,
) -> PipelineStats {
    assert!(workers > 0, "need at least one worker");
    let (job_tx, job_rx) = channel::unbounded::<SubscriptionId>();
    for sub in trace.subscriptions() {
        job_tx.send(sub.id).expect("receiver alive");
    }
    drop(job_tx);

    let mut stats = PipelineStats::default();
    crossbeam::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            handles.push(scope.spawn(move |_| {
                let mut local = PipelineStats::default();
                while let Ok(sub) = job_rx.recv() {
                    local.processed += 1;
                    match extract_subscription_knowledge(
                        trace,
                        sub,
                        classifier,
                        max_classified_vms_per_sub,
                        None,
                    ) {
                        Some(knowledge) => {
                            if kb.upsert(knowledge) {
                                local.stored += 1;
                            }
                        }
                        None => local.skipped += 1,
                    }
                }
                local
            }));
        }
        for handle in handles {
            let local = handle.join().expect("pipeline worker");
            stats.processed += local.processed;
            stats.stored += local.stored;
            stats.skipped += local.skipped;
        }
    })
    .expect("pipeline scope");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_tracegen::{generate, GeneratorConfig};

    #[test]
    fn pipeline_matches_sequential_extraction() {
        let g = generate(&GeneratorConfig::small(61));
        let classifier = PatternClassifier::default();

        let parallel_kb = KnowledgeBase::new();
        let stats = run_extraction_pipeline(&g.trace, &parallel_kb, &classifier, 2, 4);
        assert_eq!(stats.processed, g.trace.subscriptions().len());
        assert_eq!(stats.stored + stats.skipped, stats.processed);
        assert_eq!(parallel_kb.len(), stats.stored);

        let sequential_kb = KnowledgeBase::new();
        let seq_stats = run_extraction_pipeline(&g.trace, &sequential_kb, &classifier, 2, 1);
        assert_eq!(seq_stats.stored, stats.stored);
        // Entry-by-entry equality (region_agnostic is None in both).
        for sub in g.trace.subscriptions() {
            assert_eq!(parallel_kb.get(sub.id), sequential_kb.get(sub.id));
        }
    }

    #[test]
    fn repeated_runs_are_idempotent() {
        let g = generate(&GeneratorConfig::small(62));
        let classifier = PatternClassifier::default();
        let kb = KnowledgeBase::new();
        let first = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        let size = kb.len();
        // Same-timestamp refresh: entries overwrite, count stays.
        let second = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        assert_eq!(kb.len(), size);
        assert_eq!(first.processed, second.processed);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let g = generate(&GeneratorConfig::small(63));
        let kb = KnowledgeBase::new();
        let _ = run_extraction_pipeline(&g.trace, &kb, &PatternClassifier::default(), 2, 0);
    }
}
