//! The discrete-event driver: a trace replayed as a live telemetry
//! stream against the ingestion service.

use crate::ingestor::{IngestConfig, Ingestor};
use crate::publish::publish_closed_windows;
use crate::session::IngestSession;
use cloudscope_analysis::PatternClassifier;
use cloudscope_faults::{corrupt_wire_samples, FaultPlan, FaultReport, WireSample};
use cloudscope_kb::{KbStore, PipelineStats, RetryPolicy};
use cloudscope_model::prelude::*;
use cloudscope_model::time::{MINUTES_PER_HOUR, MINUTES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_sim::rng::RngFactory;
use cloudscope_sim::Simulation;
use std::collections::HashMap;

/// How many VMs' classification work one publish batch may trigger —
/// the same per-subscription cap the batch extraction pipeline takes.
const MAX_CLASSIFIED_VMS_PER_SUB: usize = 4;

/// Events of the ingestion simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngestEvent {
    /// Delivery of one VM's next wire sample (position `index` of its
    /// corrupted stream, delivered at the monitor cadence).
    Deliver {
        /// The reporting VM.
        vm: VmId,
        /// Position in the VM's wire stream.
        index: u32,
    },
    /// Periodic watermark advance: seals ripe slots, closes windows the
    /// watermark crossed, publishes the refreshed knowledge.
    WatermarkTick,
}

/// The result of one driven ingestion run.
#[derive(Debug)]
pub struct DriveOutcome {
    /// Frozen end state (a [`TelemetrySource`] over the streamed data).
    ///
    /// [`TelemetrySource`]: cloudscope_model::trace::TelemetrySource
    pub session: IngestSession,
    /// Corruption ledger of the wire streams (what the fault plan did).
    pub fault_report: FaultReport,
    /// KB publication ledger (batches, retries, failures).
    pub pipeline_stats: PipelineStats,
    /// Discrete events processed by the simulation.
    pub events_processed: u64,
}

/// Replays `trace`'s telemetry as a live stream through the ingestion
/// service, under the discrete-event clock:
///
/// - Each VM's series is exploded into wire samples and corrupted under
///   `plan` (same per-VM seeded streams as
///   [`cloudscope_faults::corrupt_trace`], so the stream *content* is
///   byte-comparable to batch corruption). Corruption shuffles content,
///   not cadence: stream position `j` is delivered at the VM's series
///   start plus `j` sample intervals, which is how a reordered sample
///   actually arrives late.
/// - An hourly watermark tick seals ripe slots, closes any window the
///   watermark crossed (re-running Figure 5 classification per VM), and
///   publishes the refreshed subscription knowledge into `store`
///   through the batched feed + retry path.
/// - After the stream drains past the final watermark, a catch-up
///   drain closes whatever remains and the state freezes into an
///   [`IngestSession`].
///
/// With [`FaultPlan::clean`] the session's series and classifications
/// are byte-identical to batch ingestion of the same trace; under
/// faults, any divergence from the batch-corrupted trace is confined to
/// VMs named by [`IngestSession::had_drops`].
pub fn drive_ingest<S: KbStore + ?Sized>(
    trace: &Trace,
    plan: &FaultPlan,
    config: &IngestConfig,
    classifier: &PatternClassifier,
    store: &S,
) -> DriveOutcome {
    let _run = cloudscope_obs::span("ingest.drive");
    let factory = RngFactory::new(plan.seed).child("faults");
    let mut fault_report = FaultReport::default();
    let mut streams: HashMap<VmId, (i64, Vec<WireSample>)> = HashMap::new();
    let mut sim: Simulation<IngestEvent> = Simulation::new();
    for vm in trace.vms() {
        let Some(util) = trace.util(vm.id) else {
            continue;
        };
        fault_report.vms += 1;
        let mut rng = factory.indexed_stream("vm", vm.id.index());
        let wire = corrupt_wire_samples(&util, vm.region, plan, &mut rng, &mut fault_report);
        if wire.is_empty() {
            continue;
        }
        let start = util.start().minutes();
        sim.schedule(
            SimTime::from_minutes(start),
            IngestEvent::Deliver {
                vm: vm.id,
                index: 0,
            },
        );
        streams.insert(vm.id, (start, wire));
    }

    // The run must outlast the final watermark tick that seals the last
    // week slot: watermark = now - delay reaches the week end one delay
    // later, and ticks land hourly after that.
    let end_minute = MINUTES_PER_WEEK + config.watermark_delay_minutes + MINUTES_PER_HOUR;
    sim.schedule(
        SimTime::from_minutes(MINUTES_PER_HOUR),
        IngestEvent::WatermarkTick,
    );

    let mut ingestor = Ingestor::new(*config, *classifier);
    let mut pipeline_stats = PipelineStats::default();
    let retry = RetryPolicy::default();
    let events_processed = sim.run(
        SimTime::from_minutes(end_minute + 1),
        |scheduler, time, event| match event {
            IngestEvent::Deliver { vm, index } => {
                let (_, wire) = &streams[&vm];
                ingestor.offer(vm, wire[index as usize]);
                if (index as usize) + 1 < wire.len() {
                    scheduler.schedule(
                        time + SimDuration::from_minutes(SAMPLE_INTERVAL_MINUTES),
                        IngestEvent::Deliver {
                            vm,
                            index: index + 1,
                        },
                    );
                }
            }
            IngestEvent::WatermarkTick => {
                let closes = ingestor.advance_watermark(time);
                publish_closed_windows(
                    trace,
                    &ingestor,
                    &closes,
                    store,
                    classifier,
                    MAX_CLASSIFIED_VMS_PER_SUB,
                    &retry,
                    &mut pipeline_stats,
                );
                if time.minutes() + MINUTES_PER_HOUR <= end_minute {
                    scheduler.schedule(
                        time + SimDuration::from_minutes(MINUTES_PER_HOUR),
                        IngestEvent::WatermarkTick,
                    );
                }
            }
        },
    );

    let final_closes = ingestor.drain(SimTime::from_minutes(end_minute));
    publish_closed_windows(
        trace,
        &ingestor,
        &final_closes,
        store,
        classifier,
        MAX_CLASSIFIED_VMS_PER_SUB,
        &retry,
        &mut pipeline_stats,
    );
    fault_report.flush_metrics();
    DriveOutcome {
        session: ingestor.finish(),
        fault_report,
        pipeline_stats,
        events_processed,
    }
}
