//! The headline ingest gate, on the medium trace: a clean stream's
//! classifications converge to the batch classifier output *exactly*,
//! and under the PR 2 standard fault plan the divergence is bounded
//! and fully accounted for by reported drops.

use cloudscope_analysis::PatternClassifier;
use cloudscope_faults::{corrupt_trace, FaultPlan};
use cloudscope_ingest::{drive_ingest, IngestConfig};
use cloudscope_kb::{extract_subscription_knowledge, KnowledgeBase};
use cloudscope_model::trace::TelemetrySource;
use cloudscope_tracegen::{generate, GeneratedTrace, GeneratorConfig};
use std::sync::OnceLock;

/// The per-subscription classification cap `drive_ingest` publishes
/// with (mirrors the batch pipeline's default test setting).
const MAX_CLASSIFIED: usize = 4;

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(99)))
}

#[test]
fn clean_medium_stream_matches_batch_golden() {
    let g = generated();
    let classifier = PatternClassifier::default();
    let kb = KnowledgeBase::new();
    let outcome = drive_ingest(
        &g.trace,
        &FaultPlan::clean(99),
        &IngestConfig::default(),
        &classifier,
        &kb,
    );
    let session = &outcome.session;
    let report = session.report();

    // Clean accounting before anything else: a single unexplained drop
    // voids the convergence claim.
    assert_eq!(report.dropped_late, 0);
    assert_eq!(report.rejected_invalid, 0);
    assert_eq!(report.out_of_week, 0);
    assert_eq!(report.duplicates_collapsed, 0);
    assert_eq!(report.samples_offered, report.samples_applied);

    // Golden: streamed series and classifications are byte-identical
    // to the batch pipeline over every VM of the medium trace.
    let mut classified = 0usize;
    for vm in g.trace.vms() {
        assert_eq!(session.load(vm.id), g.trace.util(vm.id), "vm {}", vm.id);
        let batch = classifier.classify_vm(&g.trace, vm.id);
        assert_eq!(session.pattern(vm.id), batch, "vm {}", vm.id);
        classified += usize::from(batch.is_some());
    }
    assert!(classified > 100, "medium trace classifies many VMs");

    // Golden: every published KB entry equals the batch extraction.
    let mut streamed_subs = 0usize;
    for sub in g.trace.subscriptions() {
        let has_signal = g
            .trace
            .vms_of_subscription(sub.id)
            .iter()
            .any(|&vm| g.trace.has_util(vm));
        if !has_signal {
            assert!(kb.get(sub.id).is_none(), "no-signal sub {}", sub.id);
            continue;
        }
        streamed_subs += 1;
        let batch =
            extract_subscription_knowledge(&g.trace, sub.id, &classifier, MAX_CLASSIFIED, None);
        assert_eq!(kb.get(sub.id), batch, "subscription {}", sub.id);
    }
    assert!(streamed_subs > 0);
    assert_eq!(kb.len(), streamed_subs);
}

#[test]
fn faulted_medium_stream_divergence_is_bounded_and_accounted() {
    let g = generated();
    let plan = FaultPlan::standard(2024);
    let classifier = PatternClassifier::default();
    let outcome = drive_ingest(
        &g.trace,
        &plan,
        &IngestConfig::default(),
        &classifier,
        &KnowledgeBase::new(),
    );
    let session = &outcome.session;
    let report = session.report();

    // Same per-VM seeded streams as batch corruption: the wire ledgers
    // must agree exactly.
    let (corrupted, batch_report) = corrupt_trace(&g.trace, &plan);
    assert_eq!(outcome.fault_report.samples_in, batch_report.samples_in);
    assert_eq!(outcome.fault_report.dropped, batch_report.dropped);
    assert_eq!(outcome.fault_report.duplicated, batch_report.duplicated);
    assert_eq!(outcome.fault_report.reordered, batch_report.reordered);
    assert_eq!(outcome.fault_report.invalidated, batch_report.invalidated);

    // Exhaustive offer accounting.
    assert_eq!(
        report.samples_offered,
        report.samples_applied + report.rejected_invalid + report.out_of_week + report.dropped_late
    );

    // Bounded divergence: every VM outside the reported drop set is
    // byte-identical to batch ingestion of the corrupted wire streams.
    let mut divergent = 0usize;
    for vm in g.trace.vms() {
        if session.had_drops(vm.id) {
            divergent += 1;
            continue;
        }
        assert_eq!(session.load(vm.id), corrupted.util(vm.id), "vm {}", vm.id);
        assert_eq!(
            session.pattern(vm.id),
            classifier.classify_vm(&corrupted, vm.id),
            "vm {}",
            vm.id
        );
    }
    assert_eq!(divergent, report.vms_with_drops);
    assert!(
        report.vms_with_drops * 10 <= report.vms,
        "late drops must stay rare: {} of {}",
        report.vms_with_drops,
        report.vms
    );
}
