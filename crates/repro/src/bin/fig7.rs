//! Figure 7: node-level and cross-region utilization correlation, and
//! the ServiceX region-alignment case study.

use cloudscope::analysis::correlation::{
    node_vm_correlation_cdf, region_pair_correlation_cdf, service_region_daily_profiles,
};
use cloudscope::prelude::*;
use cloudscope_repro::checks::fig7_checks;
use cloudscope_repro::{print_ecdf, MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let node_private =
        node_vm_correlation_cdf(&generated.trace, CloudKind::Private, 1500).expect("7a private");
    let node_public =
        node_vm_correlation_cdf(&generated.trace, CloudKind::Public, 1500).expect("7a public");
    print_ecdf("Fig 7(a) private: VM-node correlation", &node_private);
    print_ecdf("Fig 7(a) public: VM-node correlation", &node_public);

    let region_private = region_pair_correlation_cdf(&generated.trace, CloudKind::Private, "US")
        .expect("7b private");
    let region_public =
        region_pair_correlation_cdf(&generated.trace, CloudKind::Public, "US").expect("7b public");
    print_ecdf(
        "Fig 7(b) private: cross-region correlation",
        &region_private,
    );
    print_ecdf("Fig 7(b) public: cross-region correlation", &region_public);

    let flagship = generated.flagship_service().expect("flagship ServiceX");
    println!(
        "## Fig 7(c): ServiceX ({}) average CPU by region (daily, UTC hours)",
        flagship.service
    );
    let profiles =
        service_region_daily_profiles(&generated.trace, flagship.service).expect("profiles");
    print!("hour");
    for (region, _) in &profiles {
        print!(",{region}");
    }
    println!();
    for h in 0..24 {
        print!("{h}");
        for (_, profile) in &profiles {
            print!(",{:.1}", profile[h]);
        }
        println!();
    }
    println!();

    let alignment = cloudscope::analysis::correlation::service_region_alignment(
        &generated.trace,
        flagship.service,
    )
    .expect("alignment");
    let mut checks = ShapeChecks::new();
    fig7_checks(
        &(node_private, node_public),
        &(region_private, region_public),
        alignment,
        &cloudscope_repro::active_profile(),
        &mut checks,
    );
    let ok = checks.finish("fig7");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
