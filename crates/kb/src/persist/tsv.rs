//! Human-readable TSV export/import of the knowledge base. The binary
//! WAL + snapshot layer ([`DurableKb`](super::DurableKb)) is the real
//! durability path; TSV stays as the greppable interchange format.
//!
//! Floats are written with Rust's shortest round-trip `Display`, so a
//! TSV round trip is value-exact (not bit-exact: `-0.0` prints as `-0`
//! and reparses equal). Every read error carries the 1-based line
//! number of the offending row.

use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use crate::query::KbQuery;
use crate::store::KnowledgeBase;
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::subscription::CloudKind;
use cloudscope_model::time::SimTime;
use std::io::{BufRead, Write};

/// Snapshot header (also the format version marker).
pub const HEADER: &str = "#cloudscope-kb-v1\tsubscription\tcloud\tpattern\tlifetime\tmean_util\tp95_util\tutil_cv\tregions\tregion_agnostic\tvm_count\tcores\tupdated_min";

/// Writes a TSV snapshot of every entry.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_snapshot<W: Write>(kb: &KnowledgeBase, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{HEADER}")?;
    // Non-cloning walk: the fold streams borrowed entries straight into
    // the writer, short-circuiting further writes after the first error.
    KbQuery::all().fold(kb, Ok(()), |res: std::io::Result<()>, k| {
        res.and_then(|()| {
            writeln!(
                writer,
                "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
                k.subscription.index(),
                k.cloud,
                k.pattern.map_or("-".to_owned(), |p| p.to_string()),
                lifetime_tag(k.lifetime),
                k.mean_util,
                k.p95_util,
                k.util_cv,
                k.regions,
                k.region_agnostic
                    .map_or("-", |b| if b { "yes" } else { "no" }),
                k.vm_count,
                k.cores,
                k.updated_at.minutes(),
            )
        })
    })
}

fn lifetime_tag(class: LifetimeClass) -> &'static str {
    match class {
        LifetimeClass::MostlyShort => "short",
        LifetimeClass::Mixed => "mixed",
        LifetimeClass::MostlyLong => "long",
    }
}

/// Reads a snapshot back, feeding every entry into `kb`. Returns how
/// many entries were stored (stale entries are skipped by the store's
/// freshness rule).
///
/// # Errors
/// Returns a descriptive error string for malformed input, prefixed
/// with the 1-based line number of the offending row (the header is
/// line 1); I/O errors are folded into the same error type.
pub fn read_snapshot<R: BufRead>(kb: &KnowledgeBase, reader: R) -> Result<usize, String> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| "line 1: empty snapshot (missing header)".to_owned())?
        .map_err(|e| format!("line 1: io error: {e}"))?;
    if header != HEADER {
        return Err(format!("line 1: unexpected snapshot header: {header}"));
    }
    let mut stored = 0;
    for (i, line) in lines.enumerate() {
        // The header was line 1, so data row i (0-based) is line i + 2.
        let line_no = i + 2;
        let line = line.map_err(|e| format!("line {line_no}: io error: {e}"))?;
        if line.is_empty() {
            continue;
        }
        let row = parse_row(&line).map_err(|e| format!("line {line_no}: {e}"))?;
        if kb.upsert(row) {
            stored += 1;
        }
    }
    Ok(stored)
}

fn parse_row(line: &str) -> Result<WorkloadKnowledge, String> {
    let bad = |what: &str| format!("bad snapshot row ({what}): {line}");
    let fields: Vec<&str> = line.split('\t').collect();
    if fields.len() != 12 {
        return Err(bad("field count"));
    }
    let pattern = match fields[2] {
        "-" => None,
        "diurnal" => Some(UtilizationPattern::Diurnal),
        "stable" => Some(UtilizationPattern::Stable),
        "irregular" => Some(UtilizationPattern::Irregular),
        "hourly-peak" => Some(UtilizationPattern::HourlyPeak),
        _ => return Err(bad("pattern")),
    };
    Ok(WorkloadKnowledge {
        subscription: SubscriptionId::new(fields[0].parse().map_err(|_| bad("subscription"))?),
        cloud: match fields[1] {
            "private" => CloudKind::Private,
            "public" => CloudKind::Public,
            _ => return Err(bad("cloud")),
        },
        pattern,
        lifetime: match fields[3] {
            "short" => LifetimeClass::MostlyShort,
            "mixed" => LifetimeClass::Mixed,
            "long" => LifetimeClass::MostlyLong,
            _ => return Err(bad("lifetime")),
        },
        mean_util: fields[4].parse().map_err(|_| bad("mean_util"))?,
        p95_util: fields[5].parse().map_err(|_| bad("p95_util"))?,
        util_cv: fields[6].parse().map_err(|_| bad("util_cv"))?,
        regions: fields[7].parse().map_err(|_| bad("regions"))?,
        region_agnostic: match fields[8] {
            "-" => None,
            "yes" => Some(true),
            "no" => Some(false),
            _ => return Err(bad("region_agnostic")),
        },
        vm_count: fields[9].parse().map_err(|_| bad("vm_count"))?,
        cores: fields[10].parse().map_err(|_| bad("cores"))?,
        updated_at: SimTime::from_minutes(fields[11].parse().map_err(|_| bad("updated"))?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        id: u32,
        pattern: Option<UtilizationPattern>,
        agnostic: Option<bool>,
    ) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud: CloudKind::Private,
            pattern,
            lifetime: LifetimeClass::Mixed,
            mean_util: 12.345_678_901_234_567,
            p95_util: 45.5,
            util_cv: 0.123_456_789_012_345_68,
            regions: 3,
            region_agnostic: agnostic,
            vm_count: 42,
            cores: 168,
            updated_at: SimTime::from_minutes(777),
        }
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let kb = KnowledgeBase::new();
        kb.upsert(entry(0, Some(UtilizationPattern::Diurnal), Some(true)));
        kb.upsert(entry(1, None, None));
        kb.upsert(entry(2, Some(UtilizationPattern::HourlyPeak), Some(false)));
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();

        let restored = KnowledgeBase::new();
        let stored = read_snapshot(&restored, buf.as_slice()).unwrap();
        assert_eq!(stored, 3);
        for id in 0..3 {
            let orig = kb.get(SubscriptionId::new(id)).unwrap();
            let back = restored.get(SubscriptionId::new(id)).unwrap();
            // Whole-struct equality: shortest-roundtrip float formatting
            // makes the TSV trip lossless, not approximately close.
            assert_eq!(orig, back);
        }
        restored.check_consistency().unwrap();
    }

    #[test]
    fn extreme_floats_roundtrip_exactly() {
        let kb = KnowledgeBase::new();
        let mut k = entry(0, None, None);
        k.mean_util = f64::MIN_POSITIVE;
        k.p95_util = 1.0e300;
        k.util_cv = 1.0 / 3.0;
        kb.upsert(k.clone());
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();
        let restored = KnowledgeBase::new();
        read_snapshot(&restored, buf.as_slice()).unwrap();
        assert_eq!(restored.get(SubscriptionId::new(0)).unwrap(), k);
    }

    #[test]
    fn restore_respects_freshness() {
        let kb = KnowledgeBase::new();
        kb.upsert(entry(0, None, None));
        let mut buf = Vec::new();
        write_snapshot(&kb, &mut buf).unwrap();

        // A target KB already holding a *newer* entry keeps it.
        let target = KnowledgeBase::new();
        let mut newer = entry(0, Some(UtilizationPattern::Stable), None);
        newer.updated_at = SimTime::from_minutes(9999);
        target.upsert(newer);
        let stored = read_snapshot(&target, buf.as_slice()).unwrap();
        assert_eq!(stored, 0);
        assert_eq!(
            target.get(SubscriptionId::new(0)).unwrap().pattern,
            Some(UtilizationPattern::Stable)
        );
    }

    #[test]
    fn malformed_snapshots_rejected() {
        let kb = KnowledgeBase::new();
        assert!(read_snapshot(&kb, "".as_bytes()).is_err());
        assert!(read_snapshot(&kb, "wrong-header\n".as_bytes()).is_err());
        let bad_row = format!("{HEADER}\n1\tprivate\tnope\tshort\t1\t1\t1\t1\t-\t1\t1\t0");
        assert!(read_snapshot(&kb, bad_row.as_bytes()).is_err());
    }

    #[test]
    fn errors_carry_the_offending_line_number() {
        let kb = KnowledgeBase::new();

        // Header defects are line 1.
        let err = read_snapshot(&kb, "wrong-header\n".as_bytes()).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
        let err = read_snapshot(&kb, "".as_bytes()).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");

        // Two good rows, then a bad pattern on the file's 4th line.
        let good_kb = KnowledgeBase::new();
        good_kb.upsert(entry(1, None, None));
        good_kb.upsert(entry(2, None, None));
        let mut buf = Vec::new();
        write_snapshot(&good_kb, &mut buf).unwrap();
        buf.extend_from_slice(b"9\tprivate\tnope\tshort\t1\t1\t1\t1\t-\t1\t1\t0\n");
        let err = read_snapshot(&kb, buf.as_slice()).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        assert!(err.contains("pattern"), "{err}");

        // Blank lines still count toward line numbers: header, row,
        // blank, bad row => the defect is on line 4.
        let one_kb = KnowledgeBase::new();
        one_kb.upsert(entry(1, None, None));
        let mut buf = Vec::new();
        write_snapshot(&one_kb, &mut buf).unwrap();
        buf.extend_from_slice(b"\nnot-a-number\tprivate\t-\tshort\t1\t1\t1\t1\t-\t1\t1\t0\n");
        let err = read_snapshot(&kb, buf.as_slice()).unwrap_err();
        assert!(err.starts_with("line 4:"), "{err}");
        assert!(err.contains("subscription"), "{err}");
    }
}
