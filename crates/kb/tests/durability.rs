//! Durability proptests and fuzz tests: arbitrary entries must survive
//! a write → recover cycle byte-identically at any shard count, and any
//! corruption of the on-disk bytes must fail loudly — recovery never
//! silently loads corrupt state.

mod common;

use cloudscope_analysis::UtilizationPattern;
use cloudscope_kb::knowledge::LifetimeClass;
use cloudscope_kb::{DurableKb, KnowledgeBase, PersistError, WorkloadKnowledge};
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::prelude::{CloudKind, SimTime};
use common::{all_queries, assert_kb_equal, entry, TempDir};
use proptest::prelude::*;
use std::path::Path;

/// NaN-free but otherwise extreme floats: subnormals, huge magnitudes,
/// negative zero, and ordinary values.
fn finite_f64() -> impl Strategy<Value = f64> {
    prop_oneof![
        (-1.0e3..1.0e3f64).boxed(),
        Just(f64::MIN_POSITIVE).boxed(),
        Just(-0.0f64).boxed(),
        Just(1.0e300f64).boxed(),
        Just(-1.0e-300f64).boxed(),
        Just(f64::MAX).boxed(),
    ]
}

/// A fully arbitrary entry: every enum variant, extreme minutes,
/// extreme floats — everything the codec must carry.
fn arb_entry() -> impl Strategy<Value = WorkloadKnowledge> {
    let minutes = prop_oneof![
        (-1_000_000i64..1_000_000).boxed(),
        Just(i64::MIN).boxed(),
        Just(i64::MAX).boxed(),
    ];
    (
        (0u32..10_000, any::<bool>(), 0u8..5, 0u8..3),
        (finite_f64(), finite_f64(), finite_f64()),
        (0usize..1_000, 0u8..3, 0usize..1_000_000, any::<u64>()),
        minutes,
    )
        .prop_map(
            |(
                (id, cloud_pub, pattern_tag, lifetime_tag),
                (mean_util, p95_util, util_cv),
                (regions, agnostic_tag, vm_count, cores),
                minutes,
            )| WorkloadKnowledge {
                subscription: SubscriptionId::new(id),
                cloud: if cloud_pub {
                    CloudKind::Public
                } else {
                    CloudKind::Private
                },
                pattern: match pattern_tag {
                    0 => None,
                    1 => Some(UtilizationPattern::Diurnal),
                    2 => Some(UtilizationPattern::Stable),
                    3 => Some(UtilizationPattern::Irregular),
                    _ => Some(UtilizationPattern::HourlyPeak),
                },
                lifetime: match lifetime_tag {
                    0 => LifetimeClass::MostlyShort,
                    1 => LifetimeClass::Mixed,
                    _ => LifetimeClass::MostlyLong,
                },
                mean_util,
                p95_util,
                util_cv,
                regions,
                region_agnostic: match agnostic_tag {
                    0 => None,
                    1 => Some(false),
                    _ => Some(true),
                },
                vm_count,
                cores,
                updated_at: SimTime::from_minutes(minutes),
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Arbitrary entries written through the WAL (and optionally a
    /// snapshot) come back bit-identical at any shard count.
    #[test]
    fn arbitrary_entries_roundtrip_bit_identically(
        entries in proptest::collection::vec(arb_entry(), 1..40),
        writer_shards in 1usize..9,
        recover_shards in 1usize..9,
        snapshot in any::<bool>(),
    ) {
        let dir = TempDir::new("prop-roundtrip");
        let db = DurableKb::open_with_shards(dir.path(), Some(writer_shards)).unwrap();
        db.feed(&entries).unwrap();
        if snapshot {
            db.snapshot().unwrap();
        }
        let expected: Vec<WorkloadKnowledge> =
            cloudscope_kb::KbQuery::all().collect(db.kb());
        drop(db);

        let recovered =
            DurableKb::open_with_shards(dir.path(), Some(recover_shards)).unwrap();
        let got: Vec<WorkloadKnowledge> =
            cloudscope_kb::KbQuery::all().collect(recovered.kb());
        prop_assert_eq!(got.len(), expected.len());
        for (g, e) in got.iter().zip(&expected) {
            // Bit-level float equality, not just PartialEq (which treats
            // -0.0 == 0.0).
            prop_assert_eq!(g.subscription, e.subscription);
            prop_assert_eq!(g.mean_util.to_bits(), e.mean_util.to_bits());
            prop_assert_eq!(g.p95_util.to_bits(), e.p95_util.to_bits());
            prop_assert_eq!(g.util_cv.to_bits(), e.util_cv.to_bits());
            prop_assert_eq!(g, e);
        }
        recovered.kb().check_consistency().unwrap();
    }

    /// Changing the shard count between write and recovery changes no
    /// query result on the whole typed-query surface.
    #[test]
    fn shard_count_change_preserves_query_results(
        ids in proptest::collection::vec(0u32..200, 1..60),
        writer_shards in 1usize..9,
        recover_shards in 1usize..9,
    ) {
        let dir = TempDir::new("prop-shards");
        let db = DurableKb::open_with_shards(dir.path(), Some(writer_shards)).unwrap();
        let batch: Vec<WorkloadKnowledge> = ids.iter().map(|&id| entry(id)).collect();
        db.feed(&batch).unwrap();
        db.snapshot().unwrap();
        // A post-snapshot tail so recovery exercises both paths.
        db.feed(&ids.iter().map(|&id| entry(id + 200)).collect::<Vec<_>>()).unwrap();
        drop(db);

        let reference = KnowledgeBase::with_shards(1);
        reference.feed(batch);
        reference.feed(ids.iter().map(|&id| entry(id + 200)));

        let recovered =
            DurableKb::open_with_shards(dir.path(), Some(recover_shards)).unwrap();
        for query in all_queries() {
            prop_assert_eq!(
                query.collect(recovered.kb()),
                query.collect(&reference),
                "writer {} shards, recovery {} shards",
                writer_shards,
                recover_shards
            );
        }
    }
}

/// Builds a durable dir with `n` single-upsert WAL records (no
/// snapshot) and returns the byte offsets at which each record ends —
/// i.e. the committed-prefix boundaries.
fn wal_fixture(dir: &Path, n: u32) -> Vec<u64> {
    let db = DurableKb::open_with_shards(dir, Some(2)).unwrap();
    let mut boundaries = vec![std::fs::metadata(dir.join("wal.log")).unwrap().len()];
    for i in 0..n {
        db.upsert(entry(i)).unwrap();
        boundaries.push(std::fs::metadata(dir.join("wal.log")).unwrap().len());
    }
    boundaries
}

/// The state after the first `k` ops of [`wal_fixture`]'s sequence.
fn prefix_state(k: usize) -> KnowledgeBase {
    let kb = KnowledgeBase::with_shards(1);
    kb.feed((0..k as u32).map(entry));
    kb
}

/// Recovery of a truncated WAL keeps exactly the records that fit whole
/// under the cut: the torn last record is dropped, nothing else.
#[test]
fn wal_truncation_recovers_longest_committed_prefix() {
    const OPS: u32 = 6;
    let dir = TempDir::new("fuzz-trunc");
    let boundaries = wal_fixture(dir.path(), OPS);
    let full = std::fs::read(dir.path().join("wal.log")).unwrap();

    for cut in boundaries[0]..=*boundaries.last().unwrap() {
        std::fs::write(dir.path().join("wal.log"), &full[..cut as usize]).unwrap();
        let recovered = DurableKb::open_with_shards(dir.path(), Some(3)).unwrap();
        // Number of records wholly under the cut.
        let k = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        assert_kb_equal(
            recovered.kb(),
            &prefix_state(k),
            &format!("truncated at byte {cut}"),
        );
        let torn = boundaries[k] != cut;
        assert_eq!(
            recovered.recovery_stats().torn_tail,
            torn,
            "cut {cut}: torn-tail flag"
        );
        drop(recovered);
        // Recovery truncates the torn tail away on disk.
        assert_eq!(
            std::fs::metadata(dir.path().join("wal.log")).unwrap().len(),
            boundaries[k],
            "cut {cut}: torn bytes not truncated"
        );
    }
}

/// Every single-byte corruption of the WAL either fails loudly or — if
/// it can masquerade as a torn tail (only possible in the final
/// record's frame) — recovers a committed prefix. Never garbage.
#[test]
fn wal_bit_flips_never_load_silently_corrupt_state() {
    const OPS: u32 = 4;
    let dir = TempDir::new("fuzz-flip");
    let boundaries = wal_fixture(dir.path(), OPS);
    let full = std::fs::read(dir.path().join("wal.log")).unwrap();
    let prefixes: Vec<KnowledgeBase> = (0..=OPS as usize).map(prefix_state).collect();

    for at in 0..full.len() {
        for bit in [0x01u8, 0x80] {
            let mut bad = full.clone();
            bad[at] ^= bit;
            std::fs::write(dir.path().join("wal.log"), &bad).unwrap();
            match DurableKb::open_with_shards(dir.path(), Some(2)) {
                Err(PersistError::Corrupt { .. } | PersistError::Malformed { .. }) => {}
                Err(other) => panic!("byte {at} bit {bit:#04x}: unexpected error {other}"),
                Ok(recovered) => {
                    // Tolerated only as a torn tail: the state must be
                    // exactly one of the committed prefixes.
                    let matched = prefixes.iter().enumerate().any(|(k, p)| {
                        recovered.kb().len() == p.len()
                            && cloudscope_kb::KbQuery::all().collect(recovered.kb())
                                == cloudscope_kb::KbQuery::all().collect(p)
                            && recovered.recovery_stats().torn_tail
                            && boundaries[k] < full.len() as u64
                    });
                    assert!(
                        matched,
                        "byte {at} bit {bit:#04x}: accepted without matching any \
                         committed prefix"
                    );
                }
            }
        }
    }
}

/// Every single-byte corruption of a committed snapshot file or the
/// manifest fails loudly — these files are renamed into place whole, so
/// no torn-tail tolerance applies.
#[test]
fn snapshot_and_manifest_bit_flips_fail_loudly() {
    let dir = TempDir::new("fuzz-snapflip");
    let db = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    db.feed(&(0..25).map(entry).collect::<Vec<_>>()).unwrap();
    let report = db.snapshot().unwrap();
    drop(db);

    let mut victims: Vec<String> = (0..report.shard_files)
        .map(|s| format!("snap-{}-{s}.snap", report.generation))
        .collect();
    victims.push("MANIFEST".to_owned());

    for name in victims {
        let path = dir.path().join(&name);
        let good = std::fs::read(&path).unwrap();
        // Stride 3 keeps the matrix fast while still hitting header,
        // checksum, and payload bytes of every region.
        for at in (0..good.len()).step_by(3) {
            let mut bad = good.clone();
            bad[at] ^= 0x20;
            std::fs::write(&path, &bad).unwrap();
            let result = DurableKb::open(dir.path());
            assert!(
                matches!(
                    result,
                    Err(PersistError::Corrupt { .. } | PersistError::Malformed { .. })
                ),
                "{name} byte {at}: corruption accepted"
            );
        }
        std::fs::write(&path, &good).unwrap();
    }

    // Restored bytes: recovery works again and the state is complete.
    let recovered = DurableKb::open(dir.path()).unwrap();
    let shadow = KnowledgeBase::new();
    shadow.feed((0..25).map(entry));
    assert_kb_equal(recovered.kb(), &shadow, "restored fixture");
}

/// Corruption errors point at the offending record: flip a byte in a
/// known record of the WAL and of a snapshot file and check the 1-based
/// record number in the message.
#[test]
fn corruption_errors_name_file_and_record() {
    let dir = TempDir::new("fuzz-attrib");
    let boundaries = wal_fixture(dir.path(), 5);
    let wal_path = dir.path().join("wal.log");
    let mut bytes = std::fs::read(&wal_path).unwrap();
    // Flip a payload byte inside record 3 (the third upsert): its frame
    // starts at boundary[2]; skip the 8-byte header.
    bytes[boundaries[2] as usize + 8 + 4] ^= 0xFF;
    std::fs::write(&wal_path, &bytes).unwrap();
    let err = DurableKb::open(dir.path()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("wal.log"), "{msg}");
    assert!(msg.contains("record 3"), "{msg}");

    // Snapshot attribution: corrupt the second entry of one shard file.
    let dir2 = TempDir::new("fuzz-attrib-snap");
    let db = DurableKb::open_with_shards(dir2.path(), Some(1)).unwrap();
    db.feed(&(0..5).map(entry).collect::<Vec<_>>()).unwrap();
    let report = db.snapshot().unwrap();
    drop(db);
    let snap = dir2
        .path()
        .join(format!("snap-{}-0.snap", report.generation));
    let mut bytes = std::fs::read(&snap).unwrap();
    // magic(8) + header frame(8+16) + first entry frame(8+64), then the
    // second entry's frame header — flip its first payload byte.
    let second_entry_payload = 8 + (8 + 16) + (8 + 64) + 8;
    bytes[second_entry_payload] ^= 0x01;
    std::fs::write(&snap, &bytes).unwrap();
    let err = DurableKb::open(dir2.path()).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains(".snap"), "{msg}");
    // Header is record 1, so the second entry is record 3.
    assert!(msg.contains("record 3"), "{msg}");
}

/// A committed snapshot rotates the WAL down to the post-cut tail: the
/// log shrinks to its bare segment header, and recovery replay cost
/// tracks since-last-snapshot volume across repeated cycles.
#[test]
fn snapshot_rotates_wal_to_post_cut_tail() {
    let dir = TempDir::new("rotate");
    let wal = dir.path().join("wal.log");
    let db = DurableKb::open_with_shards(dir.path(), Some(3)).unwrap();
    db.feed(&(0..40).map(entry).collect::<Vec<_>>()).unwrap();
    assert!(std::fs::metadata(&wal).unwrap().len() > 16);
    db.snapshot().unwrap();
    // Everything the snapshot covers is folded out of the log: only the
    // 16-byte segment header (magic + sequence) remains.
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), 16);
    for i in 40..43 {
        db.upsert(entry(i)).unwrap();
    }
    drop(db);

    let recovered = DurableKb::open_with_shards(dir.path(), Some(2)).unwrap();
    let stats = recovered.recovery_stats();
    assert_eq!(stats.generation, 1);
    assert_eq!(stats.replayed_records, 3, "replay covers only the tail");
    let shadow = KnowledgeBase::new();
    shadow.feed((0..43).map(entry));
    assert_kb_equal(recovered.kb(), &shadow, "first rotation");

    // Second cycle: the log keeps shrinking back to its header and
    // replay stays tail-sized — lifetime volume never accumulates.
    recovered.snapshot().unwrap();
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), 16);
    recovered.upsert(entry(50)).unwrap();
    drop(recovered);
    let again = DurableKb::open(dir.path()).unwrap();
    assert_eq!(again.recovery_stats().generation, 2);
    assert_eq!(again.recovery_stats().replayed_records, 1);
    shadow.upsert(entry(50));
    assert_kb_equal(again.kb(), &shadow, "second rotation");
}

/// A rotated WAL segment names the generation that committed it; if
/// that manifest disappears, recovery refuses the orphan segment rather
/// than replaying a tail whose base snapshot is gone.
#[test]
fn rotated_segment_without_its_manifest_fails_loudly() {
    let dir = TempDir::new("rotate-orphan");
    let db = DurableKb::open(dir.path()).unwrap();
    db.feed(&(0..10).map(entry).collect::<Vec<_>>()).unwrap();
    db.snapshot().unwrap();
    drop(db);
    std::fs::remove_file(dir.path().join("MANIFEST")).unwrap();
    assert!(matches!(
        DurableKb::open(dir.path()),
        Err(PersistError::Malformed { .. })
    ));
}

/// Tampering with the segment sequence in the WAL header fails loudly:
/// a sequence matching neither the manifest's cut segment nor its
/// generation means the log and snapshot disagree about history.
#[test]
fn wal_header_seq_tamper_fails_loudly() {
    let dir = TempDir::new("rotate-seq");
    let db = DurableKb::open(dir.path()).unwrap();
    db.feed(&(0..10).map(entry).collect::<Vec<_>>()).unwrap();
    db.snapshot().unwrap();
    db.upsert(entry(99)).unwrap();
    drop(db);
    let wal = dir.path().join("wal.log");
    let mut bytes = std::fs::read(&wal).unwrap();
    // The segment sequence lives in header bytes 8..16 (after the
    // magic); any flip makes it match neither cut segment nor
    // generation.
    bytes[8] ^= 0x04;
    std::fs::write(&wal, &bytes).unwrap();
    assert!(matches!(
        DurableKb::open(dir.path()),
        Err(PersistError::Malformed { .. })
    ));
}

/// [`SyncPolicy::Always`] (fdatasync per append) roundtrips identically
/// to the default policy — it only changes when bytes reach stable
/// storage, never what recovery reads.
#[test]
fn sync_always_policy_roundtrips() {
    use cloudscope_kb::SyncPolicy;
    let dir = TempDir::new("sync-always");
    let db = DurableKb::open_with(dir.path(), Some(2), SyncPolicy::Always).unwrap();
    db.feed(&(0..12).map(entry).collect::<Vec<_>>()).unwrap();
    db.snapshot().unwrap();
    db.upsert(entry(20)).unwrap();
    drop(db);

    let recovered = DurableKb::open(dir.path()).unwrap();
    let shadow = KnowledgeBase::new();
    shadow.feed((0..12).map(entry));
    shadow.upsert(entry(20));
    assert_kb_equal(recovered.kb(), &shadow, "sync=always");
}

/// A manifest pointing at missing shard files or a missing WAL fails
/// loudly instead of quietly serving partial state.
#[test]
fn missing_files_behind_a_manifest_fail_loudly() {
    let dir = TempDir::new("fuzz-missing");
    let db = DurableKb::open_with_shards(dir.path(), Some(3)).unwrap();
    db.feed(&(0..30).map(entry).collect::<Vec<_>>()).unwrap();
    let report = db.snapshot().unwrap();
    drop(db);

    // Remove one committed shard file.
    let victim = dir
        .path()
        .join(format!("snap-{}-1.snap", report.generation));
    let saved = std::fs::read(&victim).unwrap();
    std::fs::remove_file(&victim).unwrap();
    assert!(matches!(
        DurableKb::open(dir.path()),
        Err(PersistError::Io { .. })
    ));
    std::fs::write(&victim, &saved).unwrap();

    // Remove the WAL while a manifest exists.
    let wal = dir.path().join("wal.log");
    std::fs::remove_file(&wal).unwrap();
    assert!(matches!(
        DurableKb::open(dir.path()),
        Err(PersistError::Malformed { .. })
    ));
}
