//! Property-based tests for the time-series substrate.

use cloudscope_timeseries::acf::{autocorrelation, autocorrelation_fft, autocorrelation_naive};
use cloudscope_timeseries::fft::{fft_in_place, ifft_in_place, periodogram, Complex};
use cloudscope_timeseries::profile::{daily_profile, weekday_weekend_means};
use cloudscope_timeseries::series::Series;
use proptest::prelude::*;

proptest! {
    #[test]
    fn fft_roundtrip_is_identity(
        re in prop::collection::vec(-1e3f64..1e3, 32..=32),
        im in prop::collection::vec(-1e3f64..1e3, 32..=32),
    ) {
        let original: Vec<Complex> = re
            .iter()
            .zip(&im)
            .map(|(&r, &i)| Complex::new(r, i))
            .collect();
        let mut buf = original.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in original.iter().zip(&buf) {
            prop_assert!((a.re - b.re).abs() < 1e-6);
            prop_assert!((a.im - b.im).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_linearity(
        a in prop::collection::vec(-1e2f64..1e2, 16..=16),
        b in prop::collection::vec(-1e2f64..1e2, 16..=16),
    ) {
        let mut fa: Vec<Complex> = a.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut fb: Vec<Complex> = b.iter().map(|&v| Complex::new(v, 0.0)).collect();
        let mut fab: Vec<Complex> = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| Complex::new(x + y, 0.0))
            .collect();
        fft_in_place(&mut fa).unwrap();
        fft_in_place(&mut fb).unwrap();
        fft_in_place(&mut fab).unwrap();
        for ((x, y), z) in fa.iter().zip(&fb).zip(&fab) {
            prop_assert!((x.re + y.re - z.re).abs() < 1e-6);
            prop_assert!((x.im + y.im - z.im).abs() < 1e-6);
        }
    }

    #[test]
    fn acf_bounded_and_starts_at_one(
        values in prop::collection::vec(-1e3f64..1e3, 8..64),
    ) {
        if let Ok(acf) = autocorrelation(&values, values.len() / 2) {
            prop_assert!((acf[0] - 1.0).abs() < 1e-9);
            for &v in &acf {
                prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&v));
            }
        }
    }

    #[test]
    fn fft_acf_matches_naive_oracle(
        values in prop::collection::vec(-1e3f64..1e3, 2..160),
        lag_frac in 0.0f64..1.0,
    ) {
        // Random signal, random lag up to n - 1: the FFT path must agree
        // with the direct-sum oracle within 1e-9 in ACF units, and both
        // paths must fail identically when either fails.
        let max_lag = (lag_frac * (values.len() - 1) as f64) as usize;
        match (
            autocorrelation_naive(&values, max_lag),
            autocorrelation_fft(&values, max_lag),
        ) {
            (Ok(naive), Ok(fft)) => {
                prop_assert_eq!(naive.len(), fft.len());
                for (lag, (a, b)) in naive.iter().zip(&fft).enumerate() {
                    prop_assert!((a - b).abs() < 1e-9, "lag {}: {} vs {}", lag, a, b);
                }
            }
            (Err(_), Err(_)) => {}
            (naive, fft) => {
                return Err(TestCaseError::fail(format!(
                    "paths disagree on failure: naive {naive:?} vs fft {fft:?}"
                )));
            }
        }
    }

    #[test]
    fn periodogram_power_nonnegative(
        values in prop::collection::vec(-1e3f64..1e3, 8..128),
    ) {
        let (power, n) = periodogram(&values).unwrap();
        prop_assert!(n.is_power_of_two());
        prop_assert!(n >= values.len());
        for &p in &power {
            prop_assert!(p >= 0.0);
        }
    }

    #[test]
    fn downsample_mean_preserves_total_mean(
        values in prop::collection::vec(0.0f64..100.0, 12..120),
    ) {
        // With a factor dividing the length, means agree exactly.
        let len = values.len() - values.len() % 4;
        let s = Series::new(0, 5, values[..len].to_vec());
        let d = s.downsample_mean(4).unwrap();
        prop_assert!((s.mean() - d.mean()).abs() < 1e-9);
    }

    #[test]
    fn downsample_sum_preserves_total(
        values in prop::collection::vec(0.0f64..100.0, 1..120),
    ) {
        let s = Series::new(0, 5, values.clone());
        let d = s.downsample_sum(7).unwrap();
        let total: f64 = values.iter().sum();
        let total_d: f64 = d.values().iter().sum();
        prop_assert!((total - total_d).abs() < 1e-6);
    }

    #[test]
    fn daily_profile_mean_matches_series_mean(
        values in prop::collection::vec(0.0f64..100.0, 288..=288),
    ) {
        // Exactly one day of 5-minute samples: the profile IS the series.
        let s = Series::new(0, 5, values.clone());
        let profile = daily_profile(&s).unwrap();
        prop_assert_eq!(profile.len(), 288);
        for (p, v) in profile.iter().zip(&values) {
            prop_assert!((p - v).abs() < 1e-12);
        }
    }

    #[test]
    fn weekday_weekend_total_weighting(
        values in prop::collection::vec(0.0f64..100.0, 168..=168),
    ) {
        // Hourly for a week: 120 weekday hours, 48 weekend hours.
        let s = Series::new(0, 60, values.clone());
        let (wd, we) = weekday_weekend_means(&s).unwrap();
        let overall: f64 = values.iter().sum::<f64>() / 168.0;
        let recombined = (wd * 120.0 + we * 48.0) / 168.0;
        prop_assert!((overall - recombined).abs() < 1e-9);
    }
}
