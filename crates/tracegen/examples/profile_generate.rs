//! Phase-level profile of one medium deployment-only generation run.
//!
//! Runs the generator once to warm caches, then once under a private
//! metrics registry, and prints every counter and span-histogram the run
//! recorded, largest first. Histogram sums are nanoseconds (printed as
//! milliseconds); counters are event counts. Useful for spotting which
//! phase regressed after a change to the placement or simulation paths:
//!
//! ```text
//! cargo run --release -p cloudscope-tracegen --example profile_generate
//! ```

use cloudscope_obs::{scoped, MetricValue, Registry};
use cloudscope_tracegen::{generate, GeneratorConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let mut cfg = GeneratorConfig::medium(7);
    cfg.telemetry = false;

    // Warm-up run outside the registry so one-time costs (lazy statics,
    // allocator warm pages) don't pollute the profile.
    black_box(generate(&cfg));

    let reg = Arc::new(Registry::new());
    let t = Instant::now();
    let g = scoped(&reg, || black_box(generate(&cfg)));
    println!(
        "medium deploy-only: {:.1} ms ({} vms)",
        t.elapsed().as_secs_f64() * 1e3,
        g.trace.vms().len()
    );

    let snap = reg.snapshot();
    let mut spans: Vec<(String, u64)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for (name, value) in &snap.metrics {
        match value {
            MetricValue::Histogram(h) => spans.push((name.clone(), h.sum)),
            MetricValue::Counter(c) => counters.push((name.clone(), *c)),
            MetricValue::Gauge(_) => {}
        }
    }
    spans.sort_by_key(|&(_, sum)| std::cmp::Reverse(sum));
    counters.sort_by_key(|&(_, count)| std::cmp::Reverse(count));

    println!("spans (total ns as ms):");
    for (name, sum) in spans {
        println!("  {name}: {:.2} ms", sum as f64 / 1e6);
    }
    println!("counters:");
    for (name, count) in counters {
        println!("  {name}: {count}");
    }
}
