//! The out-of-core telemetry source: a [`TelemetrySource`] that loads
//! per-VM utilization series from the chunk store on demand, through a
//! bounded LRU cache of decoded telemetry chunks.
//!
//! A `Trace` re-pointed at this source keeps only VM metadata and a
//! presence bitmap resident; every analysis that calls `Trace::util`
//! pulls series through here and observes bit-identical samples.
//!
//! Corruption discovered during a lazy load panics with the full
//! [`StoreError`] display (file and chunk named): `TelemetrySource::
//! load` returns `Option`, and silently mapping a corrupt chunk to
//! "no telemetry" would be exactly the quiet data loss this store
//! exists to prevent. Fail-fast paths that want a typed error instead
//! validate up front via [`crate::TraceReader::open`].

use crate::chunk::ChunkKind;
use crate::columns::{Batch, Projection};
use crate::error::StoreError;
use crate::manifest::ChunkEntry;
use crate::reader::{assemble_series, ScanFilter, TraceReader};
use bytes::Bytes;
use cloudscope_model::ids::VmId;
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::trace::TelemetrySource;
use cloudscope_obs::counter;
use std::path::Path;
use std::sync::{Arc, Mutex, OnceLock};

/// One decoded telemetry chunk held by the cache. Row order matches
/// the chunk's id column (held separately in the id index).
#[derive(Debug)]
struct CachedChunk {
    starts: Vec<i64>,
    samples: Vec<Bytes>,
}

/// Least-recently-used cache of decoded telemetry chunks, keyed by
/// the chunk's index in the telemetry entry table.
#[derive(Debug, Default)]
struct LruCache {
    /// Front = least recently used.
    entries: Vec<(usize, Arc<CachedChunk>)>,
}

impl LruCache {
    fn get(&mut self, key: usize) -> Option<Arc<CachedChunk>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let chunk = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(chunk)
    }

    fn insert(&mut self, key: usize, chunk: Arc<CachedChunk>, capacity: usize) {
        self.entries.push((key, chunk));
        while self.entries.len() > capacity {
            self.entries.remove(0);
            counter("store.cache.evictions").inc();
        }
    }
}

/// Lazy telemetry over a committed trace directory.
#[derive(Debug)]
pub struct StoreTelemetry {
    reader: TraceReader,
    /// Telemetry chunk entries, in manifest order.
    entries: Vec<ChunkEntry>,
    /// Per-chunk sorted id membership, each loaded once through an
    /// ids-only projected read (the id column decompresses alone,
    /// without the sample payloads). VM ids are contiguous per
    /// *subscription*, not per region, so the `min_vm..max_vm` ranges
    /// of different regions' chunks interleave — without this index
    /// every lookup would decompress each range-overlapping chunk just
    /// to miss its binary search, and a VM-ordered sweep would thrash
    /// any bounded cache. The index is the only per-chunk state that
    /// stays resident: 8 bytes per telemetry run, ~1% of the samples.
    ids: Vec<OnceLock<Arc<Vec<VmId>>>>,
    cache: Mutex<LruCache>,
    cache_chunks: usize,
}

impl StoreTelemetry {
    /// Opens the store at `dir` as a telemetry source with a cache of
    /// at most `cache_chunks` decoded chunks (minimum 1).
    ///
    /// `cache_chunks == 0` auto-sizes the cache to the id-ordered sweep
    /// working set: one chunk per distinct (region, day) lane plus one.
    /// Chunks within a lane cover ascending id ranges, so an analysis
    /// walking VMs in id order needs the current chunk of every lane at
    /// once but never returns to an earlier one — the auto size is
    /// bounded by trace *geometry* (regions × days), independent of how
    /// many chunks or samples the store holds.
    ///
    /// # Errors
    /// Any [`StoreError`] from [`TraceReader::open`].
    pub fn open(dir: impl AsRef<Path>, cache_chunks: usize) -> Result<Self, StoreError> {
        let reader = TraceReader::open(dir.as_ref())?;
        let entries: Vec<ChunkEntry> = reader
            .chunks(ScanFilter::all().kind(ChunkKind::Telemetry))
            .cloned()
            .collect();
        let cache_chunks = if cache_chunks == 0 {
            let lanes: std::collections::BTreeSet<(u32, u8)> = entries
                .iter()
                .map(|e| (e.meta.region, e.meta.day))
                .collect();
            lanes.len() + 1
        } else {
            cache_chunks
        };
        let ids = entries.iter().map(|_| OnceLock::new()).collect();
        Ok(Self {
            reader,
            entries,
            ids,
            cache: Mutex::new(LruCache::default()),
            cache_chunks: cache_chunks.max(1),
        })
    }

    /// Decoded-chunk cache capacity.
    #[must_use]
    pub fn cache_capacity(&self) -> usize {
        self.cache_chunks
    }

    /// The sorted id column of the telemetry chunk at `idx`, loaded
    /// once through an ids-only projected read. A lost set race only
    /// duplicates that one cheap read.
    fn chunk_ids(&self, idx: usize) -> Result<Arc<Vec<VmId>>, StoreError> {
        if let Some(ids) = self.ids[idx].get() {
            return Ok(Arc::clone(ids));
        }
        let batch = match self
            .reader
            .read_chunk(&self.entries[idx], Projection::columns(&[]))?
        {
            Batch::Telemetry(b) => b,
            Batch::VmMeta(_) => unreachable!("entry table holds telemetry chunks only"),
        };
        let ids = Arc::new(batch.ids);
        let _ = self.ids[idx].set(Arc::clone(&ids));
        Ok(ids)
    }

    /// Fetches (or decodes) the telemetry chunk at `idx`.
    fn chunk(&self, idx: usize) -> Result<Arc<CachedChunk>, StoreError> {
        if let Some(hit) = self.cache.lock().expect("cache lock").get(idx) {
            counter("store.cache.hits").inc();
            return Ok(hit);
        }
        counter("store.cache.misses").inc();
        let batch = match self
            .reader
            .read_chunk(&self.entries[idx], Projection::all())?
        {
            Batch::Telemetry(b) => b,
            Batch::VmMeta(_) => unreachable!("entry table holds telemetry chunks only"),
        };
        let starts = batch.starts.ok_or_else(|| {
            StoreError::Inconsistent(format!("chunk {}: no start column", batch.chunk))
        })?;
        let samples = batch.samples.ok_or_else(|| {
            StoreError::Inconsistent(format!("chunk {}: no samples column", batch.chunk))
        })?;
        let chunk = Arc::new(CachedChunk {
            starts: starts.into_iter().map(|t| t.minutes()).collect(),
            samples,
        });
        self.cache
            .lock()
            .expect("cache lock")
            .insert(idx, Arc::clone(&chunk), self.cache_chunks);
        Ok(chunk)
    }

    /// The runs for `id`, or an error naming the chunk that failed.
    /// Chunks are pruned by the manifest id range, then by the id
    /// index; the full chunk decompresses only when the VM actually
    /// has a run in it (rows are sorted by id, at most one per chunk).
    fn load_runs(&self, id: VmId) -> Result<Vec<(i64, Bytes)>, StoreError> {
        let mut runs = Vec::new();
        for (idx, entry) in self.entries.iter().enumerate() {
            let raw = id.index();
            if raw < entry.meta.min_vm || raw > entry.meta.max_vm {
                continue;
            }
            let Ok(row) = self.chunk_ids(idx)?.binary_search(&id) else {
                continue;
            };
            let chunk = self.chunk(idx)?;
            runs.push((chunk.starts[row], chunk.samples[row].clone()));
        }
        Ok(runs)
    }
}

impl TelemetrySource for StoreTelemetry {
    /// Presence without materializing samples: manifest id-range
    /// pruning plus the resident id index. Only the ids-only projected
    /// read happens on a cold index — sample payloads never decompress.
    fn has(&self, id: VmId) -> bool {
        let raw = id.index();
        self.entries.iter().enumerate().any(|(idx, entry)| {
            raw >= entry.meta.min_vm
                && raw <= entry.meta.max_vm
                && match self.chunk_ids(idx) {
                    Ok(ids) => ids.binary_search(&id).is_ok(),
                    Err(e) => panic!("out-of-core telemetry presence check for {id} failed: {e}"),
                }
        })
    }

    fn load(&self, id: VmId) -> Option<UtilSeries> {
        let mut runs = match self.load_runs(id) {
            Ok(runs) => runs,
            Err(e) => panic!("out-of-core telemetry load for {id} failed: {e}"),
        };
        if runs.is_empty() {
            return None;
        }
        let series = match assemble_series(id.index(), &mut runs) {
            Ok(s) => s,
            Err(e) => panic!("out-of-core telemetry load failed: {e}"),
        };
        counter("store.read.series_loaded").inc();
        Some(series)
    }
}
