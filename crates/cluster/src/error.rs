//! Error types for the allocation service.

use cloudscope_model::ids::{ClusterId, NodeId, VmId};
use std::error::Error;
use std::fmt;

/// Why a placement request could not be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum AllocationError {
    /// No node in the cluster has enough free cores *and* memory.
    InsufficientCapacity(ClusterId),
    /// Capacity exists, but every feasible node would violate the
    /// fault-domain spreading rule for the request's service.
    SpreadingViolation(ClusterId),
    /// The VM id is not currently placed (release/migrate of unknown VM).
    UnknownVm(VmId),
    /// The node id does not belong to this cluster.
    UnknownNode(NodeId),
    /// The VM is already placed and cannot be placed again.
    AlreadyPlaced(VmId),
}

impl fmt::Display for AllocationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocationError::InsufficientCapacity(c) => {
                write!(f, "insufficient capacity in {c}")
            }
            AllocationError::SpreadingViolation(c) => {
                write!(f, "fault-domain spreading violated in {c}")
            }
            AllocationError::UnknownVm(v) => write!(f, "unknown vm {v}"),
            AllocationError::UnknownNode(n) => write!(f, "unknown node {n}"),
            AllocationError::AlreadyPlaced(v) => write!(f, "vm {v} already placed"),
        }
    }
}

impl Error for AllocationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(AllocationError::InsufficientCapacity(ClusterId::new(1))
            .to_string()
            .contains("capacity"));
        assert!(AllocationError::UnknownVm(VmId::new(2))
            .to_string()
            .contains("vm-2"));
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<AllocationError>();
    }
}
