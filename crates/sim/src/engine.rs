//! A minimal discrete-event simulation engine: a time-ordered event queue
//! with deterministic FIFO tie-breaking and a run loop that lets handlers
//! schedule further events.

use cloudscope_model::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event queue ordered by time; events at equal times pop in insertion
/// order (deterministic replay).
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Creates an empty queue with room for `capacity` pending events, so
    /// bulk schedulers (the trace generator enqueues every churn VM up
    /// front) skip the doubling reallocations.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, event });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Time of the earliest event without removing it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// A discrete-event simulation: an event queue plus a clock. The handler
/// receives each event and a [`Scheduler`] handle to enqueue follow-ups.
///
/// Events are queued on a [`crate::CalendarQueue`] (O(1) per operation
/// over the trace week's minute grid); [`EventQueue`]'s binary heap
/// remains public as the semantics oracle the calendar is tested
/// against. Both pop in `(time, insertion order)`.
///
/// # Examples
/// ```
/// # use cloudscope_sim::engine::Simulation;
/// # use cloudscope_model::time::{SimTime, SimDuration};
/// let mut sim = Simulation::new();
/// sim.schedule(SimTime::ZERO, 1u32);
/// let mut seen = Vec::new();
/// sim.run(SimTime::from_hours(10), |scheduler, time, event| {
///     seen.push((time, event));
///     if event < 3 {
///         scheduler.schedule(time + SimDuration::HOUR, event + 1);
///     }
/// });
/// assert_eq!(seen.len(), 3);
/// ```
#[derive(Debug, Default)]
pub struct Simulation<E> {
    queue: crate::CalendarQueue<E>,
    now: SimTime,
    /// Watermarks of queue totals already flushed to the metrics
    /// registry, so repeated `run` calls emit deltas, not re-counts.
    flushed_scheduled: u64,
    flushed_overflow: u64,
}

/// Handle given to event handlers for scheduling follow-up events.
#[derive(Debug)]
pub struct Scheduler<'a, E> {
    queue: &'a mut crate::CalendarQueue<E>,
    now: SimTime,
}

impl<E> Scheduler<'_, E> {
    /// Schedules an event; times before "now" are clamped to now (events
    /// cannot be scheduled in the past).
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time.max(self.now), event);
    }

    /// The current simulation time.
    #[must_use]
    pub const fn now(&self) -> SimTime {
        self.now
    }
}

impl<E> Simulation<E> {
    /// Creates an empty simulation at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue: crate::CalendarQueue::new(),
            now: SimTime::ZERO,
            flushed_scheduled: 0,
            flushed_overflow: 0,
        }
    }

    /// Creates an empty simulation whose queue has room for `capacity`
    /// pending events; see [`crate::CalendarQueue::with_capacity`].
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            queue: crate::CalendarQueue::with_capacity(capacity),
            now: SimTime::ZERO,
            flushed_scheduled: 0,
            flushed_overflow: 0,
        }
    }

    /// Schedules an initial event.
    pub fn schedule(&mut self, time: SimTime, event: E) {
        self.queue.schedule(time, event);
    }

    /// Current simulation time (the time of the last handled event).
    #[must_use]
    pub const fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Runs until the queue drains or the next event is at/after `until`
    /// (events strictly before `until` are processed). Returns the number
    /// of events handled.
    pub fn run<F>(&mut self, until: SimTime, mut handler: F) -> u64
    where
        F: FnMut(&mut Scheduler<'_, E>, SimTime, E),
    {
        let mut handled = 0;
        // Track the peak locally and flush once after the loop: the run
        // loop is the engine's hot path and must not take a registry
        // lookup per event.
        let mut peak_depth = self.queue.len();
        while let Some(next) = self.queue.peek_time() {
            if next >= until {
                break;
            }
            peak_depth = peak_depth.max(self.queue.len());
            let (time, event) = self.queue.pop().expect("peeked");
            self.now = time;
            let mut scheduler = Scheduler {
                queue: &mut self.queue,
                now: time,
            };
            handler(&mut scheduler, time, event);
            handled += 1;
        }
        cloudscope_obs::counter("sim.engine.events_processed").add(handled);
        cloudscope_obs::gauge("sim.engine.peak_queue_depth").set_max(peak_depth as f64);
        let scheduled = self.queue.scheduled_total();
        cloudscope_obs::counter("sim.queue.scheduled").add(scheduled - self.flushed_scheduled);
        self.flushed_scheduled = scheduled;
        let overflow = self.queue.overflow_total();
        cloudscope_obs::counter("sim.queue.overflow_events").add(overflow - self.flushed_overflow);
        self.flushed_overflow = overflow;
        handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_model::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_hours(3), "c");
        q.schedule(SimTime::from_hours(1), "a");
        q.schedule(SimTime::from_hours(2), "b");
        assert_eq!(q.peek_time(), Some(SimTime::from_hours(1)));
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_hours(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut q = EventQueue::with_capacity(16);
        assert!(q.is_empty());
        q.schedule(SimTime::from_hours(2), "b");
        q.schedule(SimTime::from_hours(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");

        let mut sim = Simulation::with_capacity(8);
        sim.schedule(SimTime::ZERO, ());
        assert_eq!(sim.run(SimTime::from_hours(1), |_, _, ()| {}), 1);
    }

    #[test]
    fn run_processes_cascading_events() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, 0u32);
        let mut order = Vec::new();
        sim.run(SimTime::from_days(1), |s, t, e| {
            order.push(e);
            if e < 5 {
                s.schedule(t + SimDuration::HOUR, e + 1);
            }
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(sim.now(), SimTime::from_hours(5));
        assert_eq!(sim.pending(), 0);
    }

    #[test]
    fn run_stops_at_horizon() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_hours(1), ());
        sim.schedule(SimTime::from_hours(5), ());
        let handled = sim.run(SimTime::from_hours(5), |_, _, ()| {});
        assert_eq!(handled, 1, "event at the horizon is not processed");
        assert_eq!(sim.pending(), 1);
    }

    #[test]
    fn scheduling_in_the_past_is_clamped() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_hours(2), true);
        let mut times = Vec::new();
        sim.run(SimTime::from_days(1), |s, t, first| {
            times.push(t);
            if first {
                // Try to schedule before now; must be clamped to now.
                s.schedule(SimTime::ZERO, false);
                assert_eq!(s.now(), SimTime::from_hours(2));
            }
        });
        assert_eq!(times, vec![SimTime::from_hours(2), SimTime::from_hours(2)]);
    }

    #[test]
    fn empty_run_handles_nothing() {
        let mut sim: Simulation<()> = Simulation::new();
        assert_eq!(sim.run(SimTime::WEEK_END, |_, _, ()| {}), 0);
    }
}
