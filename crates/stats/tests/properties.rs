//! Property-based tests over the statistics substrate.

use cloudscope_stats::boxplot::BoxPlot;
use cloudscope_stats::correlation::{pearson, pearson_or_zero, spearman};
use cloudscope_stats::dist::{Categorical, Sample, StdNormal};
use cloudscope_stats::ecdf::Ecdf;
use cloudscope_stats::error::StatsError;
use cloudscope_stats::histogram::{Axis, Histogram};
use cloudscope_stats::percentile::{percentile, percentile_sorted, percentiles};
use cloudscope_stats::summary::Summary;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..max_len)
}

/// Values that may be NaN or ±∞ alongside ordinary finite readings —
/// the raw material a corrupted telemetry stream hands the stats layer.
fn messy_value() -> impl Strategy<Value = f64> {
    (0u32..12, -1e6f64..1e6).prop_map(|(tag, v)| match tag {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => v,
    })
}

fn messy_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(messy_value(), 1..max_len)
}

proptest! {
    #[test]
    fn ecdf_is_monotone_and_bounded(sample in finite_vec(64), probe in -2e6f64..2e6) {
        let cdf = Ecdf::new(sample).unwrap();
        let f = cdf.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        // Monotone: a larger probe never decreases F.
        let f2 = cdf.eval(probe + 1.0);
        prop_assert!(f2 >= f);
        // Boundary behaviour.
        prop_assert_eq!(cdf.eval(cdf.max()), 1.0);
        prop_assert!(cdf.eval(cdf.min() - 1.0) == 0.0);
    }

    #[test]
    fn ecdf_quantile_inverts(sample in finite_vec(64), p in 0.0f64..=1.0) {
        let cdf = Ecdf::new(sample).unwrap();
        let q = cdf.quantile(p);
        // At least a fraction p of the mass lies at or below the quantile.
        prop_assert!(cdf.eval(q) >= p - 1e-12);
    }

    #[test]
    fn boxplot_invariants(sample in finite_vec(128)) {
        let b = BoxPlot::new(sample.clone()).unwrap();
        // Quartiles are ordered; whiskers bracket each other. (With
        // interpolated quartiles, an extreme outlier can pull q1 below
        // the smallest non-outlier, so lower_whisker <= q1 need NOT
        // hold; only the fence relation is guaranteed.)
        prop_assert!(b.q1 <= b.median);
        prop_assert!(b.median <= b.q3);
        prop_assert!(b.lower_whisker <= b.upper_whisker);
        prop_assert!(b.lower_whisker >= b.q1 - 1.5 * b.iqr() - 1e-9);
        prop_assert!(b.upper_whisker <= b.q3 + 1.5 * b.iqr() + 1e-9);
        // Outliers lie strictly outside the fences, and every
        // non-outlier observation lies within the whiskers.
        for o in &b.outliers {
            prop_assert!(*o < b.q1 - 1.5 * b.iqr() || *o > b.q3 + 1.5 * b.iqr());
        }
        for v in &sample {
            if !b.outliers.contains(v) {
                prop_assert!(*v >= b.lower_whisker && *v <= b.upper_whisker);
            }
        }
        prop_assert_eq!(b.count, sample.len());
    }

    #[test]
    fn pearson_bounded_and_symmetric(
        x in prop::collection::vec(-1e3f64..1e3, 3..32),
        seed in any::<u64>(),
    ) {
        // Add jitter so variance is almost surely nonzero.
        let mut rng = StdRng::seed_from_u64(seed);
        let y: Vec<f64> = x.iter().map(|v| v + StdNormal.sample(&mut rng)).collect();
        if let (Ok(r_xy), Ok(r_yx)) = (pearson(&x, &y), pearson(&y, &x)) {
            prop_assert!((-1.0..=1.0).contains(&r_xy));
            prop_assert!((r_xy - r_yx).abs() < 1e-12);
        }
    }

    #[test]
    fn pearson_affine_invariance(
        x in prop::collection::vec(-1e3f64..1e3, 3..32),
        scale in 0.1f64..100.0,
        shift in -1e3f64..1e3,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v + StdNormal.sample(&mut rng)).collect();
        if let Ok(base) = pearson(&x, &y) {
            let transformed: Vec<f64> = x.iter().map(|v| scale * v + shift).collect();
            if let Ok(r) = pearson(&transformed, &y) {
                prop_assert!((r - base).abs() < 1e-6, "{r} vs {base}");
            }
        }
    }

    #[test]
    fn spearman_bounded(
        x in prop::collection::vec(-1e3f64..1e3, 3..32),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let y: Vec<f64> = x.iter().map(|v| v.sin() + StdNormal.sample(&mut rng)).collect();
        if let Ok(r) = spearman(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn summary_merge_equals_sequential(
        a in prop::collection::vec(-1e5f64..1e5, 0..64),
        b in prop::collection::vec(-1e5f64..1e5, 0..64),
    ) {
        let mut merged: Summary = a.iter().copied().collect();
        let right: Summary = b.iter().copied().collect();
        merged.merge(&right);
        let sequential: Summary = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(merged.count(), sequential.count());
        if merged.count() > 0 {
            prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-6);
            prop_assert!(
                (merged.population_variance() - sequential.population_variance()).abs()
                    < 1e-3 * (1.0 + sequential.population_variance())
            );
        }
    }

    #[test]
    fn selection_percentile_matches_sorted(sample in finite_vec(128), p in 0.0f64..=100.0) {
        // The quickselect path must return bit-identical results to the
        // full-sort definition at any level, including interpolated ranks.
        let mut sorted = sample.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        prop_assert_eq!(percentile(&sample, p).unwrap(), percentile_sorted(&sorted, p));
    }

    #[test]
    fn percentiles_monotone_in_level(sample in finite_vec(128)) {
        let levels = [0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 100.0];
        let vals = percentiles(&sample, &levels).unwrap();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn histogram_conserves_observations(
        sample in prop::collection::vec(-10.0f64..20.0, 0..256),
    ) {
        let mut h = Histogram::new(Axis::linear(0.0, 10.0, 7).unwrap());
        h.extend(sample.iter().copied());
        prop_assert_eq!(h.total() + h.overflow(), sample.len() as u64);
        let fr: f64 = h.fractions().iter().sum();
        prop_assert!(h.total() == 0 || (fr - 1.0).abs() < 1e-9);
    }

    #[test]
    fn non_finite_inputs_yield_typed_errors_never_panics(
        sample in messy_vec(64),
        p in 0.0f64..=100.0,
    ) {
        let tainted = sample.iter().any(|v| !v.is_finite());
        // Every constructor either succeeds (all-finite input) or
        // reports NonFinite — none of them may panic or poison results.
        match Ecdf::new(sample.clone()) {
            Ok(cdf) => {
                prop_assert!(!tainted);
                prop_assert!(cdf.eval(0.0).is_finite());
            }
            Err(e) => {
                prop_assert!(tainted);
                prop_assert!(matches!(e, StatsError::NonFinite(_)));
            }
        }
        match BoxPlot::new(sample.clone()) {
            Ok(b) => prop_assert!(!tainted && b.median.is_finite()),
            Err(e) => prop_assert!(matches!(e, StatsError::NonFinite(_))),
        }
        match percentile(&sample, p) {
            Ok(v) => prop_assert!(!tainted && v.is_finite()),
            Err(e) => prop_assert!(matches!(e, StatsError::NonFinite(_))),
        }
        match pearson(&sample, &sample) {
            // A finite non-constant series correlates perfectly with itself.
            Ok(r) => prop_assert!(!tainted && (r - 1.0).abs() < 1e-9),
            Err(e) => prop_assert!(matches!(
                e,
                StatsError::NonFinite(_) | StatsError::EmptyInput(_) | StatsError::ZeroVariance(_)
            )),
        }
        // Summary is the lenient path: it skips non-finite observations
        // instead of erroring, so a tainted stream still summarizes.
        let s: Summary = sample.iter().copied().collect();
        prop_assert_eq!(
            s.count(),
            sample.iter().filter(|v| v.is_finite()).count() as u64
        );
    }

    #[test]
    fn constant_inputs_degrade_gracefully(
        c in -1e6f64..1e6,
        len in 1usize..64,
        p in 0.0f64..=100.0,
    ) {
        let sample = vec![c; len];
        // ECDF of a constant is a unit step at the constant.
        let cdf = Ecdf::new(sample.clone()).unwrap();
        prop_assert_eq!(cdf.eval(c), 1.0);
        prop_assert_eq!(cdf.eval(c - 1e-3), 0.0);
        prop_assert_eq!(cdf.median(), c);
        // Degenerate box plot: everything collapses onto the constant.
        let b = BoxPlot::new(sample.clone()).unwrap();
        prop_assert_eq!(b.median, c);
        prop_assert_eq!(b.lower_whisker, c);
        prop_assert_eq!(b.upper_whisker, c);
        prop_assert!(b.outliers.is_empty());
        // Percentiles are the constant at every level.
        prop_assert_eq!(percentile(&sample, p).unwrap(), c);
        // Correlation against a constant is undefined. Summation
        // rounding can leave a sub-ulp residual variance, in which case
        // the clamped result must still be a legal coefficient.
        if len >= 2 {
            match pearson(&sample, &sample) {
                Err(e) => prop_assert!(matches!(e, StatsError::ZeroVariance(_))),
                Ok(r) => prop_assert!((-1.0..=1.0).contains(&r)),
            }
            // The lenient wrapper used by the fig-7 pipeline never errors here.
            prop_assert!(pearson_or_zero(&sample, &sample).is_some());
        }
    }

    #[test]
    fn categorical_alias_tables_cover_all_indices(
        weights in prop::collection::vec(0.01f64..10.0, 1..24),
        seed in any::<u64>(),
    ) {
        let c = Categorical::new(&weights).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..64 {
            let idx = c.sample_index(&mut rng);
            prop_assert!(idx < weights.len());
        }
    }
}
