//! Workload-aware allocation-failure risk prediction (the Insight 2
//! implication for the private cloud): bursty large deployments against
//! near-full clusters are where allocation failures concentrate.

use serde::{Deserialize, Serialize};

/// Features describing one upcoming deployment against one cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocFailureFeatures {
    /// Cluster core-allocation ratio right now, in `[0, 1]`.
    pub allocation_ratio: f64,
    /// Requested cores as a fraction of the cluster's total cores.
    pub request_fraction: f64,
    /// Burstiness (coefficient of variation of the tenant's hourly
    /// creations; private-cloud tenants are high).
    pub creation_cv: f64,
    /// Fraction of the cluster's racks already saturated for this
    /// service under the spreading rule, in `[0, 1]`.
    pub spreading_pressure: f64,
}

/// Logistic allocation-failure risk model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AllocFailurePredictor {
    bias: f64,
    w_allocation: f64,
    w_request: f64,
    w_cv: f64,
    w_spreading: f64,
}

impl Default for AllocFailurePredictor {
    /// Hand-fitted weights: risk stays < 5% below 60% allocation, climbs
    /// steeply past 85%, and large bursty requests amplify it.
    fn default() -> Self {
        Self {
            bias: -7.5,
            w_allocation: 7.5,
            w_request: 9.0,
            w_cv: 0.5,
            w_spreading: 3.0,
        }
    }
}

impl AllocFailurePredictor {
    /// Creates a predictor with explicit weights.
    #[must_use]
    pub const fn new(
        bias: f64,
        w_allocation: f64,
        w_request: f64,
        w_cv: f64,
        w_spreading: f64,
    ) -> Self {
        Self {
            bias,
            w_allocation,
            w_request,
            w_cv,
            w_spreading,
        }
    }

    /// Predicted probability that the deployment hits an allocation
    /// failure, in `[0, 1]`.
    #[must_use]
    pub fn failure_risk(&self, f: &AllocFailureFeatures) -> f64 {
        let z = self.bias
            + self.w_allocation * f.allocation_ratio.clamp(0.0, 1.0)
            + self.w_request * f.request_fraction.clamp(0.0, 1.0)
            + self.w_cv * f.creation_cv.clamp(0.0, 10.0)
            + self.w_spreading * f.spreading_pressure.clamp(0.0, 1.0);
        1.0 / (1.0 + (-z).exp())
    }

    /// `true` if the deployment should be rerouted (risk above
    /// `threshold`).
    #[must_use]
    pub fn should_reroute(&self, f: &AllocFailureFeatures, threshold: f64) -> bool {
        let reroute = self.failure_risk(f) >= threshold;
        if reroute {
            cloudscope_obs::counter("mgmt.allocfail.reroutes_flagged").inc();
        }
        reroute
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
    use cloudscope_model::ids::{ServiceId, VmId};
    use cloudscope_model::subscription::CloudKind;
    use cloudscope_model::topology::{NodeSku, Topology};
    use cloudscope_model::vm::{Priority, VmSize};

    fn features(alloc: f64, request: f64) -> AllocFailureFeatures {
        AllocFailureFeatures {
            allocation_ratio: alloc,
            request_fraction: request,
            creation_cv: 1.0,
            spreading_pressure: 0.0,
        }
    }

    #[test]
    fn risk_monotone_in_pressure() {
        let p = AllocFailurePredictor::default();
        let idle = p.failure_risk(&features(0.3, 0.02));
        let busy = p.failure_risk(&features(0.92, 0.02));
        let busy_big = p.failure_risk(&features(0.92, 0.2));
        assert!(idle < 0.05, "idle risk {idle}");
        assert!(busy > idle);
        assert!(busy_big > busy);
    }

    #[test]
    fn reroute_threshold() {
        let p = AllocFailurePredictor::default();
        assert!(!p.should_reroute(&features(0.3, 0.02), 0.5));
        assert!(p.should_reroute(&features(0.97, 0.3), 0.5));
    }

    #[test]
    fn reroute_threshold_boundary_is_inclusive() {
        let p = AllocFailurePredictor::default();
        let f = features(0.8, 0.1);
        let risk = p.failure_risk(&f);
        // Exactly at the threshold: reroute (>= semantics).
        assert!(p.should_reroute(&f, risk));
        // The next representable threshold above the risk: no reroute.
        assert!(!p.should_reroute(&f, risk + f64::EPSILON));
        // Degenerate thresholds bracket every risk.
        assert!(p.should_reroute(&f, 0.0));
        assert!(!p.should_reroute(&f, 1.1));
    }

    /// The predictor's ranking must agree with failure rates observed on
    /// the real allocator substrate.
    #[test]
    fn ranking_agrees_with_simulated_failures() {
        let mut b = Topology::builder();
        let r = b.add_region("x", 0, "US");
        let d = b.add_datacenter(r);
        let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(16, 128.0), 2, 4);
        let topo = b.build();

        let observed_failure_rate = |fill: usize| -> f64 {
            let mut alloc = ClusterAllocator::new(
                topo.cluster(c).unwrap(),
                PlacementPolicy::BestFit,
                SpreadingRule::default(),
            );
            // Pre-fill `fill` 16-core VMs (capacity: 8 nodes).
            for i in 0..fill {
                alloc
                    .place(PlacementRequest {
                        vm: VmId::new(i as u64),
                        size: VmSize::new(16, 128.0),
                        service: ServiceId::new(0),
                        priority: Priority::OnDemand,
                    })
                    .unwrap();
            }
            // Burst of 6 four-core VMs.
            let mut failures = 0;
            for i in 0..6u64 {
                if alloc
                    .place(PlacementRequest {
                        vm: VmId::new(1000 + i),
                        size: VmSize::new(4, 32.0),
                        service: ServiceId::new(1),
                        priority: Priority::OnDemand,
                    })
                    .is_err()
                {
                    failures += 1;
                }
            }
            f64::from(failures) / 6.0
        };

        let predictor = AllocFailurePredictor::default();
        let mut last_risk = -1.0;
        let mut last_observed = -1.0;
        for fill in [2usize, 6, 8] {
            let alloc_ratio = fill as f64 / 8.0;
            let risk = predictor.failure_risk(&features(alloc_ratio, 24.0 / 128.0));
            let observed = observed_failure_rate(fill);
            assert!(risk >= last_risk, "risk must rise with fill");
            assert!(observed >= last_observed, "observed rises with fill");
            last_risk = risk;
            last_observed = observed;
        }
        // At full fill both the model and the simulator say "certain
        // failure" (relative to the empty case).
        assert!(last_observed > 0.9);
        assert!(last_risk > 0.5);
    }
}
