//! Concrete RNGs: [`StdRng`], a xoshiro256++ generator.

use crate::{RngCore, SeedableRng};

/// One SplitMix64 step, used to expand a `u64` seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna), a fast
/// generator with 256 bits of state that passes BigCrush. Not
/// bit-compatible with upstream `rand`'s ChaCha12-based `StdRng`; the
/// workspace only relies on seed-determinism.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    s: [u64; 4],
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (i, word) in s.iter_mut().enumerate() {
            let mut bytes = [0u8; 8];
            bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
            *word = u64::from_le_bytes(bytes);
        }
        if s == [0; 4] {
            // All-zero state is a fixed point of xoshiro; remap it.
            return Self::seed_from_u64(0);
        }
        Self { s }
    }

    fn seed_from_u64(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        Self { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_bytes_do_not_wedge() {
        let mut rng = StdRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }

    #[test]
    fn from_seed_uses_all_bytes() {
        let mut a = [1u8; 32];
        let mut b = [1u8; 32];
        b[31] = 2;
        let x = StdRng::from_seed(a).next_u64();
        let y = StdRng::from_seed(b).next_u64();
        assert_ne!(x, y);
        a[31] = 2;
        assert_eq!(StdRng::from_seed(a).next_u64(), y);
    }
}
