//! The policy engine: each management policy consumes the knowledge base
//! and emits typed recommendations — the "abstract out the common
//! optimization policies and feed them from a centralized workload
//! knowledge base" architecture of the paper's Section V.

use crate::spot::spot_candidates;
use cloudscope_kb::{KbQuery, KnowledgeBase};
use cloudscope_model::prelude::*;
use serde::{Deserialize, Serialize};

/// A typed management recommendation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Recommendation {
    /// Move the subscription's short-lived VMs onto spot capacity.
    AdoptSpot {
        /// The subscription.
        subscription: SubscriptionId,
        /// VMs eligible.
        vm_count: usize,
    },
    /// Enroll the subscription's pool in chance-constrained
    /// over-subscription.
    Oversubscribe {
        /// The subscription.
        subscription: SubscriptionId,
        /// Cores it currently reserves.
        cores: u64,
    },
    /// The subscription is region-agnostic: a candidate for regional
    /// capacity balancing.
    MarkShiftable {
        /// The subscription.
        subscription: SubscriptionId,
    },
    /// Hold pre-provisioned headroom for hour-mark peaks.
    PreProvision {
        /// The subscription.
        subscription: SubscriptionId,
    },
}

/// A management policy: reads the knowledge base, emits recommendations.
pub trait Policy {
    /// The policy's short name (for reports).
    fn name(&self) -> &'static str;
    /// Produces this policy's recommendations.
    fn recommend(&self, kb: &KnowledgeBase) -> Vec<Recommendation>;
}

/// Spot adoption for short-lived public-cloud workloads (Insight 2).
#[derive(Debug, Clone, Copy, Default)]
pub struct SpotAdoptionPolicy {
    /// Only recommend for fleets at least this large.
    pub min_vms: usize,
}

impl Policy for SpotAdoptionPolicy {
    fn name(&self) -> &'static str {
        "spot-adoption"
    }

    fn recommend(&self, kb: &KnowledgeBase) -> Vec<Recommendation> {
        spot_candidates(kb)
            .into_iter()
            .filter(|k| k.vm_count >= self.min_vms)
            .map(|k| Recommendation::AdoptSpot {
                subscription: k.subscription,
                vm_count: k.vm_count,
            })
            .collect()
    }
}

/// Over-subscription enrollment for stable workloads (Insight 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct OversubscriptionPolicy;

impl Policy for OversubscriptionPolicy {
    fn name(&self) -> &'static str {
        "oversubscription"
    }

    fn recommend(&self, kb: &KnowledgeBase) -> Vec<Recommendation> {
        // One index walk per cloud; no entry is cloned — the fold reads
        // the two fields a recommendation carries straight off the
        // borrowed entries.
        CloudKind::BOTH
            .iter()
            .flat_map(|&cloud| {
                KbQuery::oversubscription_candidates(cloud).fold(kb, Vec::new(), |mut recs, k| {
                    recs.push(Recommendation::Oversubscribe {
                        subscription: k.subscription,
                        cores: k.cores,
                    });
                    recs
                })
            })
            .collect()
    }
}

/// Region-agnostic marking for capacity balancing (Insight 4).
#[derive(Debug, Clone, Copy, Default)]
pub struct ShiftabilityPolicy;

impl Policy for ShiftabilityPolicy {
    fn name(&self) -> &'static str {
        "shiftability"
    }

    fn recommend(&self, kb: &KnowledgeBase) -> Vec<Recommendation> {
        KbQuery::shiftable().fold(kb, Vec::new(), |mut recs, k| {
            recs.push(Recommendation::MarkShiftable {
                subscription: k.subscription,
            });
            recs
        })
    }
}

/// Pre-provisioning for hourly-peak workloads (Insight 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct PreProvisionPolicy;

impl Policy for PreProvisionPolicy {
    fn name(&self) -> &'static str {
        "pre-provision"
    }

    fn recommend(&self, kb: &KnowledgeBase) -> Vec<Recommendation> {
        KbQuery::matching(cloudscope_kb::WorkloadKnowledge::needs_peak_headroom).fold(
            kb,
            Vec::new(),
            |mut recs, k| {
                recs.push(Recommendation::PreProvision {
                    subscription: k.subscription,
                });
                recs
            },
        )
    }
}

/// Runs a set of policies over the knowledge base.
#[derive(Default)]
pub struct PolicyEngine {
    policies: Vec<Box<dyn Policy + Send + Sync>>,
}

impl std::fmt::Debug for PolicyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyEngine")
            .field(
                "policies",
                &self.policies.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl PolicyEngine {
    /// Creates an engine with the four standard policies.
    #[must_use]
    pub fn standard() -> Self {
        let mut engine = Self::default();
        engine.register(Box::new(SpotAdoptionPolicy { min_vms: 1 }));
        engine.register(Box::new(OversubscriptionPolicy));
        engine.register(Box::new(ShiftabilityPolicy));
        engine.register(Box::new(PreProvisionPolicy));
        engine
    }

    /// Adds a policy.
    pub fn register(&mut self, policy: Box<dyn Policy + Send + Sync>) {
        self.policies.push(policy);
    }

    /// Runs every policy, returning `(policy name, recommendations)`.
    #[must_use]
    pub fn run(&self, kb: &KnowledgeBase) -> Vec<(&'static str, Vec<Recommendation>)> {
        self.policies
            .iter()
            .map(|p| (p.name(), p.recommend(kb)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_analysis::UtilizationPattern;
    use cloudscope_kb::{LifetimeClass, WorkloadKnowledge};

    fn entry(
        id: u32,
        cloud: CloudKind,
        pattern: UtilizationPattern,
        lifetime: LifetimeClass,
        agnostic: Option<bool>,
    ) -> WorkloadKnowledge {
        WorkloadKnowledge {
            subscription: SubscriptionId::new(id),
            cloud,
            pattern: Some(pattern),
            lifetime,
            mean_util: 15.0,
            p95_util: 30.0,
            util_cv: 0.3,
            regions: 2,
            region_agnostic: agnostic,
            vm_count: 5,
            cores: 20,
            updated_at: SimTime::ZERO,
        }
    }

    fn populated_kb() -> KnowledgeBase {
        let kb = KnowledgeBase::new();
        kb.feed([
            entry(
                0,
                CloudKind::Public,
                UtilizationPattern::Stable,
                LifetimeClass::MostlyShort,
                None,
            ),
            entry(
                1,
                CloudKind::Private,
                UtilizationPattern::Diurnal,
                LifetimeClass::MostlyLong,
                Some(true),
            ),
            entry(
                2,
                CloudKind::Private,
                UtilizationPattern::HourlyPeak,
                LifetimeClass::MostlyLong,
                Some(false),
            ),
            entry(
                3,
                CloudKind::Public,
                UtilizationPattern::Irregular,
                LifetimeClass::Mixed,
                None,
            ),
        ]);
        kb
    }

    #[test]
    fn engine_routes_each_workload_to_the_right_policy() {
        let kb = populated_kb();
        let results = PolicyEngine::standard().run(&kb);
        let by_name: std::collections::HashMap<_, _> = results.into_iter().collect();
        assert_eq!(by_name["spot-adoption"].len(), 1);
        assert!(matches!(
            by_name["spot-adoption"][0],
            Recommendation::AdoptSpot { subscription, .. } if subscription == SubscriptionId::new(0)
        ));
        assert_eq!(by_name["oversubscription"].len(), 1);
        assert_eq!(by_name["shiftability"].len(), 1);
        assert!(matches!(
            by_name["shiftability"][0],
            Recommendation::MarkShiftable { subscription } if subscription == SubscriptionId::new(1)
        ));
        assert_eq!(by_name["pre-provision"].len(), 1);
        assert!(matches!(
            by_name["pre-provision"][0],
            Recommendation::PreProvision { subscription } if subscription == SubscriptionId::new(2)
        ));
    }

    #[test]
    fn min_vms_filter() {
        let kb = populated_kb();
        let picky = SpotAdoptionPolicy { min_vms: 100 };
        assert!(picky.recommend(&kb).is_empty());
    }

    #[test]
    fn empty_kb_yields_no_recommendations() {
        let kb = KnowledgeBase::new();
        for (_, recs) in PolicyEngine::standard().run(&kb) {
            assert!(recs.is_empty());
        }
    }

    #[test]
    fn debug_lists_policies() {
        let engine = PolicyEngine::standard();
        let dbg = format!("{engine:?}");
        assert!(dbg.contains("spot-adoption"));
        assert!(dbg.contains("shiftability"));
    }
}
