//! The out-of-core telemetry source: a [`TelemetrySource`] that loads
//! per-VM utilization series from the chunk store on demand, through a
//! bounded LRU cache of decoded telemetry chunks fed by a pipelined
//! prefetcher.
//!
//! A `Trace` re-pointed at this source keeps only VM metadata and a
//! presence bitmap resident; every analysis that calls `Trace::util`
//! pulls series through here and observes bit-identical samples.
//!
//! # Pipelined reads
//!
//! An id-ordered sweep consumes each `(region, day)` lane's chunks in
//! ascending sequence order, so the next chunk a lane will need is the
//! successor of the one being demanded now. Three mechanisms overlap
//! and shrink that work:
//!
//! - **Readahead planner**: every demand for chunk `i` plans the next
//!   [`PrefetchConfig::depth`] chunks along `i`'s lane chain and hands
//!   them to background decode workers, bounded by a decoded-bytes
//!   window ([`PrefetchConfig::window_bytes`]) — when the window is
//!   full no new prefetch is issued (backpressure), and the planner
//!   simply retries at the next demand.
//! - **Rendezvous**: demand for a chunk that is already decoding waits
//!   on the in-flight slot instead of duplicating the decode. A failed
//!   decode parks a typed [`StoreError`] in the slot; every consumer of
//!   that chunk — present and future — receives it. Corruption is
//!   never silent and never reordered past the demand that hit it.
//! - **Retire-aware eviction**: a chunk whose `max_vm` is below the
//!   sweep frontier (the highest VM id demanded so far) cannot be
//!   demanded again by an id-ordered sweep, so eviction removes retired
//!   chunks first and falls back to strict LRU order only when nothing
//!   has retired. This keeps sparse lanes' live chunks cached across
//!   lane transitions without growing the cache.
//!
//! Results are byte-identical to the serial reader at any worker
//! count, prefetch depth, or cache size: the planner only changes
//! *when* a chunk decodes, never *what* a demand returns.
//!
//! Corruption discovered during a lazy load panics with the full
//! [`StoreError`] display (file and chunk named): `TelemetrySource::
//! load` returns `Option`, and silently mapping a corrupt chunk to
//! "no telemetry" would be exactly the quiet data loss this store
//! exists to prevent. Fail-fast paths that want the typed error use
//! [`StoreTelemetry::try_load`].

use crate::chunk::ChunkKind;
use crate::columns::{Batch, Projection};
use crate::error::StoreError;
use crate::manifest::ChunkEntry;
use crate::reader::{assemble_series, ScanFilter, TraceReader};
use bytes::Bytes;
use cloudscope_model::ids::VmId;
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::trace::TelemetrySource;
use cloudscope_obs::{Counter, Gauge, Histogram};
use cloudscope_par::{Parallelism, PoolHandle, TaskPool};
use std::collections::HashMap;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Tuning for the pipelined read path.
#[derive(Debug, Clone, Copy)]
pub struct PrefetchConfig {
    /// Background decode workers. `0` auto-sizes to the machine: one
    /// worker per available core, capped at 4.
    pub workers: usize,
    /// How many chunks ahead to plan along each lane chain. `0`
    /// disables prefetching entirely (pure demand path).
    pub depth: usize,
    /// Decoded-bytes budget for in-flight and not-yet-consumed
    /// prefetches. A full window applies backpressure: no new prefetch
    /// is issued until a consumer drains a slot.
    pub window_bytes: usize,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        Self {
            workers: 0,
            depth: 2,
            window_bytes: 2 << 20,
        }
    }
}

impl PrefetchConfig {
    /// A configuration with prefetching disabled.
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            workers: 0,
            depth: 0,
            window_bytes: 0,
        }
    }

    fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
            .min(4)
    }
}

/// One decoded telemetry chunk held by the cache. Row order matches
/// the chunk's id column (held separately in the id index).
#[derive(Debug)]
struct CachedChunk {
    starts: Vec<i64>,
    samples: Vec<Bytes>,
}

impl CachedChunk {
    /// Approximate decoded footprint, charged against the window.
    fn decoded_bytes(&self) -> usize {
        self.starts.len() * (std::mem::size_of::<i64>() + std::mem::size_of::<Bytes>())
            + self.samples.iter().map(|b| b.len()).sum::<usize>()
    }
}

/// Least-recently-used cache of decoded telemetry chunks, keyed by
/// the chunk's index in the telemetry entry table.
#[derive(Debug, Default)]
struct LruCache {
    /// Front = least recently used.
    entries: Vec<(usize, Arc<CachedChunk>)>,
}

impl LruCache {
    fn get(&mut self, key: usize) -> Option<Arc<CachedChunk>> {
        let pos = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(pos);
        let chunk = Arc::clone(&entry.1);
        self.entries.push(entry);
        Some(chunk)
    }

    fn contains(&self, key: usize) -> bool {
        self.entries.iter().any(|(k, _)| *k == key)
    }
}

/// Where a rendezvous slot came from — only prefetch-issued slots
/// count toward the `store.prefetch.*` hit/wasted reconciliation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOrigin {
    Prefetch,
    Demand,
}

/// A chunk decode in flight (or parked): the rendezvous point between
/// the planner, the decode workers, and demand.
#[derive(Debug)]
enum SlotState {
    Running,
    Ready(Arc<CachedChunk>),
    Failed(Arc<StoreError>),
}

#[derive(Debug)]
struct Slot {
    state: SlotState,
    origin: SlotOrigin,
    /// Bytes currently charged against the window for this slot — an
    /// estimate while `Running`, corrected to the actual decoded size
    /// at `Ready`, zeroed at `Failed`.
    accounted: usize,
}

/// Mutable pipeline state, guarded by one mutex.
#[derive(Debug, Default)]
struct State {
    lru: LruCache,
    slots: HashMap<usize, Slot>,
    /// Bytes charged for all live slots.
    window_used: usize,
    /// Running prefetch slots (the `store.prefetch.in_flight` gauge).
    running_prefetches: usize,
    /// Highest VM id demanded so far — the sweep frontier that lets
    /// eviction retire chunks no id-ordered sweep will revisit.
    frontier: u64,
}

/// Metric handles resolved once at open time, so every recording —
/// including those from pool worker threads and the final drop —
/// lands in the opener's registry, and every metric exists (at zero)
/// from the moment the source opens.
#[derive(Debug)]
struct Metrics {
    cache_hits: Counter,
    cache_misses: Counter,
    evictions: Counter,
    series_loaded: Counter,
    prefetch_issued: Counter,
    prefetch_hits: Counter,
    prefetch_wasted: Counter,
    prefetch_in_flight: Gauge,
    prefetch_decode_ns: Histogram,
}

impl Metrics {
    fn resolve() -> Self {
        let reg = cloudscope_obs::current();
        Self {
            cache_hits: reg.counter("store.cache.hits"),
            cache_misses: reg.counter("store.cache.misses"),
            evictions: reg.counter("store.cache.evictions"),
            series_loaded: reg.counter("store.read.series_loaded"),
            prefetch_issued: reg.counter("store.prefetch.issued"),
            prefetch_hits: reg.counter("store.prefetch.hits"),
            prefetch_wasted: reg.counter("store.prefetch.wasted"),
            prefetch_in_flight: reg.gauge("store.prefetch.in_flight"),
            prefetch_decode_ns: reg.histogram("store.prefetch.decode_ns"),
        }
    }
}

/// Everything the pipeline shares between the demand thread and the
/// decode workers. Worker jobs hold only a [`Weak`] reference, so the
/// pool can always be joined without a job keeping `Inner` alive.
#[derive(Debug)]
struct Inner {
    reader: TraceReader,
    /// Telemetry chunk entries, in manifest order.
    entries: Vec<ChunkEntry>,
    /// Per-chunk sorted id membership. Populated by any full decode of
    /// the chunk (prefetched or demanded) or, when presence is probed
    /// before the chunk body is needed, by a cheap ids-only projected
    /// read. VM ids are contiguous per *subscription*, not per region,
    /// so the `min_vm..max_vm` ranges of different regions' chunks
    /// interleave — without this index every lookup would decompress
    /// each range-overlapping chunk just to miss its binary search.
    /// The index is the only per-chunk state that stays resident:
    /// 8 bytes per telemetry run, ~1% of the samples.
    ids: Vec<OnceLock<Arc<Vec<VmId>>>>,
    /// `lane_next[i]` = the chunk after `i` in `i`'s (region, day)
    /// lane, in ascending sequence order — the readahead chain.
    lane_next: Vec<Option<usize>>,
    /// Entry indices per region, in manifest order.
    by_region: HashMap<u32, Vec<usize>>,
    /// Dense VM-id → region map, when the opener already holds the
    /// metadata (the `read_trace` path always does). A VM's telemetry
    /// lives only in its own region's lanes, so with this map a lookup
    /// probes ~`days` chunks instead of every chunk whose interleaved
    /// `min_vm..max_vm` range happens to cover the id — which also
    /// stops cross-region probes from forcing ids-only reads of chunks
    /// that were about to be prefetched anyway.
    vm_regions: OnceLock<Vec<u32>>,
    cache_chunks: usize,
    cfg: PrefetchConfig,
    par: Parallelism,
    metrics: Metrics,
    state: Mutex<State>,
    /// Signalled whenever a slot transitions out of `Running`.
    ready: Condvar,
}

/// Lazy telemetry over a committed trace directory.
#[derive(Debug)]
pub struct StoreTelemetry {
    /// Declared (and therefore dropped) before `inner`: dropping the
    /// pool joins the workers, so no decode job can outlive the state
    /// it records into.
    pool: Option<TaskPool>,
    inner: Arc<Inner>,
}

/// Rebuilds a [`StoreError`] for a second consumer of a parked
/// failure. `StoreError` holds a non-clonable `std::io::Error`, so the
/// I/O variant is reconstructed from its kind and message. Variants
/// are built directly — the corruption counter was already bumped when
/// the original error was raised.
fn clone_error(e: &StoreError) -> StoreError {
    match e {
        StoreError::Io { file, source } => StoreError::Io {
            file: file.clone(),
            source: std::io::Error::new(source.kind(), source.to_string()),
        },
        StoreError::Malformed { file, reason } => StoreError::Malformed {
            file: file.clone(),
            reason: reason.clone(),
        },
        StoreError::Corrupt {
            file,
            chunk,
            reason,
        } => StoreError::Corrupt {
            file: file.clone(),
            chunk: chunk.clone(),
            reason: reason.clone(),
        },
        StoreError::Missing { file, chunk } => StoreError::Missing {
            file: file.clone(),
            chunk: chunk.clone(),
        },
        StoreError::Inconsistent(reason) => StoreError::Inconsistent(reason.clone()),
    }
}

impl StoreTelemetry {
    /// Opens the store at `dir` as a telemetry source with a cache of
    /// at most `cache_chunks` decoded chunks (minimum 1) and default
    /// prefetching.
    ///
    /// `cache_chunks == 0` auto-sizes the cache to the id-ordered sweep
    /// working set: one chunk per distinct (region, day) lane plus one.
    /// Chunks within a lane cover ascending id ranges, so an analysis
    /// walking VMs in id order needs the current chunk of every lane at
    /// once but never returns to an earlier one — the auto size is
    /// bounded by trace *geometry* (regions × days), independent of how
    /// many chunks or samples the store holds.
    ///
    /// # Errors
    /// Any [`StoreError`] from [`TraceReader::open`].
    pub fn open(dir: impl AsRef<Path>, cache_chunks: usize) -> Result<Self, StoreError> {
        Self::open_with(
            dir,
            cache_chunks,
            PrefetchConfig::default(),
            Parallelism::default(),
        )
    }

    /// [`StoreTelemetry::open`] with explicit pipeline tuning: `cfg`
    /// shapes the prefetcher, `par` fans out sub-block decompression
    /// inside each chunk decode. Every combination returns
    /// byte-identical series.
    ///
    /// # Errors
    /// Any [`StoreError`] from [`TraceReader::open`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        cache_chunks: usize,
        cfg: PrefetchConfig,
        par: Parallelism,
    ) -> Result<Self, StoreError> {
        let reader = TraceReader::open(dir.as_ref())?;
        let entries: Vec<ChunkEntry> = reader
            .chunks(ScanFilter::all().kind(ChunkKind::Telemetry))
            .cloned()
            .collect();
        let cache_chunks = if cache_chunks == 0 {
            let lanes: std::collections::BTreeSet<(u32, u8)> = entries
                .iter()
                .map(|e| (e.meta.region, e.meta.day))
                .collect();
            lanes.len() + 1
        } else {
            cache_chunks
        };

        // Chain each lane's chunks in ascending sequence order.
        let mut lane_order: HashMap<(u32, u8), Vec<usize>> = HashMap::new();
        for (idx, entry) in entries.iter().enumerate() {
            lane_order
                .entry((entry.meta.region, entry.meta.day))
                .or_default()
                .push(idx);
        }
        let mut lane_next: Vec<Option<usize>> = vec![None; entries.len()];
        for lane in lane_order.values_mut() {
            lane.sort_by_key(|&i| entries[i].meta.seq);
            for pair in lane.windows(2) {
                lane_next[pair[0]] = Some(pair[1]);
            }
        }
        let mut by_region: HashMap<u32, Vec<usize>> = HashMap::new();
        for (idx, entry) in entries.iter().enumerate() {
            by_region.entry(entry.meta.region).or_default().push(idx);
        }

        let ids = entries.iter().map(|_| OnceLock::new()).collect();
        let inner = Arc::new(Inner {
            reader,
            entries,
            ids,
            lane_next,
            by_region,
            vm_regions: OnceLock::new(),
            cache_chunks: cache_chunks.max(1),
            cfg,
            par,
            metrics: Metrics::resolve(),
            state: Mutex::new(State::default()),
            ready: Condvar::new(),
        });
        let pool = (cfg.depth > 0).then(|| TaskPool::new(cfg.resolved_workers()));
        Ok(Self { pool, inner })
    }

    /// Decoded-chunk cache capacity.
    #[must_use]
    pub fn cache_capacity(&self) -> usize {
        self.inner.cache_chunks
    }

    /// The runs for `id`, or the typed error naming the chunk that
    /// failed — including a failure first hit by a background prefetch
    /// worker, which parks in the chunk's slot and surfaces here on the
    /// consuming thread.
    ///
    /// # Errors
    /// Any [`StoreError`] from chunk I/O or validation.
    pub fn try_load(&self, id: VmId) -> Result<Option<UtilSeries>, StoreError> {
        let mut runs = self.load_runs(id)?;
        if runs.is_empty() {
            return Ok(None);
        }
        let series = assemble_series(id.index(), &mut runs).map_err(StoreError::Inconsistent)?;
        self.inner.metrics.series_loaded.inc();
        Ok(Some(series))
    }

    /// Restricts lookups for each VM to its own region's lanes. The
    /// map must be dense (index = VM id); `read_trace` derives it from
    /// the metadata chunks it decodes anyway, so attaching costs no
    /// extra I/O. First attach wins; ids beyond the map fall back to
    /// the all-regions probe.
    pub(crate) fn attach_vm_regions(&self, regions: Vec<u32>) {
        let _ = self.inner.vm_regions.set(regions);
    }

    /// The runs for `id`. Chunks are pruned to the VM's region (when
    /// the region map is attached), then by the manifest id range, then
    /// by the id index; the full chunk decodes only when the VM
    /// actually has a run in it (rows are sorted by id, at most one
    /// per chunk).
    fn load_runs(&self, id: VmId) -> Result<Vec<(i64, Bytes)>, StoreError> {
        let raw = id.index();
        let region_entries = self
            .inner
            .vm_regions
            .get()
            .and_then(|regions| regions.get(usize::try_from(raw).ok()?))
            .and_then(|region| self.inner.by_region.get(region));
        let probe = |idx: usize, runs: &mut Vec<(i64, Bytes)>| -> Result<(), StoreError> {
            let entry = &self.inner.entries[idx];
            if raw < entry.meta.min_vm || raw > entry.meta.max_vm {
                return Ok(());
            }
            let Ok(row) = self.inner.chunk_ids(idx)?.binary_search(&id) else {
                return Ok(());
            };
            let chunk = self.inner.demand_chunk(idx, raw, self.pool.as_ref())?;
            runs.push((chunk.starts[row], chunk.samples[row].clone()));
            Ok(())
        };
        let mut runs = Vec::new();
        match region_entries {
            Some(indices) => {
                for &idx in indices {
                    probe(idx, &mut runs)?;
                }
            }
            None => {
                for idx in 0..self.inner.entries.len() {
                    probe(idx, &mut runs)?;
                }
            }
        }
        Ok(runs)
    }
}

impl Drop for StoreTelemetry {
    fn drop(&mut self) {
        // Join the workers first so no job mutates state concurrently.
        self.pool.take();
        let mut state = self.inner.state.lock().expect("store state lock");
        let wasted = state
            .slots
            .values()
            .filter(|s| s.origin == SlotOrigin::Prefetch)
            .count();
        self.inner.metrics.prefetch_wasted.add(wasted as u64);
        state.slots.clear();
        state.running_prefetches = 0;
        self.inner.metrics.prefetch_in_flight.set(0.0);
    }
}

impl Inner {
    /// The sorted id column of the telemetry chunk at `idx`. Served
    /// from the resident index when any earlier full decode populated
    /// it; otherwise loaded through an ids-only projected read (the id
    /// column decompresses alone, without the sample payloads). A lost
    /// set race only duplicates that one cheap read.
    fn chunk_ids(&self, idx: usize) -> Result<Arc<Vec<VmId>>, StoreError> {
        if let Some(ids) = self.ids[idx].get() {
            return Ok(Arc::clone(ids));
        }
        // A decode already in flight will populate the index as a side
        // effect — wait for it instead of re-reading the file for the
        // id column alone. (A parked failure falls through: the
        // ids-only read below surfaces the same typed error.)
        {
            let mut state = self.state.lock().expect("store state lock");
            while matches!(
                state.slots.get(&idx).map(|s| &s.state),
                Some(SlotState::Running)
            ) {
                state = self.ready.wait(state).expect("store state lock");
            }
        }
        if let Some(ids) = self.ids[idx].get() {
            return Ok(Arc::clone(ids));
        }
        let batch = match self
            .reader
            .read_chunk(&self.entries[idx], Projection::columns(&[]))?
        {
            Batch::Telemetry(b) => b,
            Batch::VmMeta(_) => unreachable!("entry table holds telemetry chunks only"),
        };
        let ids = Arc::new(batch.ids);
        let _ = self.ids[idx].set(Arc::clone(&ids));
        Ok(ids)
    }

    /// Fully decodes the chunk at `idx` (all columns), populating the
    /// resident id index as a side effect. Runs on demand threads and
    /// on prefetch workers alike.
    fn decode_chunk(&self, idx: usize) -> Result<Arc<CachedChunk>, StoreError> {
        let batch = match self.reader.read_chunk_with(
            &self.entries[idx],
            Projection::all(),
            Some(&self.par),
        )? {
            Batch::Telemetry(b) => b,
            Batch::VmMeta(_) => unreachable!("entry table holds telemetry chunks only"),
        };
        let starts = batch.starts.ok_or_else(|| {
            StoreError::Inconsistent(format!("chunk {}: no start column", batch.chunk))
        })?;
        let samples = batch.samples.ok_or_else(|| {
            StoreError::Inconsistent(format!("chunk {}: no samples column", batch.chunk))
        })?;
        let _ = self.ids[idx].set(Arc::new(batch.ids));
        Ok(Arc::new(CachedChunk {
            starts: starts.into_iter().map(|t| t.minutes()).collect(),
            samples,
        }))
    }

    /// Window charge for a not-yet-decoded chunk: the compressed file
    /// length scaled by a conservative expansion factor. Corrected to
    /// the actual decoded size when the slot turns `Ready`.
    fn estimate_decoded(&self, idx: usize) -> usize {
        (self.entries[idx].file_len as usize).saturating_mul(2)
    }

    /// Inserts a decoded chunk, evicting retired chunks first (their
    /// `max_vm` is behind the sweep frontier, so an id-ordered sweep
    /// cannot demand them again) and falling back to LRU order.
    fn insert_into_cache(&self, state: &mut State, idx: usize, chunk: Arc<CachedChunk>) {
        state.lru.entries.push((idx, chunk));
        while state.lru.entries.len() > self.cache_chunks {
            let victim = state
                .lru
                .entries
                .iter()
                .position(|&(k, _)| self.entries[k].meta.max_vm < state.frontier)
                .unwrap_or(0);
            state.lru.entries.remove(victim);
            self.metrics.evictions.inc();
        }
    }

    /// Plans prefetches for the successors of `idx` along its lane
    /// chain, bounded by depth and the decoded-bytes window.
    fn plan_after(self: &Arc<Self>, state: &mut State, idx: usize, pool: &PoolHandle) {
        let mut next = self.lane_next[idx];
        for _ in 0..self.cfg.depth {
            let Some(candidate) = next else { break };
            if state.lru.contains(candidate) || state.slots.contains_key(&candidate) {
                next = self.lane_next[candidate];
                continue;
            }
            let estimate = self.estimate_decoded(candidate);
            if state.window_used + estimate > self.cfg.window_bytes {
                break; // backpressure: the window is full
            }
            state.slots.insert(
                candidate,
                Slot {
                    state: SlotState::Running,
                    origin: SlotOrigin::Prefetch,
                    accounted: estimate,
                },
            );
            state.window_used += estimate;
            state.running_prefetches += 1;
            self.metrics.prefetch_issued.inc();
            self.metrics
                .prefetch_in_flight
                .set(state.running_prefetches as f64);
            pool.submit({
                let weak = Arc::downgrade(self);
                move || {
                    if let Some(inner) = weak.upgrade() {
                        inner.run_prefetch(candidate);
                    }
                }
            });
            next = self.lane_next[candidate];
        }
    }

    /// A decode worker's job: decode `idx` and fulfil its slot.
    fn run_prefetch(self: &Arc<Self>, idx: usize) {
        let started = Instant::now();
        let result = self.decode_chunk(idx);
        let elapsed = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.metrics.prefetch_decode_ns.observe(elapsed);
        let mut state = self.state.lock().expect("store state lock");
        let Some(slot) = state.slots.get_mut(&idx) else {
            return; // cancelled at shutdown
        };
        let accounted = slot.accounted;
        match result {
            Ok(chunk) => {
                let actual = chunk.decoded_bytes();
                slot.accounted = actual;
                slot.state = SlotState::Ready(chunk);
                state.window_used = state.window_used - accounted + actual;
            }
            Err(e) => {
                slot.accounted = 0;
                slot.state = SlotState::Failed(Arc::new(e));
                state.window_used -= accounted;
            }
        }
        state.running_prefetches -= 1;
        self.metrics
            .prefetch_in_flight
            .set(state.running_prefetches as f64);
        self.ready.notify_all();
    }

    /// Demand entry point: returns the decoded chunk at `idx`, serving
    /// from the cache, rendezvousing with an in-flight prefetch, or
    /// decoding on this thread — and plans readahead either way.
    /// `demand_vm` advances the sweep frontier for retire-aware
    /// eviction.
    fn demand_chunk(
        self: &Arc<Self>,
        idx: usize,
        demand_vm: u64,
        pool: Option<&TaskPool>,
    ) -> Result<Arc<CachedChunk>, StoreError> {
        let pool_handle = pool.map(TaskPool::handle);
        let mut state = self.state.lock().expect("store state lock");
        state.frontier = state.frontier.max(demand_vm);
        loop {
            if let Some(hit) = state.lru.get(idx) {
                self.metrics.cache_hits.inc();
                return Ok(hit);
            }
            match state.slots.get(&idx).map(|s| (&s.state, s.origin)) {
                Some((SlotState::Ready(_), origin)) => {
                    let slot = state.slots.remove(&idx).expect("slot present");
                    let SlotState::Ready(chunk) = slot.state else {
                        unreachable!("matched Ready above")
                    };
                    state.window_used -= slot.accounted;
                    self.metrics.cache_misses.inc();
                    if origin == SlotOrigin::Prefetch {
                        self.metrics.prefetch_hits.inc();
                    }
                    self.insert_into_cache(&mut state, idx, Arc::clone(&chunk));
                    if let Some(handle) = &pool_handle {
                        self.plan_after(&mut state, idx, handle);
                    }
                    return Ok(chunk);
                }
                Some((SlotState::Running, _)) => {
                    state = self.ready.wait(state).expect("store state lock");
                }
                Some((SlotState::Failed(e), _)) => {
                    // The slot keeps its parked error: every demand for
                    // this chunk fails the same way, loudly.
                    return Err(clone_error(e));
                }
                None => break,
            }
        }

        // Cold miss: rendezvous as a demand decode, plan readahead so
        // the workers run ahead while this thread decodes, then decode
        // here.
        self.metrics.cache_misses.inc();
        let estimate = self.estimate_decoded(idx);
        state.slots.insert(
            idx,
            Slot {
                state: SlotState::Running,
                origin: SlotOrigin::Demand,
                accounted: estimate,
            },
        );
        state.window_used += estimate;
        if let Some(handle) = &pool_handle {
            self.plan_after(&mut state, idx, handle);
        }
        drop(state);

        let result = self.decode_chunk(idx);
        let mut state = self.state.lock().expect("store state lock");
        let outcome = match result {
            Ok(chunk) => {
                let slot = state.slots.remove(&idx).expect("demand slot present");
                state.window_used -= slot.accounted;
                self.insert_into_cache(&mut state, idx, Arc::clone(&chunk));
                Ok(chunk)
            }
            Err(e) => {
                let shared = Arc::new(e);
                if let Some(slot) = state.slots.get_mut(&idx) {
                    let accounted = std::mem::take(&mut slot.accounted);
                    slot.state = SlotState::Failed(Arc::clone(&shared));
                    state.window_used -= accounted;
                }
                Err(clone_error(&shared))
            }
        };
        drop(state);
        self.ready.notify_all();
        outcome
    }
}

impl TelemetrySource for StoreTelemetry {
    /// Presence without materializing samples: manifest id-range
    /// pruning plus the resident id index. Only the ids-only projected
    /// read happens on a cold index — sample payloads never decompress.
    fn has(&self, id: VmId) -> bool {
        let raw = id.index();
        let probe = |idx: usize| {
            let entry = &self.inner.entries[idx];
            raw >= entry.meta.min_vm
                && raw <= entry.meta.max_vm
                && match self.inner.chunk_ids(idx) {
                    Ok(ids) => ids.binary_search(&id).is_ok(),
                    Err(e) => panic!("out-of-core telemetry presence check for {id} failed: {e}"),
                }
        };
        let region_entries = self
            .inner
            .vm_regions
            .get()
            .and_then(|regions| regions.get(usize::try_from(raw).ok()?))
            .and_then(|region| self.inner.by_region.get(region));
        match region_entries {
            Some(indices) => indices.iter().any(|&idx| probe(idx)),
            None => (0..self.inner.entries.len()).any(probe),
        }
    }

    fn load(&self, id: VmId) -> Option<UtilSeries> {
        match self.try_load(id) {
            Ok(series) => series,
            Err(e) => panic!("out-of-core telemetry load for {id} failed: {e}"),
        }
    }
}
