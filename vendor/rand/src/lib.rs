//! Offline stand-in for the `rand` crate, implementing the API subset the
//! cloudscope workspace uses: [`RngCore`], the [`Rng`] extension trait
//! (`random`, `random_range`, `random_bool`, `random_iter`),
//! [`SeedableRng`], [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64),
//! and [`seq::SliceRandom::shuffle`].
//!
//! The build environment has no network access to crates.io, so the real
//! `rand` cannot be fetched; this shim keeps the workspace self-contained.
//! Streams are high-quality and deterministic per seed, but are *not*
//! bit-compatible with upstream `rand` — nothing in the workspace depends
//! on upstream's exact sequences, only on seed-determinism.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from an RNG (the `StandardUniform`
/// distribution of upstream `rand`).
pub trait StandardRandom {
    /// Draws one uniform value.
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardRandom for f64 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardRandom for f32 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardRandom for u64 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardRandom for u32 {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardRandom for bool {
    fn standard_random<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types a uniform range sample can be drawn for, mirroring upstream's
/// `SampleUniform`. The blanket [`SampleRange`] impls below are over this
/// trait so type inference flows from the call site into range literals,
/// exactly as with upstream rand (e.g. `i64 + rng.random_range(-45..45)`
/// makes the literals `i64`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    ///
    /// # Panics
    /// Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` for `span > 0`, via Lemire's
/// multiply-shift method with rejection: map a 64-bit word `x` to
/// `(x * span) >> 64` and reject the `2^64 mod span` words that would
/// overweight the low residues. Expected rejections per draw < 1.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    if (m as u64) < span {
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::standard_random(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::standard_random(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f32::standard_random(rng) * (hi - lo)
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo <= hi, "cannot sample empty range");
        lo + f32::standard_random(rng) * (hi - lo)
    }
}

/// Ranges a uniform sample can be drawn from, mirroring upstream's
/// `SampleRange`.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(rng, lo, hi)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn random<T: StandardRandom>(&mut self) -> T {
        T::standard_random(self)
    }

    /// Draws a uniform value from `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        f64::standard_random(self) < p
    }

    /// Consumes the RNG into an infinite iterator of uniform draws.
    fn random_iter<T: StandardRandom>(self) -> RandomIter<Self, T>
    where
        Self: Sized,
    {
        RandomIter {
            rng: self,
            _marker: core::marker::PhantomData,
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Infinite iterator of uniform draws; see [`Rng::random_iter`].
#[derive(Debug, Clone)]
pub struct RandomIter<R, T> {
    rng: R,
    _marker: core::marker::PhantomData<T>,
}

impl<R: RngCore, T: StandardRandom> Iterator for RandomIter<R, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        Some(T::standard_random(&mut self.rng))
    }
}

/// RNGs constructible from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed type (fixed-length byte array upstream; kept simple here).
    type Seed;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = StdRng::seed_from_u64(9).random_iter().take(8).collect();
        let b: Vec<u64> = StdRng::seed_from_u64(9).random_iter().take(8).collect();
        let c: Vec<u64> = StdRng::seed_from_u64(10).random_iter().take(8).collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let i = rng.random_range(-45i64..45);
            assert!((-45..45).contains(&i));
            let u = rng.random_range(3usize..=7);
            assert!((3..=7).contains(&u));
        }
    }

    #[test]
    fn range_draws_cover_buckets_uniformly() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 3];
        for _ in 0..90_000 {
            counts[rng.random_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((f64::from(c) / 90_000.0 - 1.0 / 3.0).abs() < 0.01);
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        assert!((sum / f64::from(n) - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
