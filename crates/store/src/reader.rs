//! Streamed trace reading: manifest-driven chunk scans with column
//! projection and region/day predicate pushdown, plus full-trace
//! reconstruction in either resident or out-of-core telemetry mode.

use crate::blobs::{
    decode_presence, decode_subscriptions, decode_topology, BLOB_SUBSCRIPTIONS,
    BLOB_TELEMETRY_PRESENT, BLOB_TOPOLOGY,
};
use crate::chunk::{decode_chunk_file, ChunkKind};
use crate::columns::{decode_telemetry, decode_vm_meta, Batch, Projection};
use crate::crc::crc32;
use crate::error::StoreError;
use crate::manifest::{ChunkEntry, Manifest, MANIFEST_NAME};
use crate::source::StoreTelemetry;
use bytes::Bytes;
use cloudscope_model::subscription::Subscription;
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::time::{SimTime, SAMPLE_INTERVAL_MINUTES};
use cloudscope_model::trace::Trace;
use cloudscope_model::vm::VmRecord;
use cloudscope_obs::counter;
use cloudscope_par::Parallelism;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Predicate pushdown for a scan: only chunks matching every set
/// field are read (and decompressed) at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScanFilter {
    /// Restrict to one chunk kind.
    pub kind: Option<ChunkKind>,
    /// Restrict to one region.
    pub region: Option<u32>,
    /// Restrict to one trace-week day.
    pub day: Option<u8>,
    /// Restrict to days up to and including this one — the snapshot
    /// pushdown: a VM alive at time `t` was necessarily created on a
    /// (clamped) day `<= day_of(t)`, so chunks keyed by later creation
    /// days can be skipped without reading them.
    pub max_day: Option<u8>,
}

impl ScanFilter {
    /// Matches every chunk.
    #[must_use]
    pub fn all() -> Self {
        Self::default()
    }

    /// Restricts the filter to `kind`.
    #[must_use]
    pub fn kind(mut self, kind: ChunkKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restricts the filter to `region`.
    #[must_use]
    pub fn region(mut self, region: u32) -> Self {
        self.region = Some(region);
        self
    }

    /// Restricts the filter to `day`.
    #[must_use]
    pub fn day(mut self, day: u8) -> Self {
        self.day = Some(day);
        self
    }

    /// Restricts the filter to days `<= day`.
    #[must_use]
    pub fn max_day(mut self, day: u8) -> Self {
        self.max_day = Some(day);
        self
    }

    fn matches(&self, entry: &ChunkEntry) -> bool {
        self.kind.is_none_or(|k| entry.meta.kind == k)
            && self.region.is_none_or(|r| entry.meta.region == r)
            && self.day.is_none_or(|d| entry.meta.day == d)
            && self.max_day.is_none_or(|d| entry.meta.day <= d)
    }
}

/// How [`TraceReader::read_trace`] serves telemetry.
#[derive(Debug, Clone, Copy)]
pub enum TelemetryMode {
    /// Decode every series up front and hold it in memory.
    Resident,
    /// Keep only the presence bitmap resident; series load on demand
    /// through a bounded chunk cache.
    OutOfCore {
        /// Decoded telemetry chunks the cache may hold at once.
        /// `0` auto-sizes to the id-ordered sweep working set: one
        /// chunk per distinct (region, day) lane, plus one.
        cache_chunks: usize,
    },
}

/// A reader over one committed trace directory.
///
/// `open` validates the manifest checksum and verifies every chunk it
/// names exists on disk with the promised byte length — a stale or
/// half-deleted store fails at open, not mid-analysis.
#[derive(Debug)]
pub struct TraceReader {
    dir: PathBuf,
    manifest: Manifest,
}

impl TraceReader {
    /// Opens and validates the store at `dir`.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the manifest is unreadable,
    /// [`StoreError::Malformed`] if it fails validation,
    /// [`StoreError::Missing`]/[`StoreError::Corrupt`] if a named
    /// chunk is absent or has the wrong size.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_NAME);
        let bytes = std::fs::read(&manifest_path).map_err(|e| StoreError::io(&manifest_path, e))?;
        let manifest = Manifest::decode(&manifest_path, &bytes)?;
        for entry in &manifest.chunks {
            let path = dir.join(entry.meta.file_name());
            let meta = match std::fs::metadata(&path) {
                Ok(m) => m,
                Err(_) => {
                    return Err(StoreError::Missing {
                        file: path.display().to_string(),
                        chunk: entry.meta.name(),
                    })
                }
            };
            if meta.len() != entry.file_len {
                return Err(StoreError::corrupt(
                    &path,
                    &entry.meta.name(),
                    format!(
                        "stale manifest: file is {} bytes but the manifest promises {}",
                        meta.len(),
                        entry.file_len
                    ),
                ));
            }
        }
        Ok(Self { dir, manifest })
    }

    /// The validated manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The directory this reader serves.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total VM records in the store.
    #[must_use]
    pub fn vm_count(&self) -> u64 {
        self.manifest.vm_count
    }

    /// Manifest entries matching `filter`, in commit order.
    pub fn chunks(&self, filter: ScanFilter) -> impl Iterator<Item = &ChunkEntry> {
        self.manifest
            .chunks
            .iter()
            .filter(move |e| filter.matches(e))
    }

    /// A named manifest blob.
    ///
    /// # Errors
    /// [`StoreError::Missing`] if the manifest has no such blob.
    pub fn read_blob(&self, name: &str) -> Result<&[u8], StoreError> {
        self.manifest.blob(name).ok_or_else(|| StoreError::Missing {
            file: self.dir.join(MANIFEST_NAME).display().to_string(),
            chunk: format!("blob {name}"),
        })
    }

    /// Reads, verifies, and decodes one chunk, decompressing only the
    /// columns `projection` asks for.
    ///
    /// # Errors
    /// Any [`StoreError`] from I/O or validation; a failed chunk never
    /// yields partial rows.
    pub fn read_chunk(
        &self,
        entry: &ChunkEntry,
        projection: Projection,
    ) -> Result<Batch, StoreError> {
        self.read_chunk_with(entry, projection, None)
    }

    /// [`TraceReader::read_chunk`] with an optional [`Parallelism`] to
    /// fan the per-column sub-block decompression out across workers.
    /// Output is identical at any worker count.
    ///
    /// # Errors
    /// Any [`StoreError`] from I/O or validation.
    pub(crate) fn read_chunk_with(
        &self,
        entry: &ChunkEntry,
        projection: Projection,
        par: Option<&Parallelism>,
    ) -> Result<Batch, StoreError> {
        let path = self.dir.join(entry.meta.file_name());
        let name = entry.meta.name();
        let bytes = std::fs::read(&path).map_err(|e| StoreError::io(&path, e))?;
        if bytes.len() as u64 != entry.file_len {
            return Err(StoreError::corrupt(
                &path,
                &name,
                format!(
                    "stale manifest: file is {} bytes but the manifest promises {}",
                    bytes.len(),
                    entry.file_len
                ),
            ));
        }
        if crc32(&bytes) != entry.file_crc {
            return Err(StoreError::corrupt(
                &path,
                &name,
                "file checksum disagrees with the manifest",
            ));
        }
        let wanted = projection.physical(entry.meta.kind);
        // The manifest whole-file CRC above already covered every byte,
        // so the decoder's footer-CRC pass would be a second scan of
        // the same bytes — skip it.
        let decoded = decode_chunk_file(&path, &name, &bytes, Some(&wanted), par, false)?;
        if decoded.meta != entry.meta {
            return Err(StoreError::corrupt(
                &path,
                &name,
                format!(
                    "chunk header says {} but the manifest says {name}",
                    decoded.meta.name()
                ),
            ));
        }
        counter("store.read.batches").inc();
        match entry.meta.kind {
            ChunkKind::VmMeta => Ok(Batch::VmMeta(decode_vm_meta(&path, &decoded)?)),
            ChunkKind::Telemetry => Ok(Batch::Telemetry(decode_telemetry(&path, &decoded)?)),
        }
    }

    /// Streams decoded batches for every chunk matching `filter`, in
    /// commit order — the chunk-at-a-time iteration the out-of-core
    /// analyses drive. Memory high-water is one decoded chunk.
    pub fn scan<'a>(
        &'a self,
        filter: ScanFilter,
        projection: Projection,
    ) -> impl Iterator<Item = Result<Batch, StoreError>> + 'a {
        self.manifest
            .chunks
            .iter()
            .filter(move |e| filter.matches(e))
            .map(move |e| self.read_chunk(e, projection))
    }

    /// The subscription table from the manifest blob — everything a
    /// metadata-only analysis needs to resolve a record's cloud,
    /// without touching a single chunk.
    ///
    /// # Errors
    /// [`StoreError::Missing`] if the blob is absent,
    /// [`StoreError::Malformed`] if it fails to decode.
    pub fn read_subscriptions(&self) -> Result<Vec<Subscription>, StoreError> {
        let manifest_path = self.dir.join(MANIFEST_NAME);
        decode_subscriptions(&manifest_path, self.read_blob(BLOB_SUBSCRIPTIONS)?)
    }

    /// Reads the VM records of every metadata chunk matching `filter`
    /// (the kind is forced to [`ChunkKind::VmMeta`]), decoded in
    /// parallel and returned in id order.
    ///
    /// This is the predicate-pushdown entry point for metadata-only
    /// analyses: a region or creation-day restriction skips
    /// non-matching chunks entirely — they are never read, CRC-checked,
    /// or decompressed — so a sliced scan costs proportionally fewer
    /// `store.read.chunks` than a full sweep. Unlike
    /// [`TraceReader::read_trace`], the result is *not* required to be
    /// dense: it holds exactly the records of the matching chunks.
    ///
    /// # Errors
    /// Any [`StoreError`] from chunk I/O or validation.
    pub fn read_vm_records(
        &self,
        filter: ScanFilter,
        par: &Parallelism,
    ) -> Result<Vec<VmRecord>, StoreError> {
        let entries: Vec<&ChunkEntry> = self.chunks(filter.kind(ChunkKind::VmMeta)).collect();
        let decoded = par.par_map(&entries, |entry| {
            match self.read_chunk(entry, Projection::all())? {
                Batch::VmMeta(b) => b.records(),
                Batch::Telemetry(_) => unreachable!("filtered to vm-meta"),
            }
        });
        let mut records = Vec::new();
        for batch in decoded {
            records.extend(batch?);
        }
        records.sort_unstable_by_key(|r| r.id);
        Ok(records)
    }

    /// Reconstructs the full [`Trace`]. In `Resident` mode the result
    /// is bit-identical to the trace that was written (telemetry and
    /// all); in `OutOfCore` mode the telemetry column is replaced by a
    /// lazy [`StoreTelemetry`] source over this directory and only the
    /// presence bitmap stays in memory.
    ///
    /// # Errors
    /// Any [`StoreError`] from chunk decoding, or
    /// [`StoreError::Inconsistent`] if the decoded records do not
    /// assemble into a dense, valid trace.
    pub fn read_trace(&self, mode: TelemetryMode, par: &Parallelism) -> Result<Trace, StoreError> {
        let manifest_path = self.dir.join(MANIFEST_NAME);
        let topology = decode_topology(&manifest_path, self.read_blob(BLOB_TOPOLOGY)?)?;
        let subscriptions =
            decode_subscriptions(&manifest_path, self.read_blob(BLOB_SUBSCRIPTIONS)?)?;
        let present = decode_presence(&manifest_path, self.read_blob(BLOB_TELEMETRY_PRESENT)?)?;
        let vm_count = usize::try_from(self.manifest.vm_count)
            .map_err(|_| StoreError::Inconsistent("vm count overflows usize".into()))?;
        if present.len() != vm_count {
            return Err(StoreError::Inconsistent(format!(
                "presence bitmap covers {} VMs but the manifest counts {vm_count}",
                present.len()
            )));
        }

        // Decode every metadata chunk in parallel, then stitch the
        // batches back into dense id order.
        let meta_entries: Vec<&ChunkEntry> = self
            .chunks(ScanFilter::all().kind(ChunkKind::VmMeta))
            .collect();
        let decoded = par.par_map(&meta_entries, |entry| {
            match self.read_chunk(entry, Projection::all())? {
                Batch::VmMeta(b) => b.records(),
                Batch::Telemetry(_) => unreachable!("filtered to vm-meta"),
            }
        });
        let mut records: Vec<VmRecord> = Vec::with_capacity(vm_count);
        for batch in decoded {
            records.extend(batch?);
        }
        if records.len() != vm_count {
            return Err(StoreError::Inconsistent(format!(
                "chunks hold {} records but the manifest counts {vm_count}",
                records.len()
            )));
        }
        records.sort_unstable_by_key(|r| r.id);

        let mut builder = Trace::builder(topology);
        for sub in subscriptions {
            builder
                .add_subscription(sub)
                .map_err(|e| StoreError::Inconsistent(e.to_string()))?;
        }
        match mode {
            TelemetryMode::Resident => {
                let util = self.assemble_resident_telemetry(&present)?;
                builder
                    .add_vms_bulk(records, util, par)
                    .map_err(|e| StoreError::Inconsistent(e.to_string()))?;
                Ok(builder.build())
            }
            TelemetryMode::OutOfCore { cache_chunks } => {
                // Records are sorted by dense id, so position = id.
                let vm_regions: Vec<u32> = records.iter().map(|r| r.region.index()).collect();
                builder
                    .add_vms_bulk(records, vec![None; vm_count], par)
                    .map_err(|e| StoreError::Inconsistent(e.to_string()))?;
                let mut trace = builder.build();
                let source = StoreTelemetry::open_with(
                    &self.dir,
                    cache_chunks,
                    crate::source::PrefetchConfig::default(),
                    *par,
                )?;
                source.attach_vm_regions(vm_regions);
                trace
                    .attach_telemetry_source(present, Arc::new(source))
                    .map_err(|e| StoreError::Inconsistent(e.to_string()))?;
                Ok(trace)
            }
        }
    }

    /// Decodes every telemetry chunk and reassembles per-VM series
    /// from their per-day runs.
    fn assemble_resident_telemetry(
        &self,
        present: &[bool],
    ) -> Result<Vec<Option<UtilSeries>>, StoreError> {
        let mut runs: Vec<Vec<(i64, Bytes)>> = vec![Vec::new(); present.len()];
        for batch in self.scan(
            ScanFilter::all().kind(ChunkKind::Telemetry),
            Projection::all(),
        ) {
            let Batch::Telemetry(batch) = batch? else {
                unreachable!("filtered to telemetry");
            };
            let starts = batch.starts.ok_or_else(|| {
                StoreError::Inconsistent(format!("chunk {}: no start column", batch.chunk))
            })?;
            let samples = batch.samples.ok_or_else(|| {
                StoreError::Inconsistent(format!("chunk {}: no samples column", batch.chunk))
            })?;
            for ((id, start), bytes) in batch.ids.iter().zip(starts).zip(samples) {
                let slot = runs.get_mut(id.as_usize()).ok_or_else(|| {
                    StoreError::Inconsistent(format!(
                        "chunk {}: telemetry for unknown vm {id}",
                        batch.chunk
                    ))
                })?;
                slot.push((start.minutes(), bytes));
            }
        }
        let mut out = Vec::with_capacity(present.len());
        for (idx, (mut vm_runs, &has)) in runs.into_iter().zip(present).enumerate() {
            if vm_runs.is_empty() {
                if has {
                    return Err(StoreError::Inconsistent(format!(
                        "vm {idx} is marked present but no chunk holds its telemetry"
                    )));
                }
                out.push(None);
                continue;
            }
            if !has {
                return Err(StoreError::Inconsistent(format!(
                    "vm {idx} has telemetry runs but is marked absent"
                )));
            }
            out.push(Some(
                assemble_series(idx as u64, &mut vm_runs).map_err(StoreError::Inconsistent)?,
            ));
        }
        Ok(out)
    }
}

/// Concatenates one VM's per-day runs back into its series, verifying
/// the runs tile the sample grid exactly.
pub(crate) fn assemble_series(id: u64, runs: &mut [(i64, Bytes)]) -> Result<UtilSeries, String> {
    runs.sort_by_key(|(start, _)| *start);
    let first_start = runs[0].0;
    let mut expected_next = first_start;
    let total: usize = runs.iter().map(|(_, b)| b.len()).sum();
    let mut samples = Vec::with_capacity(total);
    for (start, bytes) in runs.iter() {
        if *start != expected_next {
            return Err(format!(
                "vm {id}: telemetry run starts at minute {start} but the previous run ends at {expected_next}"
            ));
        }
        expected_next = start + bytes.len() as i64 * SAMPLE_INTERVAL_MINUTES;
        samples.extend_from_slice(bytes);
    }
    Ok(UtilSeries::from_quantized(
        SimTime::from_minutes(first_start),
        Bytes::from(samples),
    ))
}
