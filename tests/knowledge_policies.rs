//! Integration of the knowledge base and the policy engine with a
//! generated trace: extraction, queries, recommendations, and the
//! rebalancing workflow.

use cloudscope::mgmt::rebalance::simulate_shift;
use cloudscope::prelude::*;
use std::sync::OnceLock;

fn generated() -> &'static GeneratedTrace {
    static TRACE: OnceLock<GeneratedTrace> = OnceLock::new();
    TRACE.get_or_init(|| generate(&GeneratorConfig::medium(123)))
}

fn kb() -> &'static KnowledgeBase {
    static KB: OnceLock<KnowledgeBase> = OnceLock::new();
    KB.get_or_init(|| {
        let kb = KnowledgeBase::new();
        let classifier = PatternClassifier::default();
        for cloud in CloudKind::BOTH {
            kb.feed(extract_cloud_knowledge(
                &generated().trace,
                cloud,
                &classifier,
                3,
            ));
        }
        kb
    })
}

#[test]
fn kb_covers_active_subscriptions() {
    let g = generated();
    let stats = g.trace.stats();
    // Every subscription that deployed VMs has an entry.
    assert!(kb().len() >= (stats.private_subscriptions + stats.public_subscriptions) * 9 / 10);
}

#[test]
fn spot_candidates_are_public_and_nontrivial() {
    let query = KbQuery::spot_candidates();
    assert!(
        query.count(kb()) > 0,
        "the public cloud's short-lived churn yields candidates"
    );
    // Non-cloning check over the borrowed entries.
    query.for_each(kb(), |k| assert_eq!(k.cloud, CloudKind::Public));
}

#[test]
fn shiftable_workloads_are_private_multi_region() {
    let shiftable = KbQuery::shiftable();
    assert!(
        shiftable.count(kb()) > 0,
        "geo-LB private services are shiftable"
    );
    shiftable.for_each(kb(), |k| {
        assert!(k.regions >= 2, "shiftable implies multi-region");
    });
    // Prevalence within each cloud: among subscriptions whose
    // agnosticism was measurable, the private fraction is much higher.
    let fraction = |cloud: CloudKind| {
        let measured =
            KbQuery::matching(|k| k.cloud == cloud && k.region_agnostic.is_some()).count(kb());
        let agnostic = KbQuery::matching(|k| k.cloud == cloud)
            .filter(|k| k.region_agnostic == Some(true))
            .count(kb());
        agnostic as f64 / measured.max(1) as f64
    };
    let private = fraction(CloudKind::Private);
    let public = fraction(CloudKind::Public);
    assert!(
        private > 1.3 * public,
        "region-agnosticism is predominantly private: {private:.2} vs {public:.2}"
    );
}

#[test]
fn policy_engine_produces_all_recommendation_kinds() {
    let results = PolicyEngine::standard().run(kb());
    let by_name: std::collections::HashMap<_, _> = results.into_iter().collect();
    assert!(!by_name["spot-adoption"].is_empty());
    assert!(!by_name["oversubscription"].is_empty());
    assert!(!by_name["shiftability"].is_empty());
    assert!(!by_name["pre-provision"].is_empty());
}

#[test]
fn kb_driven_shift_improves_source_region() {
    let g = generated();
    let at = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);
    // Take any shiftable subscription's service with alive VMs somewhere.
    let shiftable = KbQuery::shiftable().collect(kb());
    let mut shifted = false;
    'outer: for k in &shiftable {
        for svc in g
            .services
            .iter()
            .filter(|s| s.subscription == k.subscription)
        {
            for &from in &svc.regions {
                let to = g
                    .trace
                    .topology()
                    .regions()
                    .iter()
                    .map(|r| r.id)
                    .find(|&r| r != from);
                let Some(to) = to else { continue };
                if let Ok(outcome) = simulate_shift(&g.trace, k.cloud, svc.service, from, to, at) {
                    assert!(outcome.moved_vms > 0);
                    assert!(
                        outcome.source_after.core_utilization_rate()
                            < outcome.source_before.core_utilization_rate()
                    );
                    shifted = true;
                    break 'outer;
                }
            }
        }
    }
    assert!(
        shifted,
        "at least one shiftable service can actually be shifted"
    );
}

#[test]
fn knowledge_values_are_physical() {
    KbQuery::all().for_each(kb(), |k| {
        assert!(k.mean_util >= 0.0 && k.mean_util <= 100.0);
        assert!(k.p95_util >= 0.0 && k.p95_util <= 100.0);
        assert!(k.util_cv >= 0.0);
        assert!(k.vm_count > 0);
        assert!(k.cores > 0);
        assert!((1..=10).contains(&k.regions));
    });
}
