//! Cross-layer observability: the `cloudscope-obs` metrics every
//! subsystem publishes must reconcile with the ground truth those
//! subsystems report through their APIs, and the full metric surface
//! must match the committed schema in `tests/golden/metrics_schema.json`.
//!
//! Re-bless the schema after intentionally adding or renaming metrics:
//!
//! ```text
//! CLOUDSCOPE_UPDATE_GOLDEN=1 cargo test -p cloudscope --test observability
//! ```

use cloudscope::analysis::coverage::filled_week_series;
use cloudscope::cluster::{ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule};
use cloudscope::faults::{corrupt_trace, FaultPlan, FlakyStore};
use cloudscope::ingest::{drive_ingest, IngestConfig};
use cloudscope::kb::{
    run_extraction_pipeline, run_extraction_pipeline_with, DurableKb, RetryPolicy,
};
use cloudscope::mgmt::{
    plan_node_maintenance, AllocFailureFeatures, AllocFailurePredictor, OversubMethod,
    OversubPlanner, RemainingLifetimePredictor, SpotMixPolicy, VmDemand,
};
use cloudscope::obs::testing::{assert_counter_eq, snapshot_diff};
use cloudscope::obs::{
    parse_json, parse_prometheus, to_json, to_prometheus, Registry, Schema, Snapshot,
};
use cloudscope::par::Parallelism;
use cloudscope::prelude::*;
use cloudscope::timeseries::{fft, Series};
use cloudscope_repro::ShapeChecks;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Present (non-gap) samples across every telemetry-bearing VM — the
/// quantity an analysis pass actually observes after ingest.
fn present_samples(trace: &Trace) -> usize {
    trace
        .vms()
        .iter()
        .filter_map(|vm| trace.util(vm.id))
        .map(|u| u.present_count())
        .sum()
}

/// Under a pure 5% drop plan the `faults.samples_dropped` counter, the
/// fault report, and the analysis-observed missing samples are the same
/// number — no other fault channel is open to blur the accounting.
#[test]
fn drop_only_losses_reconcile_with_observed_missing_samples() {
    let g = generate(&GeneratorConfig::small(9101));
    let pristine = present_samples(&g.trace);

    let registry = Arc::new(Registry::new());
    let plan = FaultPlan {
        drop_probability: 0.05,
        ..FaultPlan::clean(77)
    };
    let ((corrupted, report), diff) = snapshot_diff(&registry, || corrupt_trace(&g.trace, &plan));

    let observed_missing = pristine - present_samples(&corrupted);
    assert!(report.dropped > 0, "a 5% drop plan must drop something");
    assert_eq!(report.dropped, observed_missing);
    assert_eq!(report.samples_in - report.samples_out, observed_missing);

    assert_counter_eq(
        &diff,
        "faults.corrupt.samples_dropped",
        report.dropped as u64,
    );
    assert_counter_eq(&diff, "faults.corrupt.samples_in", report.samples_in as u64);
    assert_counter_eq(
        &diff,
        "faults.corrupt.samples_out",
        report.samples_out as u64,
    );
    assert_counter_eq(&diff, "faults.corrupt.vms_corrupted", report.vms as u64);
    // Channels the plan leaves closed publish zeros, not absences.
    assert_counter_eq(&diff, "faults.corrupt.blackout_dropped", 0);
    assert_counter_eq(&diff, "faults.corrupt.invalidated", 0);
    assert_counter_eq(&diff, "faults.corrupt.out_of_week", 0);
}

/// The PR 2 standard corruption profile (5% loss, one regional
/// blackout, duplication/reordering/garbage/skew on top): every lost
/// sample is attributed to exactly one cause, and the counters match
/// the report field for field.
#[test]
fn standard_profile_counters_match_fault_report_accounting() {
    let g = generate(&GeneratorConfig::small(9102));
    let pristine = present_samples(&g.trace);

    let registry = Arc::new(Registry::new());
    let ((corrupted, report), diff) = snapshot_diff(&registry, || {
        corrupt_trace(&g.trace, &FaultPlan::standard(42))
    });

    // ±2-minute skew can never move a sample to another 5-minute slot,
    // so nothing leaves the trace week.
    assert_eq!(report.out_of_week, 0);
    // Duplicates collapse at ingest and reorders only swap slots, so
    // the observed loss decomposes exactly into the three real causes.
    let observed_missing = pristine - present_samples(&corrupted);
    assert_eq!(
        observed_missing,
        report.dropped + report.blackout_dropped + report.invalidated
    );
    assert!(
        report.blackout_dropped > 0,
        "the blackout window has traffic"
    );
    assert!(report.duplicated > 0 && report.reordered > 0 && report.invalidated > 0);

    for (name, field) in [
        ("faults.corrupt.samples_dropped", report.dropped),
        ("faults.corrupt.blackout_dropped", report.blackout_dropped),
        ("faults.corrupt.invalidated", report.invalidated),
        ("faults.corrupt.duplicated", report.duplicated),
        ("faults.corrupt.reordered", report.reordered),
        ("faults.corrupt.samples_in", report.samples_in),
        ("faults.corrupt.samples_out", report.samples_out),
    ] {
        assert_counter_eq(&diff, name, field as u64);
    }
}

/// A clean store never retries: the pipeline stats and the `kb.*`
/// counters agree that every write landed first try.
#[test]
fn kb_pipeline_clean_run_records_zero_retries() {
    let g = generate(&GeneratorConfig::small(9103));
    let classifier = PatternClassifier::default();
    let kb = KnowledgeBase::new();

    let registry = Arc::new(Registry::new());
    let (stats, diff) = snapshot_diff(&registry, || {
        run_extraction_pipeline(&g.trace, &kb, &classifier, 64, 2)
    });

    assert!(stats.stored > 0, "a small trace stores knowledge");
    assert_eq!(stats.retries, 0);
    assert_eq!(stats.failed, 0);
    // The retry counter is only created by an actual retry.
    assert_eq!(diff.counter("kb.pipeline.retries").unwrap_or(0), 0);
    assert_eq!(diff.counter("kb.pipeline.backoff_sleeps").unwrap_or(0), 0);
    assert_counter_eq(&diff, "kb.pipeline.processed", stats.processed as u64);
    assert_counter_eq(&diff, "kb.pipeline.stored", stats.stored as u64);
    assert_counter_eq(&diff, "kb.pipeline.skipped", stats.skipped as u64);
    assert_counter_eq(&diff, "kb.pipeline.failed", 0);
    // Fresh store: every upsert call stored an entry.
    assert_counter_eq(&diff, "kb.store.upserts", stats.stored as u64);
    // Every chunk with entries became exactly one batched write, and the
    // store's feed ledger agrees with the pipeline's.
    assert!(stats.batches >= 1);
    assert_counter_eq(&diff, "kb.pipeline.batches", stats.batches as u64);
    assert_counter_eq(&diff, "kb.store.feed_batches", stats.batches as u64);
    // No stale writes happened, so the counter saw no traffic inside the
    // scope (the store registered its zero at construction, outside).
    assert_eq!(diff.counter("kb.store.stale_rejected").unwrap_or(0), 0);
}

/// With a 30% flaky store, the retry counter equals the pipeline's own
/// retry tally equals the store's injected-failure tally — three
/// independent ledgers of the same events.
#[test]
fn kb_pipeline_flaky_store_retries_reconcile_three_ways() {
    let g = generate(&GeneratorConfig::small(9103));
    let classifier = PatternClassifier::default();
    let store = FlakyStore::new(KnowledgeBase::new(), 2024, 0.3);
    let retry = RetryPolicy {
        max_attempts: 10,
        base_backoff: Duration::from_nanos(1),
    };

    let registry = Arc::new(Registry::new());
    let (stats, diff) = snapshot_diff(&registry, || {
        run_extraction_pipeline_with(&g.trace, &store, &classifier, 64, 2, &retry)
    });

    assert!(stats.retries > 0, "a 30% failure rate must trigger retries");
    assert_eq!(stats.failed, 0, "10 attempts ride out a 30% failure rate");
    assert_eq!(store.injected_failures(), stats.retries);
    assert_counter_eq(&diff, "kb.pipeline.retries", stats.retries as u64);
    assert_counter_eq(&diff, "kb.pipeline.backoff_sleeps", stats.retries as u64);
    assert_counter_eq(
        &diff,
        "faults.flaky.injected_failures",
        store.injected_failures() as u64,
    );
    // Per-batch accounting: the flaky store saw one batched write per
    // pipeline chunk (attempt 1 for each entry), and retries happened on
    // top of — not instead of — those batches.
    assert!(stats.batches >= 1);
    assert_counter_eq(&diff, "kb.pipeline.batches", stats.batches as u64);
    assert_eq!(
        store.attempts(),
        stats.stored + stats.retries,
        "every write attempt either stored or was retried"
    );
}

/// The serving-layer counters reconcile with ground truth: every query
/// is tallied as indexed or scanned by its selector, `entries_cloned`
/// counts exactly what `collect` returned, and the write-side counters
/// match the upsert/stale/remove outcomes the API reported.
#[test]
fn kb_serving_counters_reconcile_with_query_outcomes() {
    use cloudscope::kb::KbQuery;

    let g = generate(&GeneratorConfig::small(9107));
    let classifier = PatternClassifier::default();

    let registry = Arc::new(Registry::new());
    let ((spot_len, all_len, removed), diff) = snapshot_diff(&registry, || {
        let kb = KnowledgeBase::with_shards(4);
        let stats = run_extraction_pipeline(&g.trace, &kb, &classifier, 64, 2);
        assert!(stats.stored > 0);

        // Three indexed queries, two full scans.
        let spot = KbQuery::spot_candidates().collect(&kb);
        assert!(KbQuery::shiftable().count(&kb) <= kb.len());
        KbQuery::oversubscription_candidates(CloudKind::Public).for_each(&kb, |_| {});
        let everything = KbQuery::all().collect(&kb);
        assert_eq!(everything.len(), kb.len());
        assert_eq!(KbQuery::matching(|k| k.vm_count > 0).count(&kb), kb.len());

        // One remove and one stale write (rejected by freshness).
        let mut stale = everything[0].clone();
        stale.updated_at = SimTime::from_minutes(stale.updated_at.minutes() - 1);
        assert!(!kb.upsert(stale));
        let removed = kb.remove(everything[0].subscription).is_some();
        (spot.len(), everything.len(), removed)
    });
    assert!(removed);

    // Selector routing: 3 indexed reads, 2 full scans.
    assert_counter_eq(&diff, "kb.store.queries_indexed", 3);
    assert_counter_eq(&diff, "kb.store.queries_scanned", 2);
    // Cloning happened exactly at the two collects — count() / for_each
    // contributed nothing.
    assert_counter_eq(
        &diff,
        "kb.store.entries_cloned",
        (spot_len + all_len) as u64,
    );
    assert_counter_eq(&diff, "kb.store.removes", 1);
    assert_counter_eq(&diff, "kb.store.stale_rejected", 1);
}

/// The durability counters reconcile with on-disk ground truth: one WAL
/// append per write call, `wal_bytes` matching the frames on disk
/// across the snapshot rotation, one snapshot file per shard, and
/// recovery replaying exactly the entries written after the last
/// snapshot cut.
#[test]
fn kb_persist_counters_reconcile_with_disk_state() {
    let g = generate(&GeneratorConfig::small(9109));
    let classifier = PatternClassifier::default();
    let staging = KnowledgeBase::new();
    let stats = run_extraction_pipeline(&g.trace, &staging, &classifier, 64, 2);
    assert!(stats.stored > 0);
    let entries = cloudscope::kb::KbQuery::all().collect(&staging);

    let dir = std::env::temp_dir().join(format!("cloudscope-obs-persist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    const SHARDS: usize = 3;
    const TAIL_WRITES: usize = 5;
    // Segment header: 8-byte magic + 8-byte sequence.
    const WAL_HEADER: u64 = 16;

    let registry = Arc::new(Registry::new());
    let (pre_rotation_len, diff) = snapshot_diff(&registry, || {
        let db = DurableKb::open_with_shards(&dir, Some(SHARDS)).expect("open");
        // One batched feed, then a snapshot, then a post-snapshot tail
        // of single upserts — the part recovery must replay.
        db.feed(&entries).expect("feed");
        let pre_rotation_len = std::fs::metadata(dir.join("wal.log"))
            .expect("wal exists")
            .len();
        let report = db.snapshot().expect("snapshot");
        assert_eq!(report.shard_files, SHARDS);
        // The snapshot rotated everything it covers out of the log:
        // only a fresh segment header remains.
        assert_eq!(
            std::fs::metadata(dir.join("wal.log"))
                .expect("wal exists")
                .len(),
            WAL_HEADER
        );
        for k in entries.iter().take(TAIL_WRITES) {
            db.upsert(k.clone()).expect("upsert");
        }
        drop(db);
        let recovered = DurableKb::open_with_shards(&dir, Some(SHARDS)).expect("recover");
        let recovery = recovered.recovery_stats();
        assert_eq!(recovery.generation, 1);
        assert_eq!(recovery.snapshot_entries, entries.len());
        assert_eq!(recovery.replayed_records, TAIL_WRITES);
        assert_eq!(recovery.replayed_entries, TAIL_WRITES);
        assert!(!recovery.torn_tail);
        assert_eq!(recovered.kb().len(), entries.len());
        pre_rotation_len
    });

    // One append per write call: the batched feed plus each tail upsert.
    assert_counter_eq(&diff, "kb.persist.wal_appends", 1 + TAIL_WRITES as u64);
    // Appended bytes = frames in the pre-rotation segment (the feed)
    // plus frames in the live segment (the tail upserts); headers are
    // file structure, not appends, and the snapshot rotated exactly once.
    let wal_len = std::fs::metadata(dir.join("wal.log"))
        .expect("wal exists")
        .len();
    assert_counter_eq(
        &diff,
        "kb.persist.wal_bytes",
        (pre_rotation_len - WAL_HEADER) + (wal_len - WAL_HEADER),
    );
    assert_counter_eq(&diff, "kb.persist.wal_rotations", 1);
    // One snapshot file per shard, and they are all on disk.
    assert_counter_eq(&diff, "kb.persist.snapshots_written", SHARDS as u64);
    for shard in 0..SHARDS {
        assert!(
            dir.join(format!("snap-1-{shard}.snap")).exists(),
            "snapshot file for shard {shard} missing"
        );
    }
    // Recovery replayed exactly the post-snapshot tail and timed itself.
    assert_counter_eq(&diff, "kb.persist.recovery_replayed", TAIL_WRITES as u64);
    let ns = diff
        .gauge("kb.persist.recovery_ns")
        .expect("recovery gauge registers");
    assert!(ns > 0.0, "recovery must take measurable time, got {ns}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The streaming-ingestion counters reconcile with the session's own
/// report: the offer-accounting identity holds both in the report and
/// in the flushed counters, the drive span fires exactly once per run,
/// and the backpressure gauge carries the report's peak.
#[test]
fn ingest_counters_reconcile_with_session_report() {
    let g = generate(&GeneratorConfig::small(9110));
    let registry = Arc::new(Registry::new());
    let (outcome, diff) = snapshot_diff(&registry, || {
        drive_ingest(
            &g.trace,
            &FaultPlan::standard(9110),
            &IngestConfig::default(),
            &PatternClassifier::default(),
            &KnowledgeBase::new(),
        )
    });
    let report = outcome.session.report();

    // Exhaustive accounting: nothing offered vanishes untallied.
    assert_eq!(
        report.samples_offered,
        report.samples_applied + report.rejected_invalid + report.out_of_week + report.dropped_late
    );
    for (name, field) in [
        ("ingest.samples_offered", report.samples_offered),
        ("ingest.samples_applied", report.samples_applied),
        ("ingest.duplicates_collapsed", report.duplicates_collapsed),
        ("ingest.rejected_invalid", report.rejected_invalid),
        ("ingest.out_of_week", report.out_of_week),
        ("ingest.dropped_late", report.dropped_late),
        ("ingest.windows_closed", report.windows_closed),
        ("ingest.classifications", report.classifications),
    ] {
        assert_counter_eq(&diff, name, field);
    }
    assert_eq!(
        diff.gauge("ingest.backpressure.peak_pending_samples"),
        Some(report.peak_pending_samples as f64)
    );
    let drive = diff
        .histogram("ingest.drive.duration_ns")
        .expect("drive span records");
    assert_eq!(drive.count, 1, "one drive, one span");
    // Every published batch went through the shared KB pipeline path.
    assert_counter_eq(
        &diff,
        "kb.pipeline.batches",
        outcome.pipeline_stats.batches as u64,
    );
}

/// Work accounting is scheduling-invariant: the same sweep reports the
/// same `tasks_executed` and `sweeps` for every worker count, even
/// though stealing and chunking differ run to run.
#[test]
fn par_task_accounting_is_invariant_across_worker_counts() {
    let items: Vec<u64> = (0..357).collect();
    for workers in [1, 2, 4, 8] {
        let registry = Arc::new(Registry::new());
        let (sum, diff) = snapshot_diff(&registry, || {
            Parallelism::with_workers(workers)
                .par_map(&items, |&x| x * 2)
                .iter()
                .sum::<u64>()
        });
        assert_eq!(sum, 357 * 356);
        assert_counter_eq(&diff, "par.executor.tasks_executed", 357);
        assert_counter_eq(&diff, "par.executor.sweeps", 1);
    }
}

/// The scale-out generation metrics reconcile with trace ground truth:
/// one region task per topology region, one merged record per VM in the
/// trace, one successful placement per VM that got a node, and at least
/// one index candidate probed per placement attempt. The queue counters
/// stay consistent with the engine's own event tally.
#[test]
fn generation_metrics_reconcile_with_trace_ground_truth() {
    let registry = Arc::new(Registry::new());
    let (g, diff) = snapshot_diff(&registry, || generate(&GeneratorConfig::small(9108)));

    let regions = g.trace.topology().regions().len() as u64;
    assert_counter_eq(&diff, "tracegen.generate.regions_driven", regions);
    assert_counter_eq(
        &diff,
        "tracegen.generate.vms_generated",
        g.trace.vms().len() as u64,
    );
    // Conservation: every spec the generator created either made it into
    // the trace or is accounted as dropped, and the merge counter sits
    // between the two (merge happens before unplaced churn is culled).
    let created = g.report.standing_vms + g.report.churn_vms + g.report.burst_vms;
    assert_eq!(g.trace.vms().len() as u64 + g.report.dropped_vms, created);
    let merged = diff
        .counter("tracegen.generate.merged_records")
        .expect("merge counter registers");
    assert!(
        merged >= g.trace.vms().len() as u64 && merged <= created,
        "merged {merged} outside [{}, {created}]",
        g.trace.vms().len()
    );
    let workers = diff
        .gauge("tracegen.generate.region_workers")
        .expect("worker gauge registers");
    assert!(workers >= 1.0, "at least one region worker, got {workers}");

    let placed = g.trace.vms().iter().filter(|vm| vm.node.is_some()).count() as u64;
    assert_counter_eq(&diff, "cluster.allocator.placements", placed);
    let candidates = diff
        .counter("cluster.alloc.index_candidates")
        .expect("index candidates register");
    assert!(
        candidates >= placed,
        "every placement probes at least one candidate ({candidates} < {placed})"
    );

    // Every event the DES processed went through the calendar queue, and
    // nothing the generator schedules lands past the one-week horizon.
    let scheduled = diff.counter("sim.queue.scheduled").expect("queue counter");
    let processed = diff
        .counter("sim.engine.events_processed")
        .expect("engine counter");
    assert!(
        scheduled >= processed,
        "processed events exceed scheduled ({processed} > {scheduled})"
    );
    assert_counter_eq(&diff, "sim.queue.overflow_events", 0);
}

/// Partition observability: the serial short-circuit reports one drive
/// task, forced cluster-group fan-out reports one task per non-empty
/// (region, cloud) group, and every generation phase exports its
/// wall-clock gauge — the breakdown that makes flat scaling diagnosable
/// from a metrics dump.
#[test]
fn partition_metrics_reflect_drive_granularity() {
    use cloudscope::tracegen::{generate_with_partition, PartitionMode};

    let cfg = GeneratorConfig::small(9108);
    // Auto on the small config short-circuits to the serial drive: one
    // task, driven by one worker regardless of the pool size.
    let registry = Arc::new(Registry::new());
    let (_, diff) = snapshot_diff(&registry, || generate(&cfg));
    assert_counter_eq(&diff, "tracegen.generate.tasks_driven", 1);
    assert_eq!(diff.gauge("tracegen.generate.region_workers"), Some(1.0));

    // Forced cluster-group fan-out: one task per (region, cloud) pair
    // that has specs — on the small config every pair does.
    let registry = Arc::new(Registry::new());
    let (g, diff) = snapshot_diff(&registry, || {
        generate_with_partition(
            &cfg,
            Parallelism::with_workers(4),
            PartitionMode::ClusterGroup,
        )
    });
    let regions = g.trace.topology().regions().len() as u64;
    assert_counter_eq(&diff, "tracegen.generate.tasks_driven", 2 * regions);
    assert_counter_eq(&diff, "tracegen.generate.regions_driven", regions);
    for phase in ["prepare", "placement", "merge", "telemetry", "assemble"] {
        let ns = diff
            .gauge(&format!("tracegen.generate.phase_{phase}_ns"))
            .unwrap_or_else(|| panic!("phase gauge {phase} registers"));
        assert!(ns >= 0.0, "{phase} gauge negative: {ns}");
    }
}

/// One `analyze` call times itself exactly once at the root and once
/// per figure-family child span.
#[test]
fn report_spans_fire_once_per_analysis() {
    let g = generate(&GeneratorConfig::small(9104));
    let registry = Arc::new(Registry::new());
    let (report, diff) = snapshot_diff(&registry, || {
        CharacterizationReport::analyze(&g.trace, &ReportConfig::default()).expect("analysis")
    });
    assert!(!report.insight_verdicts().is_empty());

    for path in [
        "analysis.report.duration_ns",
        "analysis.report.deployment.duration_ns",
        "analysis.report.vm_size.duration_ns",
        "analysis.report.temporal.duration_ns",
        "analysis.report.spatial.duration_ns",
        "analysis.report.patterns.duration_ns",
        "analysis.report.utilization.duration_ns",
        "analysis.report.correlation.duration_ns",
    ] {
        let h = diff
            .histogram(path)
            .unwrap_or_else(|| panic!("span histogram {path} missing"));
        assert_eq!(h.count, 1, "{path} must fire exactly once");
        assert!(h.sum > 0, "{path} must record wall-clock time");
    }
}

/// Both exporters round-trip a genuinely populated snapshot — counters,
/// negative/fractional gauges, and multi-bucket histograms — exactly.
#[test]
fn exporters_round_trip_a_populated_snapshot() {
    let registry = Arc::new(Registry::new());
    let ((), _) = snapshot_diff(&registry, || {
        let g = generate(&GeneratorConfig::small(9105));
        let _ = CharacterizationReport::analyze(&g.trace, &ReportConfig::default());
        cloudscope::obs::gauge("test.gauge.negative").set(-12.75);
        cloudscope::obs::gauge("test.gauge.tiny").set(1.0e-9);
        let h = cloudscope::obs::histogram("test.histogram.spread");
        for v in [0, 1, 17, 4096, u64::MAX / 2] {
            h.observe(v);
        }
    });
    let snapshot = registry.snapshot();
    assert!(
        snapshot.metrics.len() > 20,
        "a real analysis populates a wide surface, got {}",
        snapshot.metrics.len()
    );

    let via_json = parse_json(&to_json(&snapshot)).expect("JSON parses");
    assert_eq!(via_json, snapshot, "JSON round-trip must be exact");
    let via_prom = parse_prometheus(&to_prometheus(&snapshot)).expect("Prometheus parses");
    assert_eq!(via_prom, snapshot, "Prometheus round-trip must be exact");
}

/// Runs every instrumented subsystem once inside one scoped registry,
/// deterministically touching the rare paths (placement failure,
/// coverage gates, classifier branches, retries, forced reroute) so the
/// full metric *name* surface registers regardless of trace content.
fn exercise_all_subsystems() -> Snapshot {
    let registry = Arc::new(Registry::new());
    cloudscope::obs::scoped(&registry, || {
        // tracegen + sim + model + stats + cluster placements + par.
        let g = generate(&GeneratorConfig::small(9106));
        let report =
            CharacterizationReport::analyze(&g.trace, &ReportConfig::default()).expect("analysis");
        assert!(!report.insight_verdicts().is_empty());

        // faults: the standard corruption profile flushes all nine
        // corruption counters even when a channel tallies zero.
        let (_, fault_report) = corrupt_trace(&g.trace, &FaultPlan::standard(7));
        assert!(fault_report.samples_in > 0);

        // ingest: one driven streaming run under the standard fault
        // plan registers the whole ingest.* surface — the offer/drop
        // accounting counters, the drive/close/publish spans, and the
        // backpressure gauge.
        let ingest_outcome = drive_ingest(
            &g.trace,
            &FaultPlan::standard(7),
            &IngestConfig::default(),
            &PatternClassifier::default(),
            &KnowledgeBase::new(),
        );
        assert!(ingest_outcome.session.report().samples_offered > 0);

        // kb, clean then flaky, so the retry/backoff counters register.
        let classifier = PatternClassifier::default();
        let kb = KnowledgeBase::new();
        let stats = run_extraction_pipeline(&g.trace, &kb, &classifier, 64, 2);
        assert!(stats.stored > 0);
        let flaky = FlakyStore::new(KnowledgeBase::new(), 11, 0.3);
        let retry = RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_nanos(1),
        };
        let flaky_stats =
            run_extraction_pipeline_with(&g.trace, &flaky, &classifier, 64, 2, &retry);
        assert!(flaky_stats.retries > 0);

        // cluster: force one placement failure on a starved allocator.
        let mut b = Topology::builder();
        let r = b.add_region("obs", 0, "US");
        let d = b.add_datacenter(r);
        let c = b.add_cluster(d, CloudKind::Private, NodeSku::new(4, 32.0), 1, 1);
        let topo = b.build();
        let mut alloc = ClusterAllocator::new(
            topo.cluster(c).unwrap(),
            PlacementPolicy::BestFit,
            SpreadingRule::default(),
        );
        alloc
            .place(PlacementRequest {
                vm: VmId::new(0),
                size: VmSize::new(4, 32.0),
                service: ServiceId::new(0),
                priority: Priority::OnDemand,
            })
            .expect("fits");
        assert!(alloc
            .place(PlacementRequest {
                vm: VmId::new(1),
                size: VmSize::new(4, 32.0),
                service: ServiceId::new(1),
                priority: Priority::OnDemand,
            })
            .is_err());

        // analysis classifier: hit all four dispatch branches.
        let dense: Vec<f64> = (0..2016)
            .map(|i| 20.0 + 10.0 * (std::f64::consts::TAU * i as f64 / 288.0).sin())
            .collect();
        let _ = classifier.classify_series(&Series::new(0, 5, dense.clone()));
        let mut long_gap = dense.clone();
        for slot in &mut long_gap[100..112] {
            *slot = f64::NAN; // 12-sample gap: beyond the 6-sample fill cap.
        }
        let _ = classifier.classify_series(&Series::new(0, 5, long_gap));
        let mut sparse = vec![f64::NAN; 2016];
        sparse[0] = 1.0; // coverage far below the 0.6 floor.
        let _ = classifier.classify_series(&Series::new(0, 5, sparse));

        // analysis coverage gate: one rejection, one fill.
        let util = g
            .trace
            .vms()
            .iter()
            .find_map(|vm| g.trace.util(vm.id))
            .expect("telemetry exists");
        assert!(filled_week_series(&util, 1.01).is_none());
        assert!(filled_week_series(&util, 0.0).is_some());

        // timeseries: a unique FFT size registers both plan-cache
        // counters on this thread (miss, then hit).
        fft::with_plan(32_768, |_, _| ()).expect("power of two");
        fft::with_plan(32_768, |_, _| ()).expect("power of two");

        // mgmt: one plan per policy family, plus a forced reroute.
        SpotMixPolicy::new(0.4, 0.99)
            .expect("valid policy")
            .plan(100, 60, 0.9)
            .expect("plan");
        OversubPlanner::new(0.02, OversubMethod::EmpiricalQuantile)
            .expect("valid planner")
            .plan(&[VmDemand {
                cores: 8,
                utilization: dense,
            }])
            .expect("plan");
        let node = g
            .trace
            .vms()
            .iter()
            .find_map(|vm| vm.node)
            .expect("placed VMs exist");
        plan_node_maintenance(
            &g.trace,
            &kb,
            &RemainingLifetimePredictor::default(),
            node,
            SimTime::from_days(2),
            SimTime::from_days(2) + SimDuration::from_hours(8),
        )
        .expect("maintenance plan");
        assert!(AllocFailurePredictor::default().should_reroute(
            &AllocFailureFeatures {
                allocation_ratio: 0.95,
                request_fraction: 0.5,
                creation_cv: 3.0,
                spreading_pressure: 0.8,
            },
            0.5,
        ));

        // kb durability: a write-snapshot-reopen cycle registers the
        // whole kb.persist.* surface (WAL appends, snapshot files,
        // recovery replay and timing).
        let dir =
            std::env::temp_dir().join(format!("cloudscope-obs-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let db = DurableKb::open_with_shards(&dir, Some(2)).expect("open durable kb");
        let everything = cloudscope::kb::KbQuery::all().collect(&kb);
        db.feed(&everything).expect("durable feed");
        db.snapshot().expect("durable snapshot");
        db.upsert(everything[0].clone()).expect("durable upsert");
        drop(db);
        let recovered = DurableKb::open_with_shards(&dir, Some(2)).expect("recover durable kb");
        assert_eq!(recovered.kb().len(), everything.len());
        let _ = std::fs::remove_dir_all(&dir);

        // store: a write → out-of-core read cycle through a one-chunk
        // cache registers the whole store.* surface — compression and
        // commit counters on the write side; batch, chunk, and series
        // reads plus cache hits/misses/evictions on the read side —
        // and one rejected blob registers corruption detection.
        let store_dir =
            std::env::temp_dir().join(format!("cloudscope-obs-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&store_dir);
        let store_par = Parallelism::with_workers(2);
        let opts = cloudscope::store::WriteOptions {
            target_chunk_rows: 64,
            ..cloudscope::store::WriteOptions::default()
        };
        cloudscope::tracegen::write_generated(&g, &store_dir, opts, &store_par)
            .expect("store write");
        let back = cloudscope::tracegen::read_generated(
            &store_dir,
            cloudscope::store::TelemetryMode::OutOfCore { cache_chunks: 1 },
            &store_par,
        )
        .expect("store read");
        assert!(back.trace.telemetry_is_lazy());
        for vm in back.trace.vms() {
            let _ = back.trace.util(vm.id); // stream every chunk through the 1-chunk cache
        }
        // A week-long series spans one chunk per day, so the 1-chunk
        // cache above can never serve a hit — every access is a
        // miss+evict pair. A cache wide enough for a whole series makes
        // the second load of the same VM all hits.
        let hot = cloudscope::tracegen::read_generated(
            &store_dir,
            cloudscope::store::TelemetryMode::OutOfCore { cache_chunks: 64 },
            &store_par,
        )
        .expect("store read (hot)");
        let first = hot
            .trace
            .vms()
            .iter()
            .find(|vm| hot.trace.has_util(vm.id))
            .expect("telemetry exists")
            .id;
        let _ = hot.trace.util(first); // cold: populates the cache
        let _ = hot.trace.util(first); // hot: guaranteed cache hits
        assert!(
            cloudscope::tracegen::store_io::decode_report(&store_dir, &[0xFF; 4]).is_err(),
            "garbage blob must be rejected"
        );
        let _ = std::fs::remove_dir_all(&store_dir);

        // repro: one passing and one failing shape check.
        let mut checks = ShapeChecks::new();
        checks.check("observability pass", true, "forced".to_owned());
        checks.check("observability fail", false, "forced".to_owned());

        // facade: the snapshot entry point counts itself.
        cloudscope::obs_snapshot()
    })
}

fn schema_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden/metrics_schema.json")
}

/// The full metric surface — names and kinds — matches the committed
/// schema exactly, and every workspace crate contributes at least one
/// metric. Renaming, retyping, adding, or losing a metric trips this.
#[test]
fn metric_surface_matches_committed_schema() {
    let snapshot = exercise_all_subsystems();
    let schema = Schema::from_snapshot(&snapshot);

    for prefix in [
        "analysis.",
        "cluster.",
        "facade.",
        "faults.",
        "ingest.",
        "kb.",
        "mgmt.",
        "model.",
        "par.",
        "repro.",
        "sim.",
        "stats.",
        "store.",
        "timeseries.",
        "tracegen.",
    ] {
        assert!(
            schema.metrics.keys().any(|name| name.starts_with(prefix)),
            "no metric registered under {prefix}"
        );
    }

    let path = schema_path();
    if std::env::var_os("CLOUDSCOPE_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("has parent")).expect("create tests/golden");
        std::fs::write(&path, schema.to_json()).expect("write schema golden");
        return;
    }

    let committed = Schema::parse_json(&std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing schema golden {} ({e}); run with CLOUDSCOPE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    }))
    .expect("committed schema parses");

    assert!(
        committed.validate(&snapshot).is_empty(),
        "snapshot violates committed schema: {:?}",
        committed.validate(&snapshot)
    );
    let missing: Vec<&String> = committed
        .metrics
        .keys()
        .filter(|name| !schema.metrics.contains_key(*name))
        .collect();
    assert!(
        missing.is_empty(),
        "metrics in the committed schema no longer register: {missing:?}.\n\
         If removal is intentional, re-bless with CLOUDSCOPE_UPDATE_GOLDEN=1."
    );
    assert_eq!(
        schema, committed,
        "metric surface drifted; re-bless with CLOUDSCOPE_UPDATE_GOLDEN=1 if intentional"
    );
}

/// The prefetch pipeline's counters reconcile at quiesce: every issued
/// prefetch is eventually consumed by a demand (hit) or retired unused
/// at close (wasted), the in-flight gauge returns to zero, and every
/// background decode lands in the latency histogram.
#[test]
fn store_prefetch_metrics_reconcile_at_quiesce() {
    let g = generate(&GeneratorConfig::small(29));
    let dir = std::env::temp_dir().join(format!("cloudscope-obs-prefetch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let par = Parallelism::with_workers(2);
    // Tiny chunks so every (region, day) lane spans several chunks and
    // the sweep has successors to read ahead into.
    let opts = cloudscope::store::WriteOptions {
        target_chunk_rows: 16,
        target_chunk_bytes: 2048,
        ..cloudscope::store::WriteOptions::default()
    };
    cloudscope::tracegen::write_generated(&g, &dir, opts, &par).expect("store write");

    let registry = Arc::new(Registry::new());
    let snap = cloudscope::obs::scoped(&registry, || {
        let back = cloudscope::tracegen::read_generated(
            &dir,
            cloudscope::store::TelemetryMode::OutOfCore { cache_chunks: 0 },
            &par,
        )
        .expect("store read");
        // Id-ordered full sweep: the access pattern the readahead
        // planner predicts.
        for vm in back.trace.vms() {
            let _ = back.trace.util(vm.id);
        }
        drop(back); // quiesce: joins the decode workers
        registry.snapshot()
    });
    let _ = std::fs::remove_dir_all(&dir);

    let issued = snap.counter("store.prefetch.issued").unwrap_or(0);
    let hits = snap.counter("store.prefetch.hits").unwrap_or(0);
    let wasted = snap.counter("store.prefetch.wasted").unwrap_or(0);
    assert!(issued > 0, "the sweep must trigger the readahead planner");
    assert_eq!(
        issued,
        hits + wasted,
        "issued prefetches must be consumed or retired: {issued} != {hits} + {wasted}"
    );
    assert_eq!(
        snap.gauge("store.prefetch.in_flight"),
        Some(0.0),
        "no prefetch may be left in flight after close"
    );
    let decode = snap
        .histogram("store.prefetch.decode_ns")
        .expect("decode histogram registers");
    // Every consumed prefetch was decoded in the background; prefetches
    // still queued at close are discarded undecoded, so the histogram
    // count sits between the hits and the issue count.
    assert!(
        hits <= decode.count && decode.count <= issued,
        "background decodes ({}) must cover hits ({hits}) and never exceed issues ({issued})",
        decode.count
    );
    // Prefetch hits are a subset of the LRU misses they absorbed.
    let misses = snap.counter("store.cache.misses").unwrap_or(0);
    assert!(
        hits <= misses,
        "prefetch hits ({hits}) cannot exceed cache misses ({misses})"
    );
}
