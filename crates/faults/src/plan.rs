//! The seeded fault plan and the report of what it actually did.

use cloudscope_model::prelude::*;

/// A regional monitoring outage: every sample that a VM in `region`
/// would have transmitted during the window is lost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Blackout {
    /// Region whose collectors go dark.
    pub region: RegionId,
    /// When the outage starts (trace time).
    pub start: SimTime,
    /// How long it lasts.
    pub duration: SimDuration,
}

impl Blackout {
    /// Whether a sample transmitted at `minute` from `region` falls into
    /// this outage.
    #[must_use]
    pub fn covers(&self, region: RegionId, minute: i64) -> bool {
        self.region == region
            && minute >= self.start.minutes()
            && minute < self.start.minutes() + self.duration.minutes()
    }
}

/// A complete, seeded description of what goes wrong between the
/// in-guest monitors and the trace store. Same plan, same input trace ⇒
/// byte-identical corrupted trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Master seed for every per-VM corruption stream.
    pub seed: u64,
    /// Probability that any one sample is silently lost in transit.
    pub drop_probability: f64,
    /// Probability that a delivered sample arrives twice.
    pub duplicate_probability: f64,
    /// Probability that a delivered sample swaps places with its
    /// predecessor on the wire (local reordering).
    pub reorder_probability: f64,
    /// Probability that a delivered sample carries a garbage reading
    /// (NaN or a negative value) that ingest must reject.
    pub invalid_probability: f64,
    /// Per-VM constant clock skew, drawn uniformly from
    /// `[-max, +max]` minutes and added to every recorded timestamp.
    pub max_clock_skew_minutes: i64,
    /// Regional monitoring outages.
    pub blackouts: Vec<Blackout>,
}

impl FaultPlan {
    /// A plan that corrupts nothing — the identity baseline every fault
    /// test compares against.
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        Self {
            seed,
            drop_probability: 0.0,
            duplicate_probability: 0.0,
            reorder_probability: 0.0,
            invalid_probability: 0.0,
            max_clock_skew_minutes: 0,
            blackouts: Vec::new(),
        }
    }

    /// The standard corruption profile the robustness gate runs under:
    /// 5% uniform sample loss plus one 6-hour monitoring blackout in
    /// region 0 starting Wednesday noon, with light duplication,
    /// reordering, garbage readings, and ±2 minutes of clock skew on
    /// top (all of which ingest must absorb without extra loss).
    #[must_use]
    pub fn standard(seed: u64) -> Self {
        Self {
            seed,
            drop_probability: 0.05,
            duplicate_probability: 0.01,
            reorder_probability: 0.01,
            invalid_probability: 0.005,
            max_clock_skew_minutes: 2,
            blackouts: vec![Blackout {
                region: RegionId::new(0),
                start: SimTime::from_days(3) + SimDuration::from_hours(12),
                duration: SimDuration::from_hours(6),
            }],
        }
    }
}

/// What a [`corrupt_trace`](crate::corrupt_trace) run actually did —
/// the ground truth a robustness experiment reports alongside its
/// verdicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Telemetry-bearing VMs processed.
    pub vms: usize,
    /// Samples the pristine trace put on the wire.
    pub samples_in: usize,
    /// Present samples surviving ingest (gaps excluded).
    pub samples_out: usize,
    /// Samples lost to uniform drops.
    pub dropped: usize,
    /// Samples lost to regional blackouts.
    pub blackout_dropped: usize,
    /// Samples delivered twice.
    pub duplicated: usize,
    /// Adjacent wire swaps applied.
    pub reordered: usize,
    /// Samples turned into garbage readings.
    pub invalidated: usize,
    /// Samples whose skewed timestamp left the trace week entirely.
    pub out_of_week: usize,
}

impl FaultReport {
    /// Fraction of wire samples that did not make it into the corrupted
    /// trace as valid readings, in `[0, 1]`.
    #[must_use]
    pub fn loss_fraction(&self) -> f64 {
        if self.samples_in == 0 {
            return 0.0;
        }
        1.0 - self.samples_out as f64 / self.samples_in as f64
    }

    /// Publishes this report's tallies as `faults.corrupt.*` counters on
    /// the current registry. Called once per corruption pass — the
    /// per-sample hot loops stay metric-free.
    pub fn flush_metrics(&self) {
        let counts: [(&str, usize); 9] = [
            ("faults.corrupt.vms_corrupted", self.vms),
            ("faults.corrupt.samples_in", self.samples_in),
            ("faults.corrupt.samples_out", self.samples_out),
            ("faults.corrupt.samples_dropped", self.dropped),
            ("faults.corrupt.blackout_dropped", self.blackout_dropped),
            ("faults.corrupt.duplicated", self.duplicated),
            ("faults.corrupt.reordered", self.reordered),
            ("faults.corrupt.invalidated", self.invalidated),
            ("faults.corrupt.out_of_week", self.out_of_week),
        ];
        for (name, value) in counts {
            cloudscope_obs::counter(name).add(value as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackout_window_is_half_open() {
        let b = Blackout {
            region: RegionId::new(1),
            start: SimTime::from_hours(10),
            duration: SimDuration::from_hours(2),
        };
        assert!(!b.covers(RegionId::new(1), 599));
        assert!(b.covers(RegionId::new(1), 600));
        assert!(b.covers(RegionId::new(1), 719));
        assert!(!b.covers(RegionId::new(1), 720));
        assert!(!b.covers(RegionId::new(0), 650));
    }

    #[test]
    fn standard_plan_shape() {
        let p = FaultPlan::standard(42);
        assert_eq!(p.seed, 42);
        assert!((p.drop_probability - 0.05).abs() < 1e-12);
        assert_eq!(p.blackouts.len(), 1);
        assert_eq!(p.blackouts[0].duration.minutes(), 360);
        let clean = FaultPlan::clean(42);
        assert_eq!(clean.drop_probability, 0.0);
        assert!(clean.blackouts.is_empty());
    }

    #[test]
    fn loss_fraction_guards_empty() {
        assert_eq!(FaultReport::default().loss_fraction(), 0.0);
        let r = FaultReport {
            samples_in: 200,
            samples_out: 190,
            ..FaultReport::default()
        };
        assert!((r.loss_fraction() - 0.05).abs() < 1e-12);
    }
}
