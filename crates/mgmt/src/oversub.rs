//! Chance-constrained resource over-subscription (the Insight 2/3
//! implication; the paper cites a 20–86% utilization improvement over
//! baseline depending on the safety constraint).
//!
//! Given the utilization history of the VMs sharing a capacity pool, the
//! planner picks the smallest physical reservation `C` such that
//! `P(aggregate demand > C) <= epsilon`. Reducing the reservation below
//! the sum of requested cores raises achieved utilization; `epsilon` is
//! the safety knob.

use crate::error::MgmtError;
use cloudscope_stats::percentile::percentile;
use cloudscope_stats::summary::Summary;
use serde::{Deserialize, Serialize};

/// How the chance constraint is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OversubMethod {
    /// No over-subscription: reserve the full requested cores (baseline).
    PeakReservation,
    /// Gaussian bound: `C = mean + z(1-epsilon) * std` of the aggregate
    /// demand (cheap, slightly conservative for heavy tails).
    GaussianBound,
    /// Empirical quantile of the observed aggregate demand.
    EmpiricalQuantile,
}

/// One VM's demand input: its utilization history (percent of its own
/// cores) and its core count.
#[derive(Debug, Clone, PartialEq)]
pub struct VmDemand {
    /// Allocated (requested) cores.
    pub cores: u32,
    /// Utilization samples in percent of `cores`.
    pub utilization: Vec<f64>,
}

/// The planner's output for one pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OversubPlan {
    /// Sum of requested cores (the baseline reservation).
    pub requested_cores: f64,
    /// Chance-constrained reservation.
    pub reserved_cores: f64,
    /// Mean aggregate demand in cores.
    pub mean_demand: f64,
    /// Fraction of history samples where demand exceeds the reservation
    /// (must be ≈ ≤ epsilon for the empirical method).
    pub violation_rate: f64,
    /// Achieved-utilization improvement over the baseline:
    /// `requested/reserved - 1` (e.g. 0.35 = +35%).
    pub utilization_improvement: f64,
}

/// Chance-constrained over-subscription planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OversubPlanner {
    epsilon: f64,
    method: OversubMethod,
}

impl OversubPlanner {
    /// Creates a planner with violation budget `epsilon` in `(0, 0.5)`.
    ///
    /// # Errors
    /// Returns [`MgmtError::InvalidParameter`] for epsilon outside range.
    pub fn new(epsilon: f64, method: OversubMethod) -> Result<Self, MgmtError> {
        if !(epsilon > 0.0 && epsilon < 0.5) {
            return Err(MgmtError::InvalidParameter("epsilon must be in (0, 0.5)"));
        }
        Ok(Self { epsilon, method })
    }

    /// Plans the reservation for a pool of VMs with aligned utilization
    /// histories.
    ///
    /// # Errors
    /// Returns [`MgmtError::InsufficientHistory`] if the pool is empty or
    /// histories have unequal lengths / no samples.
    pub fn plan(&self, vms: &[VmDemand]) -> Result<OversubPlan, MgmtError> {
        let Some(first) = vms.first() else {
            return Err(MgmtError::InsufficientHistory("empty pool"));
        };
        let len = first.utilization.len();
        if len == 0 || vms.iter().any(|v| v.utilization.len() != len) {
            return Err(MgmtError::InsufficientHistory("misaligned histories"));
        }
        // Aggregate demand in cores at each sample.
        let mut demand = vec![0.0f64; len];
        let mut requested = 0.0f64;
        for vm in vms {
            requested += f64::from(vm.cores);
            for (d, &u) in demand.iter_mut().zip(&vm.utilization) {
                *d += u / 100.0 * f64::from(vm.cores);
            }
        }
        let summary: Summary = demand.iter().copied().collect();
        let reserved = match self.method {
            OversubMethod::PeakReservation => requested,
            OversubMethod::GaussianBound => {
                let z = inverse_normal_cdf(1.0 - self.epsilon);
                (summary.mean() + z * summary.population_std_dev()).min(requested)
            }
            OversubMethod::EmpiricalQuantile => percentile(&demand, 100.0 * (1.0 - self.epsilon))
                .map_err(|_| MgmtError::InsufficientHistory("demand percentile"))?
                .min(requested),
        }
        .max(summary.mean().max(1e-9));
        let violations = demand.iter().filter(|&&d| d > reserved).count();
        cloudscope_obs::counter("mgmt.oversub.plans_computed").inc();
        Ok(OversubPlan {
            requested_cores: requested,
            reserved_cores: reserved,
            mean_demand: summary.mean(),
            violation_rate: violations as f64 / len as f64,
            utilization_improvement: requested / reserved - 1.0,
        })
    }

    /// The violation budget.
    #[must_use]
    pub const fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

/// Acklam-style rational approximation of the standard normal inverse
/// CDF, accurate to ~1e-9 over (0, 1).
#[must_use]
pub fn inverse_normal_cdf(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if p <= 0.0 {
        return f64::NEG_INFINITY;
    }
    if p >= 1.0 {
        return f64::INFINITY;
    }
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-noise in [0, 1).
    fn noise(i: usize, salt: u64) -> f64 {
        let mut z = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = z ^ (z >> 27);
        (z % 10_000) as f64 / 10_000.0
    }

    fn stable_pool(vms: usize, mean_util: f64) -> Vec<VmDemand> {
        (0..vms)
            .map(|v| VmDemand {
                cores: 8,
                utilization: (0..2016)
                    .map(|i| mean_util + 4.0 * (noise(i, v as u64) - 0.5))
                    .collect(),
            })
            .collect()
    }

    #[test]
    fn inverse_normal_matches_known_quantiles() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.99) - 2.326_348).abs() < 1e-4);
        assert!((inverse_normal_cdf(0.025) + 1.959_964).abs() < 1e-4);
    }

    #[test]
    fn baseline_reserves_everything() {
        let planner = OversubPlanner::new(0.01, OversubMethod::PeakReservation).unwrap();
        let plan = planner.plan(&stable_pool(10, 20.0)).unwrap();
        assert_eq!(plan.requested_cores, 80.0);
        assert_eq!(plan.reserved_cores, 80.0);
        assert_eq!(plan.utilization_improvement, 0.0);
        assert_eq!(plan.violation_rate, 0.0);
    }

    #[test]
    fn stable_pool_gains_large_improvement() {
        // 20% mean utilization: reservation shrinks dramatically.
        let planner = OversubPlanner::new(0.01, OversubMethod::EmpiricalQuantile).unwrap();
        let plan = planner.plan(&stable_pool(10, 20.0)).unwrap();
        assert!(plan.reserved_cores < 0.4 * plan.requested_cores);
        assert!(plan.utilization_improvement > 1.0, "more than doubled");
        assert!(plan.violation_rate <= 0.011, "violations within budget");
    }

    #[test]
    fn tighter_epsilon_reserves_more() {
        let pool = stable_pool(10, 20.0);
        let strict = OversubPlanner::new(0.001, OversubMethod::GaussianBound)
            .unwrap()
            .plan(&pool)
            .unwrap();
        let loose = OversubPlanner::new(0.1, OversubMethod::GaussianBound)
            .unwrap()
            .plan(&pool)
            .unwrap();
        assert!(strict.reserved_cores > loose.reserved_cores);
        assert!(strict.utilization_improvement < loose.utilization_improvement);
    }

    #[test]
    fn gaussian_close_to_empirical_for_gaussianish_demand() {
        let pool = stable_pool(30, 25.0);
        let g = OversubPlanner::new(0.05, OversubMethod::GaussianBound)
            .unwrap()
            .plan(&pool)
            .unwrap();
        let e = OversubPlanner::new(0.05, OversubMethod::EmpiricalQuantile)
            .unwrap()
            .plan(&pool)
            .unwrap();
        let rel = (g.reserved_cores - e.reserved_cores).abs() / e.reserved_cores;
        assert!(rel < 0.05, "methods should agree: {rel}");
    }

    #[test]
    fn correlated_peaks_limit_improvement() {
        // All VMs peak together (the private-cloud node-level hazard the
        // paper's Insight 4 warns about) vs independent phases.
        let correlated: Vec<VmDemand> = (0..10)
            .map(|_| VmDemand {
                cores: 8,
                utilization: (0..2016)
                    .map(|i| {
                        15.0 + 45.0 * ((i as f64 / 288.0) * std::f64::consts::TAU).sin().max(0.0)
                    })
                    .collect(),
            })
            .collect();
        let independent: Vec<VmDemand> = (0..10)
            .map(|v| VmDemand {
                cores: 8,
                utilization: (0..2016)
                    .map(|i| {
                        let phase = v as f64 / 10.0 * std::f64::consts::TAU;
                        15.0 + 45.0
                            * ((i as f64 / 288.0) * std::f64::consts::TAU + phase)
                                .sin()
                                .max(0.0)
                    })
                    .collect(),
            })
            .collect();
        let planner = OversubPlanner::new(0.02, OversubMethod::EmpiricalQuantile).unwrap();
        let corr_plan = planner.plan(&correlated).unwrap();
        let ind_plan = planner.plan(&independent).unwrap();
        assert!(
            ind_plan.utilization_improvement > corr_plan.utilization_improvement,
            "statistical multiplexing requires independent peaks"
        );
    }

    #[test]
    fn error_conditions() {
        assert!(OversubPlanner::new(0.0, OversubMethod::GaussianBound).is_err());
        assert!(OversubPlanner::new(0.6, OversubMethod::GaussianBound).is_err());
        let planner = OversubPlanner::new(0.05, OversubMethod::GaussianBound).unwrap();
        assert!(planner.plan(&[]).is_err());
        let misaligned = vec![
            VmDemand {
                cores: 1,
                utilization: vec![1.0, 2.0],
            },
            VmDemand {
                cores: 1,
                utilization: vec![1.0],
            },
        ];
        assert!(planner.plan(&misaligned).is_err());
    }

    #[test]
    fn paper_range_sweep() {
        // Across safety levels, improvements span a wide range, bracketing
        // the paper's 20%-86% (ours depends on the synthetic pool).
        let pool = stable_pool(20, 30.0);
        let mut improvements = Vec::new();
        for eps in [0.001, 0.01, 0.05, 0.1, 0.2] {
            let plan = OversubPlanner::new(eps, OversubMethod::EmpiricalQuantile)
                .unwrap()
                .plan(&pool)
                .unwrap();
            improvements.push(plan.utilization_improvement);
        }
        assert!(improvements.windows(2).all(|w| w[0] <= w[1] + 1e-9));
        assert!(improvements[0] > 0.2, "even strict oversub improves >20%");
    }
}
