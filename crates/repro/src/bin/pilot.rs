//! The Canada pilot (Section IV-B): shifting ServiceX from a hot region
//! to a cold one. Paper: source underutilized cores 23% -> 16%, source
//! core-utilization rate 42% -> 37%; destination changes minor.

use cloudscope::prelude::*;
use cloudscope_repro::checks::{pilot_checks, run_pilot};
use cloudscope_repro::{MetricsOpt, ShapeChecks};

fn main() {
    let metrics = MetricsOpt::from_args();
    let generated = metrics.load_trace();
    let at = SimTime::from_minutes(2 * 24 * 60 + 14 * 60);

    let pilot = run_pilot(&generated, at)
        .expect("shift simulates")
        .expect("a shiftable underutilized service exists");
    let outcome = &pilot.outcome;

    println!(
        "## Pilot: shift ServiceX ({}) {} -> {}",
        pilot.service, pilot.hot, pilot.cold
    );
    println!("metric,source_before,source_after,dest_before,dest_after");
    println!(
        "underutilized_core_pct,{:.1},{:.1},{:.1},{:.1}",
        100.0 * outcome.source_before.underutilized_pct(),
        100.0 * outcome.source_after.underutilized_pct(),
        100.0 * outcome.destination_before.underutilized_pct(),
        100.0 * outcome.destination_after.underutilized_pct(),
    );
    println!(
        "core_utilization_rate,{:.1},{:.1},{:.1},{:.1}",
        100.0 * outcome.source_before.core_utilization_rate(),
        100.0 * outcome.source_after.core_utilization_rate(),
        100.0 * outcome.destination_before.core_utilization_rate(),
        100.0 * outcome.destination_after.core_utilization_rate(),
    );
    println!("moved_vms,{},,,", outcome.moved_vms);
    println!();

    let mut checks = ShapeChecks::new();
    pilot_checks(outcome, &cloudscope_repro::active_profile(), &mut checks);
    let ok = checks.finish("pilot");
    metrics.write();
    std::process::exit(i32::from(!ok));
}
