//! Radix-2 iterative fast Fourier transform and the periodogram built on
//! it. Implemented from scratch: the period detector only needs power
//! spectra of zero-padded real signals.

use crate::error::SeriesError;

/// A complex number as a `(re, im)` pair; kept private-shaped but public
/// for testability of round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    #[must_use]
    pub fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
/// Returns [`SeriesError::NotPowerOfTwo`] unless `buf.len()` is a power of
/// two (and nonzero).
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), SeriesError> {
    let n = buf.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(SeriesError::NotPowerOfTwo(n));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if i < j {
            buf.swap(i, j);
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -std::f64::consts::TAU / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let t = chunk[k + half].mul(w);
                chunk[k] = Complex::new(u.re + t.re, u.im + t.im);
                chunk[k + half] = Complex::new(u.re - t.re, u.im - t.im);
                w = w.mul(w_len);
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Inverse FFT via conjugation, for round-trip testing and convolution.
///
/// # Errors
/// Returns [`SeriesError::NotPowerOfTwo`] unless the length is a power of
/// two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), SeriesError> {
    for c in buf.iter_mut() {
        c.im = -c.im;
    }
    fft_in_place(buf)?;
    let n = buf.len() as f64;
    for c in buf.iter_mut() {
        c.re /= n;
        c.im = -c.im / n;
    }
    Ok(())
}

/// Smallest power of two ≥ `n`.
#[must_use]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// Periodogram of a real signal: the signal is mean-centred, zero-padded
/// to the next power of two, transformed, and the one-sided power spectrum
/// `|X_k|²/N` returned for `k = 0..N/2`.
///
/// Frequency of bin `k` is `k / (N * step)` cycles per time unit, where
/// `N` is the padded length.
///
/// Returns the power vector and the padded length `N`.
///
/// # Errors
/// Returns [`SeriesError::TooShort`] for signals with fewer than 4 points.
pub fn periodogram(signal: &[f64]) -> Result<(Vec<f64>, usize), SeriesError> {
    if signal.len() < 4 {
        return Err(SeriesError::TooShort(signal.len()));
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let n = next_power_of_two(signal.len());
    let mut buf: Vec<Complex> = signal
        .iter()
        .map(|&v| Complex::new(v - mean, 0.0))
        .chain(std::iter::repeat(Complex::default()))
        .take(n)
        .collect();
    fft_in_place(&mut buf)?;
    let power = buf[..n / 2]
        .iter()
        .map(|c| c.norm_sq() / n as f64)
        .collect();
    Ok((power, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for c in &buf {
            assert!(approx(c.re, 1.0, 1e-12) && approx(c.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut buf = vec![Complex::new(1.0, 0.0); 8];
        fft_in_place(&mut buf).unwrap();
        assert!(approx(buf[0].re, 8.0, 1e-12));
        for c in &buf[1..] {
            assert!(c.norm_sq() < 1e-20);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let original: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = original.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in original.iter().zip(&buf) {
            assert!(approx(a.re, b.re, 1e-9) && approx(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex::default(); 6];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(SeriesError::NotPowerOfTwo(6))
        ));
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn parseval_energy_conserved() {
        let signal: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.1).sin() * 3.0).collect();
        let mut buf: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut buf).unwrap();
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum::<f64>() / 128.0;
        assert!(approx(time_energy, freq_energy, 1e-6));
    }

    #[test]
    fn periodogram_peaks_at_signal_frequency() {
        // 8 cycles over 256 samples -> padded N = 256, peak at bin 8.
        let signal: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 256.0).sin())
            .collect();
        let (power, n) = periodogram(&signal).unwrap();
        assert_eq!(n, 256);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn periodogram_zero_pads_awkward_lengths() {
        let signal: Vec<f64> = (0..300)
            .map(|i| (std::f64::consts::TAU * i as f64 / 50.0).sin())
            .collect();
        let (power, n) = periodogram(&signal).unwrap();
        assert_eq!(n, 512);
        assert_eq!(power.len(), 256);
    }

    #[test]
    fn periodogram_rejects_tiny_input() {
        assert!(matches!(
            periodogram(&[1.0, 2.0]),
            Err(SeriesError::TooShort(2))
        ));
    }

    #[test]
    fn dc_removed_before_transform() {
        let signal = vec![5.0; 64];
        let (power, _) = periodogram(&signal).unwrap();
        assert!(power.iter().all(|&p| p < 1e-18));
    }
}
