//! Determinism: the generator and the full pipeline are pure functions of
//! the configuration seed, regardless of thread scheduling.

use cloudscope::prelude::*;

#[test]
fn same_seed_same_trace_and_report() {
    let a = generate(&GeneratorConfig::small(5));
    let b = generate(&GeneratorConfig::small(5));
    assert_eq!(a.trace.stats(), b.trace.stats());
    assert_eq!(a.report, b.report);
    // Spot-check record and telemetry equality.
    for idx in [0u64, 17, 99] {
        let vm = VmId::new(idx);
        assert_eq!(a.trace.vm(vm).unwrap(), b.trace.vm(vm).unwrap());
        assert_eq!(a.trace.util(vm), b.trace.util(vm));
    }
    let ra = CharacterizationReport::analyze(&a.trace, &ReportConfig::default()).unwrap();
    let rb = CharacterizationReport::analyze(&b.trace, &ReportConfig::default()).unwrap();
    assert_eq!(
        ra.temporal.private_short_fraction,
        rb.temporal.private_short_fraction
    );
    assert_eq!(
        ra.node_correlation.0.median(),
        rb.node_correlation.0.median()
    );
    assert_eq!(
        ra.private_patterns.classified(),
        rb.private_patterns.classified()
    );
}

#[test]
fn different_seeds_differ() {
    let a = generate(&GeneratorConfig::small(1));
    let b = generate(&GeneratorConfig::small(2));
    assert_ne!(a.trace.stats(), b.trace.stats());
}

#[test]
fn services_directory_is_stable() {
    let a = generate(&GeneratorConfig::small(5));
    let b = generate(&GeneratorConfig::small(5));
    assert_eq!(a.services.len(), b.services.len());
    for (x, y) in a.services.iter().zip(&b.services) {
        assert_eq!(x.service, y.service);
        assert_eq!(x.profile, y.profile);
        assert_eq!(x.regions, y.regions);
        assert_eq!(x.standing_vms, y.standing_vms);
    }
}
