//! Round-trip property suite: arbitrary traces written with random
//! chunk sizes, writer counts, and compression levels must decode
//! bit-identically — resident and out-of-core alike — and the store's
//! byte content must not depend on the worker count.

mod common;

use cloudscope_par::Parallelism;
use cloudscope_store::{
    store_exists, write_trace, Batch, ChunkKind, Column, PrefetchConfig, Projection, ScanFilter,
    StoreTelemetry, TelemetryMode, TraceReader, WriteOptions,
};
use common::{assert_traces_equal, dir_snapshot, trace_from_seeds, TempDir};
use proptest::prelude::*;

fn options(chunk_rows: u32, chunk_kib: usize, level: u8) -> WriteOptions {
    WriteOptions {
        target_chunk_rows: chunk_rows,
        target_chunk_bytes: chunk_kib * 1024,
        level,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: any trace, any chunk geometry, any
    /// compression level, any worker count — the trace read back from
    /// disk is observationally identical in both telemetry modes.
    #[test]
    fn arbitrary_traces_roundtrip_bit_identically(
        seeds in proptest::collection::vec(any::<u64>(), 1..80),
        chunk_rows in 1u32..64,
        chunk_kib in 1usize..64,
        level in 0u8..4,
        workers in 1usize..9,
        cache_chunks in 1usize..5,
    ) {
        let trace = trace_from_seeds(&seeds);
        let dir = TempDir::new("roundtrip");
        let par = Parallelism::with_workers(workers);
        write_trace(&trace, dir.path(), options(chunk_rows, chunk_kib, level), &par).unwrap();
        prop_assert!(store_exists(dir.path()));

        let reader = TraceReader::open(dir.path()).unwrap();
        prop_assert_eq!(reader.vm_count(), seeds.len() as u64);

        let resident = reader.read_trace(TelemetryMode::Resident, &par).unwrap();
        assert_traces_equal(&trace, &resident);
        prop_assert!(!resident.telemetry_is_lazy());

        let lazy = reader
            .read_trace(TelemetryMode::OutOfCore { cache_chunks }, &par)
            .unwrap();
        prop_assert!(lazy.telemetry_is_lazy());
        assert_traces_equal(&trace, &lazy);
    }

    /// The store's on-disk bytes are a pure function of the data and
    /// the options: worker count must not change a single byte.
    #[test]
    fn store_bytes_do_not_depend_on_worker_count(
        seeds in proptest::collection::vec(any::<u64>(), 1..60),
        chunk_rows in 1u32..32,
        chunk_kib in 1usize..32,
        level in 0u8..4,
    ) {
        let trace = trace_from_seeds(&seeds);
        let baseline = TempDir::new("det-base");
        write_trace(
            &trace,
            baseline.path(),
            options(chunk_rows, chunk_kib, level),
            &Parallelism::with_workers(1),
        )
        .unwrap();
        let expected = dir_snapshot(baseline.path());
        prop_assert!(!expected.is_empty());
        for workers in [2usize, 8] {
            let dir = TempDir::new("det-par");
            write_trace(
                &trace,
                dir.path(),
                options(chunk_rows, chunk_kib, level),
                &Parallelism::with_workers(workers),
            )
            .unwrap();
            prop_assert_eq!(&dir_snapshot(dir.path()), &expected, "workers = {}", workers);
        }
    }

    /// Prefetch tuning is invisible: any cache size × prefetch depth ×
    /// decode-worker count × in-flight window budget must return series
    /// byte-identical to the serial, prefetch-disabled reader — and to
    /// the trace the store was written from.
    #[test]
    fn prefetch_tuning_never_changes_a_byte(
        seeds in proptest::collection::vec(any::<u64>(), 1..60),
        chunk_rows in 1u32..32,
        cache_chunks in 1usize..5,
        depth in 0usize..4,
        workers in 1usize..5,
        window_kib in 1usize..129,
    ) {
        let trace = trace_from_seeds(&seeds);
        let dir = TempDir::new("prefetch");
        let par = Parallelism::with_workers(workers);
        write_trace(&trace, dir.path(), options(chunk_rows, 4, 2), &par).unwrap();

        let baseline = StoreTelemetry::open_with(
            dir.path(),
            cache_chunks,
            PrefetchConfig::disabled(),
            Parallelism::with_workers(1),
        )
        .unwrap();
        let tuned = StoreTelemetry::open_with(
            dir.path(),
            cache_chunks,
            PrefetchConfig { workers, depth, window_bytes: window_kib * 1024 },
            par,
        )
        .unwrap();
        for vm in trace.vms() {
            let expected = baseline.try_load(vm.id).unwrap();
            prop_assert_eq!(&expected, &trace.util(vm.id));
            prop_assert_eq!(&tuned.try_load(vm.id).unwrap(), &expected);
        }
    }

    /// Projection and predicate pushdown return exactly the rows and
    /// columns a full scan would, just fewer of them.
    #[test]
    fn projected_scans_agree_with_full_scans(
        seeds in proptest::collection::vec(any::<u64>(), 1..60),
        chunk_rows in 1u32..16,
    ) {
        let trace = trace_from_seeds(&seeds);
        let dir = TempDir::new("projection");
        let par = Parallelism::with_workers(2);
        write_trace(&trace, dir.path(), options(chunk_rows, 4, 2), &par).unwrap();
        let reader = TraceReader::open(dir.path()).unwrap();

        // Projected metadata scan: created times only.
        let mut projected: Vec<(u64, i64)> = Vec::new();
        for batch in reader.scan(
            ScanFilter::all().kind(ChunkKind::VmMeta),
            Projection::columns(&[Column::Created]),
        ) {
            let Batch::VmMeta(b) = batch.unwrap() else { panic!("filtered to vm-meta") };
            prop_assert!(b.sizes.is_none(), "unprojected column was decoded");
            let created = b.created.as_ref().expect("projected column");
            projected.extend(
                b.ids.iter().zip(created).map(|(id, t)| (id.index(), t.minutes())),
            );
        }
        projected.sort_unstable();
        let expected: Vec<(u64, i64)> = trace
            .vms()
            .iter()
            .map(|vm| (vm.id.index(), vm.created.minutes()))
            .collect();
        prop_assert_eq!(projected, expected);

        // Region pushdown: region-1 chunks hold exactly the region-1 rows.
        let mut region1 = 0usize;
        for batch in reader.scan(
            ScanFilter::all().kind(ChunkKind::VmMeta).region(1),
            Projection::columns(&[Column::Region]),
        ) {
            let Batch::VmMeta(b) = batch.unwrap() else { panic!("filtered to vm-meta") };
            for r in b.regions.as_ref().expect("projected column") {
                prop_assert_eq!(r.index(), 1);
                region1 += 1;
            }
        }
        prop_assert_eq!(region1, trace.vms().iter().filter(|vm| vm.region.index() == 1).count());
    }
}

/// One fixed mid-size trace exercised without proptest so the suite
/// keeps a deterministic smoke test that fails with readable output.
#[test]
fn fixed_trace_roundtrip_smoke() {
    let seeds: Vec<u64> = (0..200u64)
        .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 7)
        .collect();
    let trace = trace_from_seeds(&seeds);
    let dir = TempDir::new("smoke");
    let par = Parallelism::with_workers(4);
    write_trace(&trace, dir.path(), WriteOptions::default(), &par).unwrap();
    let reader = TraceReader::open(dir.path()).unwrap();
    let back = reader.read_trace(TelemetryMode::Resident, &par).unwrap();
    assert_traces_equal(&trace, &back);

    // The manifest names every chunk and the blobs carry the model.
    assert!(reader
        .manifest()
        .chunks
        .iter()
        .any(|c| c.meta.kind == ChunkKind::VmMeta));
    assert!(reader
        .manifest()
        .chunks
        .iter()
        .any(|c| c.meta.kind == ChunkKind::Telemetry));
    assert!(reader.read_blob("topology").is_ok());
    assert!(reader.read_blob("subscriptions").is_ok());
    assert!(reader.read_blob("nope").is_err());
}

/// Chunk day/region pushdown prunes chunks without reading them: a
/// filter on a day that holds no rows yields no batches at all.
#[test]
fn empty_filters_read_nothing() {
    let trace = trace_from_seeds(&[1, 2, 3]);
    let dir = TempDir::new("empty-filter");
    let par = Parallelism::with_workers(1);
    write_trace(&trace, dir.path(), WriteOptions::default(), &par).unwrap();
    let reader = TraceReader::open(dir.path()).unwrap();
    let batches: Vec<_> = reader
        .scan(ScanFilter::all().region(99), Projection::all())
        .collect();
    assert!(batches.is_empty());
}
