//! The continuous extraction pipeline of Section V: worker threads sweep
//! the subscriptions, extract their workload knowledge from telemetry,
//! and feed the knowledge base — the shape a production deployment would
//! have, with the trace standing in for the telemetry stream.

use crate::extract::extract_subscription_knowledge;
use crate::knowledge::WorkloadKnowledge;
use crate::store::{KbStore, KnowledgeBase};
use cloudscope_analysis::PatternClassifier;
use cloudscope_model::ids::SubscriptionId;
use cloudscope_model::trace::Trace;
use cloudscope_par::Parallelism;
use std::time::Duration;

/// Extraction batch size per worker: large enough that each batch keeps
/// every worker busy across several steal chunks, small enough that the
/// buffered [`WorkloadKnowledge`](crate::knowledge::WorkloadKnowledge)
/// values between upserts
/// stay bounded regardless of trace size.
const EXTRACTION_BATCH_PER_WORKER: usize = 64;

/// Statistics of one pipeline run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// Subscriptions processed.
    pub processed: usize,
    /// Entries stored (subscriptions with at least one VM).
    pub stored: usize,
    /// Subscriptions skipped (no VMs).
    pub skipped: usize,
    /// Store writes that had to be retried after a transient failure.
    pub retries: usize,
    /// Entries dropped because the store kept failing past the retry
    /// budget. Always zero with the infallible in-memory store.
    pub failed: usize,
    /// Batched writes issued to the store ([`KbStore::try_feed`] calls).
    pub batches: usize,
}

/// Bounded retry-with-backoff policy for transient store failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per write, the first included. Must be at least 1.
    pub max_attempts: u32,
    /// Sleep before the first retry; doubles on each further retry
    /// (1×, 2×, 4×, …).
    pub base_backoff: Duration,
}

impl Default for RetryPolicy {
    /// Four attempts with 1 ms base backoff: rides out brief blips
    /// (worst-case ~7 ms asleep per entry) without stalling the sweep on
    /// a store that is actually down.
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(1),
        }
    }
}

/// Retries one entry whose first (batched) write attempt failed. The
/// batch write consumed attempt 1; this drives attempts `2..=max` with
/// exponential backoff, counting each non-terminal failure (including
/// that first one) into `stats.retries` and a terminal failure into
/// `stats.failed` — so a permanently failing entry burns exactly
/// `max_attempts - 1` retries, same as the pre-batching pipeline.
fn retry_failed_entry<S: KbStore + ?Sized>(
    store: &S,
    knowledge: &WorkloadKnowledge,
    policy: &RetryPolicy,
    stats: &mut PipelineStats,
) {
    let mut backoff = policy.base_backoff;
    let mut attempts_used: u32 = 1;
    loop {
        if attempts_used >= policy.max_attempts {
            stats.failed += 1;
            return;
        }
        // The previous attempt failed and budget remains: retry it.
        stats.retries += 1;
        cloudscope_obs::counter("kb.pipeline.retries").inc();
        if !backoff.is_zero() {
            cloudscope_obs::counter("kb.pipeline.backoff_sleeps").inc();
            std::thread::sleep(backoff);
        }
        backoff = backoff.saturating_mul(2);
        attempts_used += 1;
        match store.try_upsert(knowledge.clone()) {
            Ok(true) => {
                stats.stored += 1;
                return;
            }
            // Stale by the time the retry landed (another feed won the
            // race): neither stored nor failed, exactly like a stale
            // first-try write.
            Ok(false) => return,
            Err(_) => {}
        }
    }
}

/// Publishes one batch of extracted knowledge into any [`KbStore`]: a
/// single batched write ([`KbStore::try_feed`] — attempt 1 for every
/// entry), then bounded per-entry retries per `retry` for whatever the
/// store rejected, with terminal failures counted into
/// [`PipelineStats::failed`] rather than aborting the batch.
///
/// This is the *one* write path into the KB: the batch extraction
/// pipeline feeds each chunk through it, and the streaming ingestion
/// service (`cloudscope-ingest`) publishes every closed window through
/// it — so a durable backend's WAL semantics apply identically to
/// either producer.
///
/// # Panics
/// Panics if `retry.max_attempts == 0`.
pub fn publish_batch<S: KbStore + ?Sized>(
    store: &S,
    entries: &[WorkloadKnowledge],
    retry: &RetryPolicy,
    stats: &mut PipelineStats,
) {
    assert!(
        retry.max_attempts >= 1,
        "retry policy needs at least one attempt"
    );
    if entries.is_empty() {
        return;
    }
    stats.batches += 1;
    cloudscope_obs::counter("kb.pipeline.batches").inc();
    let outcome = store.try_feed(entries);
    stats.stored += outcome.stored;
    for (index, _first_error) in outcome.failures {
        retry_failed_entry(store, &entries[index], retry, stats);
    }
}

/// Runs the extraction pipeline over every subscription in the trace
/// with `workers` threads, feeding `kb`. Per-subscription extraction is
/// independent, so results are identical to a sequential sweep.
///
/// # Panics
/// Panics if `workers == 0`.
#[must_use]
pub fn run_extraction_pipeline(
    trace: &Trace,
    kb: &KnowledgeBase,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
    workers: usize,
) -> PipelineStats {
    run_extraction_pipeline_with(
        trace,
        kb,
        classifier,
        max_classified_vms_per_sub,
        workers,
        &RetryPolicy::default(),
    )
}

/// [`run_extraction_pipeline`] over any [`KbStore`] backend: each chunk
/// is ingested as one batched write ([`KbStore::try_feed`]), transient
/// per-entry failures are retried per `retry` (exponential backoff),
/// and entries the store keeps rejecting are counted into
/// [`PipelineStats::failed`] rather than aborting the sweep — one bad
/// entry must not cost the rest of the batch.
///
/// # Panics
/// Panics if `workers == 0` or `retry.max_attempts == 0`.
#[must_use]
pub fn run_extraction_pipeline_with<S: KbStore + ?Sized>(
    trace: &Trace,
    store: &S,
    classifier: &PatternClassifier,
    max_classified_vms_per_sub: usize,
    workers: usize,
    retry: &RetryPolicy,
) -> PipelineStats {
    assert!(
        retry.max_attempts >= 1,
        "retry policy needs at least one attempt"
    );
    let subscriptions: Vec<SubscriptionId> =
        trace.subscriptions().iter().map(|sub| sub.id).collect();
    // Extraction (the expensive part) runs on the shared executor; the
    // batched feeds happen on this thread in subscription order, so the
    // KB sees the same feed sequence for any worker count. Subscriptions
    // are processed in bounded batches so peak memory holds O(batch)
    // extracted knowledge values, not O(subscriptions), no matter the
    // trace size.
    let parallelism = Parallelism::with_workers(workers);
    let batch = (workers * EXTRACTION_BATCH_PER_WORKER).max(1);
    let mut stats = PipelineStats::default();
    for chunk in subscriptions.chunks(batch) {
        let extracted = {
            let _stage = cloudscope_obs::span("kb.pipeline.extract");
            parallelism.par_map(chunk, |&sub| {
                extract_subscription_knowledge(
                    trace,
                    sub,
                    classifier,
                    max_classified_vms_per_sub,
                    None,
                )
            })
        };
        let _stage = cloudscope_obs::span("kb.pipeline.upsert");
        stats.processed += extracted.len();
        let entries: Vec<WorkloadKnowledge> = extracted.into_iter().flatten().collect();
        stats.skipped += chunk.len() - entries.len();
        publish_batch(store, &entries, retry, &mut stats);
    }
    cloudscope_obs::counter("kb.pipeline.processed").add(stats.processed as u64);
    cloudscope_obs::counter("kb.pipeline.stored").add(stats.stored as u64);
    cloudscope_obs::counter("kb.pipeline.skipped").add(stats.skipped as u64);
    cloudscope_obs::counter("kb.pipeline.failed").add(stats.failed as u64);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreError;
    use cloudscope_tracegen::{generate, GeneratorConfig};

    #[test]
    fn pipeline_matches_sequential_extraction() {
        let g = generate(&GeneratorConfig::small(61));
        let classifier = PatternClassifier::default();

        let parallel_kb = KnowledgeBase::new();
        let stats = run_extraction_pipeline(&g.trace, &parallel_kb, &classifier, 2, 4);
        assert_eq!(stats.processed, g.trace.subscriptions().len());
        assert_eq!(stats.stored + stats.skipped, stats.processed);
        assert_eq!(parallel_kb.len(), stats.stored);

        let sequential_kb = KnowledgeBase::new();
        let seq_stats = run_extraction_pipeline(&g.trace, &sequential_kb, &classifier, 2, 1);
        assert_eq!(seq_stats.stored, stats.stored);
        // Entry-by-entry equality (region_agnostic is None in both).
        for sub in g.trace.subscriptions() {
            assert_eq!(parallel_kb.get(sub.id), sequential_kb.get(sub.id));
        }
    }

    #[test]
    fn repeated_runs_are_idempotent() {
        let g = generate(&GeneratorConfig::small(62));
        let classifier = PatternClassifier::default();
        let kb = KnowledgeBase::new();
        let first = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        let size = kb.len();
        // Same-timestamp refresh: entries overwrite, count stays.
        let second = run_extraction_pipeline(&g.trace, &kb, &classifier, 2, 2);
        assert_eq!(kb.len(), size);
        assert_eq!(first.processed, second.processed);
    }

    struct FlakyEveryOther {
        inner: KnowledgeBase,
        calls: std::sync::atomic::AtomicUsize,
    }

    impl KbStore for FlakyEveryOther {
        fn try_upsert(&self, knowledge: crate::WorkloadKnowledge) -> Result<bool, StoreError> {
            let n = self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if n.is_multiple_of(2) {
                return Err(StoreError::Transient("injected"));
            }
            self.inner.try_upsert(knowledge)
        }
    }

    struct AlwaysDown;

    impl KbStore for AlwaysDown {
        fn try_upsert(&self, _: crate::WorkloadKnowledge) -> Result<bool, StoreError> {
            Err(StoreError::Transient("down"))
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let g = generate(&GeneratorConfig::small(64));
        let classifier = PatternClassifier::default();
        let store = FlakyEveryOther {
            inner: KnowledgeBase::new(),
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        // Strict alternation means an entry can fail at most every other
        // attempt; 4 attempts ride it out with slack.
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
        };
        let stats = run_extraction_pipeline_with(&g.trace, &store, &classifier, 2, 2, &retry);
        assert_eq!(stats.failed, 0);
        assert!(stats.stored > 0);
        assert!(stats.retries > 0, "an alternating store must force retries");
        assert!(stats.batches >= 1);
        assert_eq!(store.inner.len(), stats.stored);
        // Attempt ledger: every try_upsert call either stored an entry or
        // was a non-terminal failure that got retried.
        assert_eq!(
            store.calls.load(std::sync::atomic::Ordering::SeqCst),
            stats.stored + stats.retries
        );

        // Same trace against the infallible store: identical contents.
        let clean = KnowledgeBase::new();
        let clean_stats = run_extraction_pipeline(&g.trace, &clean, &classifier, 2, 2);
        assert_eq!(clean_stats.stored, stats.stored);
        for sub in g.trace.subscriptions() {
            assert_eq!(store.inner.get(sub.id), clean.get(sub.id));
        }
    }

    #[test]
    fn persistent_failures_are_bounded_and_counted() {
        let g = generate(&GeneratorConfig::small(65));
        let retry = RetryPolicy {
            max_attempts: 4,
            base_backoff: Duration::ZERO,
        };
        let stats = run_extraction_pipeline_with(
            &g.trace,
            &AlwaysDown,
            &PatternClassifier::default(),
            2,
            2,
            &retry,
        );
        assert_eq!(stats.stored, 0);
        assert!(stats.failed > 0);
        assert_eq!(stats.failed + stats.skipped, stats.processed);
        // Each failed entry burns exactly max_attempts - 1 retries.
        assert_eq!(stats.retries, stats.failed * 3);
    }

    #[test]
    fn pipeline_over_a_crashing_durable_store() {
        // Drive the pipeline into a DurableKb whose durability layer
        // dies mid-sweep: the pipeline must absorb the failures (counted
        // into `failed`, never panicking), and everything it reports as
        // stored must actually be recoverable from disk.
        let g = generate(&GeneratorConfig::small(66));
        let classifier = PatternClassifier::default();
        let dir = std::env::temp_dir().join(format!(
            "cloudscope-kb-pipeline-crash-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);

        let db = crate::persist::DurableKb::open_with_shards(&dir, Some(2)).unwrap();
        // Die at the second WAL append: batch 1 commits, batch 2 onward
        // is refused (each refused batch costs one append attempt on the
        // batched write plus one per retry).
        db.arm_crash(crate::persist::CrashPlan::at_occurrence(
            crate::persist::CrashPoint::BeforeWalAppend,
            2,
        ));
        let retry = RetryPolicy {
            max_attempts: 2,
            base_backoff: Duration::ZERO,
        };
        // workers = 1 keeps batches small enough that several feeds
        // happen, so the crash lands between batches.
        let stats = run_extraction_pipeline_with(&g.trace, &db, &classifier, 2, 1, &retry);
        assert!(db.crashed());
        assert!(stats.batches >= 2, "need a multi-batch sweep");
        assert!(stats.stored > 0, "the first batch committed");
        assert!(stats.failed > 0, "post-crash batches must fail");
        assert_eq!(stats.stored + stats.skipped + stats.failed, stats.processed);
        // Each failed entry burned attempt 1 (batch) + 1 retry.
        assert_eq!(stats.retries, stats.failed);
        drop(db);

        let recovered = crate::persist::DurableKb::open(&dir).unwrap();
        assert_eq!(recovered.kb().len(), stats.stored);
        recovered.kb().check_consistency().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let g = generate(&GeneratorConfig::small(63));
        let kb = KnowledgeBase::new();
        let _ = run_extraction_pipeline(&g.trace, &kb, &PatternClassifier::default(), 2, 0);
    }
}
