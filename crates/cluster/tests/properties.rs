//! Property tests: the allocator never over-commits and conserves
//! capacity across arbitrary place/release interleavings.

use cloudscope_cluster::{
    AllocationError, ClusterAllocator, PlacementPolicy, PlacementRequest, SpreadingRule,
};
use cloudscope_model::ids::{ServiceId, VmId};
use cloudscope_model::subscription::CloudKind;
use cloudscope_model::topology::{NodeSku, Topology};
use cloudscope_model::vm::{Priority, VmSize};
use proptest::prelude::*;

fn build_allocator(policy: PlacementPolicy, spread: Option<u32>) -> ClusterAllocator {
    let mut b = Topology::builder();
    let r = b.add_region("prop", 0, "US");
    let d = b.add_datacenter(r);
    let c = b.add_cluster(d, CloudKind::Public, NodeSku::new(16, 128.0), 3, 4);
    let topo = b.build();
    ClusterAllocator::new(
        topo.cluster(c).unwrap(),
        policy,
        SpreadingRule {
            max_same_service_per_rack: spread,
        },
    )
}

#[derive(Debug, Clone)]
enum Op {
    Place {
        cores: u32,
        service: u32,
        spot: bool,
    },
    Release {
        slot: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u32..=16, 0u32..4, any::<bool>()).prop_map(|(cores, service, spot)| Op::Place {
            cores,
            service,
            spot
        }),
        (0usize..64).prop_map(|slot| Op::Release { slot }),
    ]
}

fn policy_strategy() -> impl Strategy<Value = PlacementPolicy> {
    prop_oneof![
        Just(PlacementPolicy::FirstFit),
        Just(PlacementPolicy::BestFit),
        Just(PlacementPolicy::WorstFit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn allocator_never_overcommits(
        ops in prop::collection::vec(op_strategy(), 1..200),
        policy in policy_strategy(),
        spread in prop_oneof![Just(None), (1u32..4).prop_map(Some)],
    ) {
        let mut alloc = build_allocator(policy, spread);
        let mut placed: Vec<(VmId, VmSize)> = Vec::new();
        let mut next_vm = 0u64;
        let mut expected_cores = 0u64;

        for op in ops {
            match op {
                Op::Place { cores, service, spot } => {
                    let vm = VmId::new(next_vm);
                    next_vm += 1;
                    let size = VmSize::new(cores, f64::from(cores) * 4.0);
                    let request = PlacementRequest {
                        vm,
                        size,
                        service: ServiceId::new(service),
                        priority: if spot { Priority::Spot } else { Priority::OnDemand },
                    };
                    match alloc.place(request) {
                        Ok(node) => {
                            placed.push((vm, size));
                            expected_cores += u64::from(cores);
                            prop_assert_eq!(alloc.placement_of(vm), Some(node));
                        }
                        Err(AllocationError::InsufficientCapacity(_))
                        | Err(AllocationError::SpreadingViolation(_)) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                    }
                }
                Op::Release { slot } => {
                    if !placed.is_empty() {
                        let (vm, size) = placed.swap_remove(slot % placed.len());
                        alloc.release(vm).expect("placed vm releases");
                        expected_cores -= u64::from(size.cores());
                    }
                }
            }

            // Invariants after every operation.
            let mut used = 0u64;
            for (_, state) in alloc.nodes() {
                prop_assert!(state.cores_used() <= state.cores_total());
                prop_assert!(state.memory_free() >= -1e-9);
                used += u64::from(state.cores_used());
            }
            prop_assert_eq!(used, expected_cores, "capacity conservation");
            prop_assert_eq!(alloc.placed_count(), placed.len());
        }
    }

    #[test]
    fn full_drain_restores_empty_cluster(
        cores in prop::collection::vec(1u32..=16, 1..50),
        policy in policy_strategy(),
    ) {
        let mut alloc = build_allocator(policy, None);
        let mut placed = Vec::new();
        for (i, &c) in cores.iter().enumerate() {
            let request = PlacementRequest {
                vm: VmId::new(i as u64),
                size: VmSize::new(c, f64::from(c)),
                service: ServiceId::new(0),
                priority: Priority::OnDemand,
            };
            if alloc.place(request).is_ok() {
                placed.push(VmId::new(i as u64));
            }
        }
        for vm in placed {
            alloc.release(vm).unwrap();
        }
        prop_assert_eq!(alloc.placed_count(), 0);
        prop_assert!(alloc.core_allocation_ratio() < 1e-12);
        for (_, state) in alloc.nodes() {
            prop_assert_eq!(state.cores_used(), 0);
            prop_assert!(state.vms().is_empty());
        }
    }

    #[test]
    fn eviction_preserves_conservation(
        spot_count in 1usize..12,
        demand_cores in 1u32..=16,
    ) {
        let mut alloc = build_allocator(PlacementPolicy::BestFit, None);
        for i in 0..spot_count {
            let _ = alloc.place(PlacementRequest {
                vm: VmId::new(i as u64),
                size: VmSize::new(16, 64.0),
                service: ServiceId::new(0),
                priority: Priority::Spot,
            });
        }
        let request = PlacementRequest {
            vm: VmId::new(1000),
            size: VmSize::new(demand_cores, f64::from(demand_cores)),
            service: ServiceId::new(1),
            priority: Priority::OnDemand,
        };
        let before = alloc.placed_count();
        match alloc.place_with_eviction(request) {
            Ok((_, evicted)) => {
                prop_assert_eq!(alloc.placed_count(), before + 1 - evicted.len());
                for vm in evicted {
                    prop_assert_eq!(alloc.placement_of(vm), None);
                }
            }
            Err(_) => prop_assert_eq!(alloc.placed_count(), before),
        }
        for (_, state) in alloc.nodes() {
            prop_assert!(state.cores_used() <= state.cores_total());
        }
    }
}
