//! Phase-level profile of medium deployment-only generation.
//!
//! Two passes. First, one run under a private metrics registry prints
//! every counter and span-histogram the run recorded, largest first —
//! useful for spotting which phase regressed after a change to the
//! placement or simulation paths. Second, a worker sweep (1/2/4/8)
//! prints the median wall-clock and the per-phase gauges
//! (`tracegen.generate.phase_*_ns`) at each worker count, so a flat
//! scaling curve is attributable to the phase that refused to shrink.
//! Histogram sums are nanoseconds (printed as milliseconds); counters
//! are event counts:
//!
//! ```text
//! cargo run --release -p cloudscope-tracegen --example profile_generate
//! ```

use cloudscope_obs::{scoped, MetricValue, Registry, Snapshot};
use cloudscope_par::Parallelism;
use cloudscope_tracegen::{generate, generate_with, GeneratorConfig};
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

const PHASES: [&str; 5] = ["prepare", "placement", "merge", "telemetry", "assemble"];

fn print_spans_and_counters(snap: &Snapshot) {
    let mut spans: Vec<(String, u64)> = Vec::new();
    let mut counters: Vec<(String, u64)> = Vec::new();
    for (name, value) in &snap.metrics {
        match value {
            MetricValue::Histogram(h) => spans.push((name.clone(), h.sum)),
            MetricValue::Counter(c) => counters.push((name.clone(), *c)),
            MetricValue::Gauge(_) => {}
        }
    }
    spans.sort_by_key(|&(_, sum)| std::cmp::Reverse(sum));
    counters.sort_by_key(|&(_, count)| std::cmp::Reverse(count));

    println!("spans (total ns as ms):");
    for (name, sum) in spans {
        println!("  {name}: {:.2} ms", sum as f64 / 1e6);
    }
    println!("counters:");
    for (name, count) in counters {
        println!("  {name}: {count}");
    }
}

fn worker_sweep(cfg: &GeneratorConfig) {
    println!("\nworker sweep (median of 5, per-phase last-run gauges):");
    for workers in [1usize, 2, 4, 8] {
        let par = Parallelism::with_workers(workers);
        let reg = Arc::new(Registry::new());
        let mut times = Vec::new();
        for _ in 0..5 {
            let t = Instant::now();
            black_box(scoped(&reg, || generate_with(cfg, par)));
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_by(f64::total_cmp);
        println!(
            "  workers={workers}: median {:.2} ms",
            times[times.len() / 2]
        );
        let snap = reg.snapshot();
        for phase in PHASES {
            if let Some(ns) = snap.gauge(&format!("tracegen.generate.phase_{phase}_ns")) {
                println!("    phase {phase:<9} {:>8.2} ms", ns / 1e6);
            }
        }
    }
}

fn main() {
    let mut cfg = GeneratorConfig::medium(7);
    cfg.telemetry = false;

    // Warm-up run outside the registry so one-time costs (lazy statics,
    // allocator warm pages) don't pollute the profile.
    black_box(generate(&cfg));

    let reg = Arc::new(Registry::new());
    let t = Instant::now();
    let g = scoped(&reg, || black_box(generate(&cfg)));
    println!(
        "medium deploy-only: {:.1} ms ({} vms)",
        t.elapsed().as_secs_f64() * 1e3,
        g.trace.vms().len()
    );
    print_spans_and_counters(&reg.snapshot());

    worker_sweep(&cfg);
}
