//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`): the
//! checksum every chunk file and the manifest carry. Table-driven,
//! generated at compile time — same parameters as the KB durability
//! layer's framing checksum, so the two on-disk formats stay uniform.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry lookup table, built at compile time.
const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// CRC-32 of `data` (initial value `!0`, final XOR `!0` — the standard
/// "CRC-32/ISO-HDLC" parameters, matching zlib's `crc32`).
#[must_use]
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"cloudscope-store chunk".to_vec();
        let clean = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
