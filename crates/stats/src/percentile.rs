//! Percentile computation with linear interpolation (the "type 7"
//! definition used by most plotting stacks), plus a multi-percentile
//! helper for the utilization-band figures (Figure 6).

use crate::error::StatsError;

/// Percentile of an **already sorted** slice using linear interpolation
/// between closest ranks.
///
/// # Panics
/// Panics if the slice is empty or `p` is outside `[0, 100]`; use
/// [`percentile`] for fallible input.
#[must_use]
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Percentile of an unsorted sample.
///
/// # Errors
/// Returns [`StatsError::EmptyInput`] on an empty sample,
/// [`StatsError::NonFinite`] if any value is NaN/∞, and
/// [`StatsError::OutOfRange`] if `p` is outside `[0, 100]`.
///
/// # Examples
/// ```
/// # use cloudscope_stats::percentile::percentile;
/// # fn main() -> Result<(), cloudscope_stats::error::StatsError> {
/// assert_eq!(percentile(&[4.0, 1.0, 3.0, 2.0], 50.0)?, 2.5);
/// # Ok(())
/// # }
/// ```
pub fn percentile(sample: &[f64], p: f64) -> Result<f64, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptyInput("percentile sample"));
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("percentile sample"));
    }
    if !(0.0..=100.0).contains(&p) {
        return Err(StatsError::OutOfRange("percentile level"));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Ok(percentile_sorted(&sorted, p))
}

/// Computes several percentiles of one sample with a single sort.
///
/// # Errors
/// Same conditions as [`percentile`], applied to each level.
pub fn percentiles(sample: &[f64], levels: &[f64]) -> Result<Vec<f64>, StatsError> {
    if sample.is_empty() {
        return Err(StatsError::EmptyInput("percentile sample"));
    }
    if sample.iter().any(|v| !v.is_finite()) {
        return Err(StatsError::NonFinite("percentile sample"));
    }
    if levels.iter().any(|p| !(0.0..=100.0).contains(p)) {
        return Err(StatsError::OutOfRange("percentile level"));
    }
    let mut sorted = sample.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
    Ok(levels.iter().map(|&p| percentile_sorted(&sorted, p)).collect())
}

/// The percentile levels Figure 6 of the paper plots as bands.
pub const FIGURE6_LEVELS: [f64; 5] = [5.0, 25.0, 50.0, 75.0, 95.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolated_median() {
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0).unwrap(), 2.5);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0).unwrap(), 2.0);
    }

    #[test]
    fn extremes() {
        let data = [3.0, 1.0, 2.0];
        assert_eq!(percentile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(percentile(&data, 100.0).unwrap(), 3.0);
    }

    #[test]
    fn interpolation_between_ranks() {
        // 10 values 0..9: p90 -> rank 8.1 -> 8.1
        let data: Vec<f64> = (0..10).map(f64::from).collect();
        assert!((percentile(&data, 90.0).unwrap() - 8.1).abs() < 1e-12);
    }

    #[test]
    fn error_conditions() {
        assert!(matches!(percentile(&[], 50.0), Err(StatsError::EmptyInput(_))));
        assert!(matches!(
            percentile(&[f64::NAN], 50.0),
            Err(StatsError::NonFinite(_))
        ));
        assert!(matches!(
            percentile(&[1.0], 101.0),
            Err(StatsError::OutOfRange(_))
        ));
    }

    #[test]
    fn multi_percentiles_consistent_with_single() {
        let data: Vec<f64> = (0..50).map(|i| ((i * 13) % 50) as f64).collect();
        let levels = [5.0, 25.0, 50.0, 75.0, 95.0];
        let many = percentiles(&data, &levels).unwrap();
        for (&p, &v) in levels.iter().zip(&many) {
            assert_eq!(v, percentile(&data, p).unwrap());
        }
        // Monotone in the level.
        assert!(many.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn single_element_slice() {
        assert_eq!(percentile_sorted(&[42.0], 75.0), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn sorted_variant_panics_on_empty() {
        let _ = percentile_sorted(&[], 50.0);
    }
}
