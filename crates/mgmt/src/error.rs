//! Error type for the management policies.

use cloudscope_model::ids::{RegionId, ServiceId};
use std::error::Error;
use std::fmt;

/// Errors returned by management-policy planners.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum MgmtError {
    /// A parameter violated its documented range.
    InvalidParameter(&'static str),
    /// Not enough telemetry history to plan from.
    InsufficientHistory(&'static str),
    /// The region has no clusters of the requested cloud.
    UnknownRegion(RegionId),
    /// The service has no alive VMs in the source region.
    NothingToShift(ServiceId, RegionId),
    /// The destination region cannot absorb the shifted cores.
    InsufficientCapacity(RegionId),
}

impl fmt::Display for MgmtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgmtError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            MgmtError::InsufficientHistory(what) => {
                write!(f, "insufficient history: {what}")
            }
            MgmtError::UnknownRegion(r) => write!(f, "no clusters in {r}"),
            MgmtError::NothingToShift(s, r) => {
                write!(f, "{s} has no alive vms in {r}")
            }
            MgmtError::InsufficientCapacity(r) => {
                write!(f, "{r} cannot absorb the shifted cores")
            }
        }
    }
}

impl Error for MgmtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(MgmtError::InvalidParameter("x")
            .to_string()
            .contains("invalid"));
        assert!(MgmtError::UnknownRegion(RegionId::new(3))
            .to_string()
            .contains("region-3"));
        assert!(
            MgmtError::NothingToShift(ServiceId::new(1), RegionId::new(2))
                .to_string()
                .contains("svc-1")
        );
    }

    #[test]
    fn trait_bounds() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MgmtError>();
    }
}
