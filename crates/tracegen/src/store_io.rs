//! Bridging the generator and the on-disk columnar trace store
//! ([`cloudscope_store`]): persisting a [`GeneratedTrace`] with its
//! ground-truth sidecars, reading one back in either telemetry mode,
//! and — the reason this module exists — generating **straight to
//! disk** so the full telemetry never materializes in memory.
//!
//! The generator's ground truth ([`ServiceInfo`] directory and
//! [`GenerationReport`]) rides along as named manifest blobs with
//! hand-rolled little-endian codecs (floats travel as IEEE-754 bit
//! patterns, so round trips are exact). A store written by
//! [`generate_to_store`] is byte-identical to one written by
//! [`write_generated`] over the in-memory result of
//! [`crate::generate_with`] with the same seed and options — the
//! round-trip suites lock this.

use crate::config::GeneratorConfig;
use crate::generate::{
    build_services, drive_all, vm_telemetry, FinishInputs, GeneratedTrace, GenerationReport,
    PartitionMode, ServiceInfo,
};
use crate::utilization::{PatternKind, ServiceUtilProfile};
use cloudscope_cluster::AllocatorStats;
use cloudscope_model::ids::{RegionId, ServiceId, SubscriptionId, VmId};
use cloudscope_model::subscription::Subscription;
use cloudscope_model::telemetry::UtilSeries;
use cloudscope_model::trace::Trace;
use cloudscope_par::Parallelism;
use cloudscope_sim::rng::RngFactory;
use cloudscope_store::layout::{Dec, Enc};
use cloudscope_store::{
    encode_subscriptions, encode_topology, StoreError, TelemetryMode, TraceReader, TraceWriter,
    WriteOptions, BLOB_SUBSCRIPTIONS, BLOB_TOPOLOGY,
};
use std::path::{Path, PathBuf};

/// Manifest blob holding the ground-truth service directory.
pub const BLOB_SERVICES: &str = "tracegen_services";
/// Manifest blob holding the generation counters.
pub const BLOB_REPORT: &str = "tracegen_report";

/// Records per streamed telemetry block: big enough to keep every
/// worker busy on the per-VM series sweep, small enough that one
/// block's decoded series stay a rounding error next to the trace.
const STREAM_BLOCK_RECORDS: usize = 2048;

/// Serializes the service directory blob.
#[must_use]
pub fn encode_services(services: &[ServiceInfo]) -> Vec<u8> {
    let mut e = Enc::with_capacity(32 + services.len() * 96);
    e.put_u32(services.len() as u32);
    for s in services {
        e.put_u32(s.service.index());
        e.put_u32(s.subscription.index());
        e.put_u8(cloud_tag(s.cloud));
        e.put_u64(s.standing_vms as u64);
        e.put_u32(s.regions.len() as u32);
        for r in &s.regions {
            e.put_u32(r.index());
        }
        let p = &s.profile;
        e.put_u8(pattern_tag(p.kind));
        e.put_u8(u8::from(p.region_agnostic));
        for v in [
            p.base,
            p.amplitude,
            p.peak_hour,
            p.weekend_damp,
            p.noise_std,
            p.spikes_per_day,
            p.spike_minutes,
            p.spike_height,
        ] {
            e.put_f64(v);
        }
    }
    e.into_vec()
}

/// Decodes the service directory blob.
///
/// # Errors
/// [`StoreError::Malformed`] naming `path` on any structural damage.
pub fn decode_services(path: &Path, bytes: &[u8]) -> Result<Vec<ServiceInfo>, StoreError> {
    let fail = |e: String| StoreError::malformed(path, format!("services blob: {e}"));
    let mut d = Dec::new(bytes);
    let count = d.take_u32().map_err(&fail)? as usize;
    if count > bytes.len() / 79 {
        return Err(fail(format!("implausible service count {count}")));
    }
    let mut services = Vec::with_capacity(count);
    for i in 0..count {
        let service = ServiceId::new(d.take_u32().map_err(&fail)?);
        if service.index() != i as u32 {
            return Err(fail(format!("service {i} has id {service}")));
        }
        let subscription = SubscriptionId::new(d.take_u32().map_err(&fail)?);
        let cloud = cloud_from(d.take_u8().map_err(&fail)?).map_err(&fail)?;
        let standing_vms = usize::try_from(d.take_u64().map_err(&fail)?)
            .map_err(|_| fail("standing count overflows usize".into()))?;
        let nregions = d.take_u32().map_err(&fail)? as usize;
        if nregions > d.remaining() / 4 {
            return Err(fail(format!("implausible region count {nregions}")));
        }
        let mut regions = Vec::with_capacity(nregions);
        for _ in 0..nregions {
            regions.push(RegionId::new(d.take_u32().map_err(&fail)?));
        }
        let kind = pattern_from(d.take_u8().map_err(&fail)?).map_err(&fail)?;
        let region_agnostic = match d.take_u8().map_err(&fail)? {
            0 => false,
            1 => true,
            other => return Err(fail(format!("region-agnostic byte {other}"))),
        };
        let mut f = [0f64; 8];
        for slot in &mut f {
            *slot = d.take_f64().map_err(&fail)?;
        }
        services.push(ServiceInfo {
            service,
            subscription,
            cloud,
            profile: ServiceUtilProfile {
                kind,
                base: f[0],
                amplitude: f[1],
                peak_hour: f[2],
                weekend_damp: f[3],
                region_agnostic,
                noise_std: f[4],
                spikes_per_day: f[5],
                spike_minutes: f[6],
                spike_height: f[7],
            },
            regions,
            standing_vms,
        });
    }
    if d.remaining() != 0 {
        return Err(fail(format!("{} trailing bytes", d.remaining())));
    }
    Ok(services)
}

/// Serializes the generation-counter blob.
#[must_use]
pub fn encode_report(report: &GenerationReport) -> Vec<u8> {
    let mut e = Enc::with_capacity(16 * 8);
    for stats in [&report.private_alloc, &report.public_alloc] {
        for v in [
            stats.attempts,
            stats.successes,
            stats.capacity_failures,
            stats.spreading_failures,
            stats.evictions,
            stats.migrations,
        ] {
            e.put_u64(v);
        }
    }
    for v in [
        report.dropped_vms,
        report.standing_vms,
        report.churn_vms,
        report.burst_vms,
    ] {
        e.put_u64(v);
    }
    e.into_vec()
}

/// Decodes the generation-counter blob.
///
/// # Errors
/// [`StoreError::Malformed`] naming `path` on any structural damage.
pub fn decode_report(path: &Path, bytes: &[u8]) -> Result<GenerationReport, StoreError> {
    let fail = |e: String| StoreError::malformed(path, format!("report blob: {e}"));
    let mut d = Dec::new(bytes);
    let mut stats = [AllocatorStats::default(), AllocatorStats::default()];
    for s in &mut stats {
        s.attempts = d.take_u64().map_err(&fail)?;
        s.successes = d.take_u64().map_err(&fail)?;
        s.capacity_failures = d.take_u64().map_err(&fail)?;
        s.spreading_failures = d.take_u64().map_err(&fail)?;
        s.evictions = d.take_u64().map_err(&fail)?;
        s.migrations = d.take_u64().map_err(&fail)?;
    }
    let report = GenerationReport {
        private_alloc: stats[0],
        public_alloc: stats[1],
        dropped_vms: d.take_u64().map_err(&fail)?,
        standing_vms: d.take_u64().map_err(&fail)?,
        churn_vms: d.take_u64().map_err(&fail)?,
        burst_vms: d.take_u64().map_err(&fail)?,
    };
    if d.remaining() != 0 {
        return Err(fail(format!("{} trailing bytes", d.remaining())));
    }
    Ok(report)
}

/// Persists an in-memory [`GeneratedTrace`] — trace, service ground
/// truth, and report — as one committed store directory.
///
/// # Errors
/// Any [`StoreError`] from the writer; on error no manifest commits.
pub fn write_generated(
    generated: &GeneratedTrace,
    dir: impl Into<PathBuf>,
    opts: WriteOptions,
    par: &Parallelism,
) -> Result<(), StoreError> {
    let mut w = TraceWriter::create(dir, opts, par)?;
    add_sidecars(
        &mut w,
        generated.trace.topology(),
        generated.trace.subscriptions(),
        &generated.services,
    );
    for vm in generated.trace.vms() {
        let util = generated.trace.util(vm.id);
        w.append_vm(vm, util.as_ref())?;
    }
    w.add_blob(BLOB_REPORT, encode_report(&generated.report));
    w.finish()
}

/// Reads a [`GeneratedTrace`] back from a store directory written by
/// [`write_generated`] or [`generate_to_store`].
///
/// With [`TelemetryMode::OutOfCore`] the returned trace keeps
/// telemetry on disk behind a bounded chunk cache; everything else is
/// resident and identical to the in-memory generation result.
///
/// # Errors
/// Any [`StoreError`] from opening, validation, or decoding.
pub fn read_generated(
    dir: impl AsRef<Path>,
    mode: TelemetryMode,
    par: &Parallelism,
) -> Result<GeneratedTrace, StoreError> {
    let dir = dir.as_ref();
    let reader = TraceReader::open(dir)?;
    let manifest_path = dir.join(cloudscope_store::MANIFEST_NAME);
    let services = decode_services(&manifest_path, reader.read_blob(BLOB_SERVICES)?)?;
    let report = decode_report(&manifest_path, reader.read_blob(BLOB_REPORT)?)?;
    let trace = reader.read_trace(mode, par)?;
    Ok(GeneratedTrace {
        trace,
        services,
        report,
    })
}

/// Like [`read_generated`], but returns only the trace. Convenience
/// for pipelines that never touch the generator sidecars.
///
/// # Errors
/// Any [`StoreError`] from opening, validation, or decoding.
pub fn read_trace_only(
    dir: impl AsRef<Path>,
    mode: TelemetryMode,
    par: &Parallelism,
) -> Result<Trace, StoreError> {
    TraceReader::open(dir.as_ref())?.read_trace(mode, par)
}

/// Generates a trace **straight to disk**: placement runs exactly as
/// [`crate::generate_with`], but telemetry is synthesized in bounded
/// blocks and streamed into the columnar writer instead of being
/// materialized trace-wide. Peak memory is the placement records plus
/// one telemetry block plus one compression batch.
///
/// The resulting store is byte-identical to
/// `write_generated(&generate_with(config, par), dir, opts, &par)`,
/// and [`read_generated`] restores the identical [`GeneratedTrace`].
/// Returns the generation report (also persisted as a blob).
///
/// # Errors
/// Any [`StoreError`] from the writer; on error no manifest commits.
///
/// # Panics
/// Panics if the configuration is invalid, like [`crate::generate`].
pub fn generate_to_store(
    config: &GeneratorConfig,
    dir: impl Into<PathBuf>,
    opts: WriteOptions,
    par: Parallelism,
) -> Result<GenerationReport, StoreError> {
    if let Err(e) = config.validate() {
        panic!("{e}");
    }
    let factory = RngFactory::new(config.seed);
    let gen_span = cloudscope_obs::span("tracegen.generate");
    let FinishInputs {
        topology,
        tz_of,
        plans,
        service_base,
        next_service,
        standing_per_service,
        records,
        mut report,
    } = drive_all(config, &factory, &gen_span, par, PartitionMode::Auto);

    let stage = gen_span.child("stream_out");
    let subscriptions: Vec<Subscription> = plans
        .iter()
        .enumerate()
        .map(|(idx, plan)| {
            Subscription::new(SubscriptionId::new(idx as u32), plan.cloud, plan.party)
        })
        .collect();
    let services = build_services(&plans, &service_base, &standing_per_service, next_service);

    let mut w = TraceWriter::create(dir, opts, &par)?;
    add_sidecars(&mut w, &topology, &subscriptions, &services);

    // Stream: per-block parallel telemetry (keyed by pre-renumber ids,
    // so the draws match the in-memory path), then a serial append
    // pass that drops unplaced churn and renumbers densely — the same
    // rule `finish` applies before building the in-memory trace.
    let mut next_id: u64 = 0;
    let mut samples_generated: u64 = 0;
    for block in records.chunks(STREAM_BLOCK_RECORDS) {
        let telemetry: Vec<Option<UtilSeries>> = if config.telemetry {
            par.par_map(block, |record| {
                vm_telemetry(record, &plans, &service_base, &tz_of, &factory)
            })
        } else {
            vec![None; block.len()]
        };
        for (record, util) in block.iter().zip(telemetry) {
            if record.node.is_none() && record.cluster.index() == u32::MAX {
                report.dropped_vms += 1;
                continue;
            }
            let mut record = record.clone();
            record.id = VmId::new(next_id);
            next_id += 1;
            samples_generated += util.as_ref().map_or(0, |s| s.len() as u64);
            w.append_vm(&record, util.as_ref())?;
        }
    }
    w.add_blob(BLOB_REPORT, encode_report(&report));
    w.finish()?;
    stage.finish();
    cloudscope_obs::counter("tracegen.generate.vms_generated").add(next_id);
    cloudscope_obs::counter("tracegen.generate.samples_generated").add(samples_generated);
    Ok(report)
}

/// Pushes the topology, subscription, and service-directory blobs in
/// the canonical order both write paths share (the report blob lands
/// after the records so streamed counters are final).
fn add_sidecars(
    w: &mut TraceWriter<'_>,
    topology: &cloudscope_model::topology::Topology,
    subscriptions: &[Subscription],
    services: &[ServiceInfo],
) {
    w.add_blob(BLOB_TOPOLOGY, encode_topology(topology));
    w.add_blob(BLOB_SUBSCRIPTIONS, encode_subscriptions(subscriptions));
    w.add_blob(BLOB_SERVICES, encode_services(services));
}

fn cloud_tag(cloud: cloudscope_model::subscription::CloudKind) -> u8 {
    match cloud {
        cloudscope_model::subscription::CloudKind::Private => 0,
        cloudscope_model::subscription::CloudKind::Public => 1,
    }
}

fn cloud_from(tag: u8) -> Result<cloudscope_model::subscription::CloudKind, String> {
    match tag {
        0 => Ok(cloudscope_model::subscription::CloudKind::Private),
        1 => Ok(cloudscope_model::subscription::CloudKind::Public),
        other => Err(format!("unknown cloud tag {other}")),
    }
}

fn pattern_tag(kind: PatternKind) -> u8 {
    match kind {
        PatternKind::Diurnal => 0,
        PatternKind::Stable => 1,
        PatternKind::Irregular => 2,
        PatternKind::HourlyPeak => 3,
    }
}

fn pattern_from(tag: u8) -> Result<PatternKind, String> {
    match tag {
        0 => Ok(PatternKind::Diurnal),
        1 => Ok(PatternKind::Stable),
        2 => Ok(PatternKind::Irregular),
        3 => Ok(PatternKind::HourlyPeak),
        other => Err(format!("unknown pattern tag {other}")),
    }
}
