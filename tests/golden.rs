//! Golden regression tests: the fig 1–6 headline metrics for the
//! `GeneratorConfig::small` seeds are snapshotted under `tests/golden/`
//! and compared verbatim. Any drift — a generator tweak, an estimator
//! change, a reordered reduction — fails here first, with a diff.
//!
//! To bless an intentional change:
//!
//! ```text
//! CLOUDSCOPE_UPDATE_GOLDEN=1 cargo test -p cloudscope --test golden
//! ```

use cloudscope::prelude::*;
use cloudscope_repro::checks::{oversub_pool, run_oversub_sweep, OVERSUB_EPSILONS};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Seeds pinned in the snapshots. Two seeds so a regression that
/// happens to cancel on one draw still trips on the other.
const GOLDEN_SEEDS: [u64; 2] = [7, 1234];

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Renders every headline metric as a stable `key,value` line.
///
/// Six decimal places: coarse enough to survive a same-result
/// re-association, fine enough that any real statistical drift shows.
fn headline_metrics(seed: u64) -> String {
    let generated = generate(&GeneratorConfig::small(seed));
    let report = CharacterizationReport::analyze(&generated.trace, &ReportConfig::default())
        .expect("analysis succeeds on the small trace");

    let mut out = String::new();
    let mut put = |key: &str, value: f64| {
        writeln!(out, "{key},{value:.6}").expect("string write");
    };

    let d = &report.deployment;
    put(
        "fig1.private_vms_per_sub_median",
        d.private_vms_per_subscription.median(),
    );
    put(
        "fig1.public_vms_per_sub_median",
        d.public_vms_per_subscription.median(),
    );
    put(
        "fig1.subs_per_cluster_ratio",
        d.subscriptions_per_cluster_ratio,
    );

    let v = &report.vm_size;
    put("fig2.private_corner_mass", v.private_corner_mass);
    put("fig2.public_corner_mass", v.public_corner_mass);

    let t = &report.temporal;
    put("fig3.private_short_fraction", t.private_short_fraction);
    put("fig3.public_short_fraction", t.public_short_fraction);
    put("fig3.private_creation_cv_median", t.creation_cv.0.median);
    put("fig3.public_creation_cv_median", t.creation_cv.1.median);

    let s = &report.spatial;
    put(
        "fig4.private_single_region_fraction",
        s.private_regions.eval(1.0),
    );
    put(
        "fig4.public_single_region_fraction",
        s.public_regions.eval(1.0),
    );
    put(
        "fig4.private_single_region_core_share",
        s.private_single_region_core_share,
    );
    put(
        "fig4.public_single_region_core_share",
        s.public_single_region_core_share,
    );

    for p in UtilizationPattern::ALL {
        put(
            &format!("fig5.private_{}", format!("{p:?}").to_lowercase()),
            report.private_patterns.fraction(p),
        );
        put(
            &format!("fig5.public_{}", format!("{p:?}").to_lowercase()),
            report.public_patterns.fraction(p),
        );
    }

    put(
        "fig6.private_p75_peak",
        report.private_utilization.p75_peak(),
    );
    put("fig6.public_p75_peak", report.public_utilization.p75_peak());
    put(
        "fig6.private_daily_variability",
        report.private_utilization.daily_median_variability(),
    );
    put(
        "fig6.public_daily_variability",
        report.public_utilization.daily_median_variability(),
    );

    let (node_private, node_public) = &report.node_correlation;
    put("fig7.private_node_corr_median", node_private.median());
    put("fig7.public_node_corr_median", node_public.median());
    let (region_private, region_public) = &report.region_correlation;
    put("fig7.private_region_corr_median", region_private.median());
    put("fig7.public_region_corr_median", region_public.median());

    // The over-subscription demand pool and the full epsilon sweep the
    // oversub binary runs, pinned on the small trace: a planner or
    // coverage-gate change shifts these before it shifts the figures.
    let pool = oversub_pool(&generated.trace, 400);
    put("oversub.pool_vms", pool.len() as f64);
    let sweep = run_oversub_sweep(&pool).expect("oversub sweep on the small trace");
    for (eps, plan) in OVERSUB_EPSILONS.iter().zip(&sweep.plans) {
        put(
            &format!("oversub.eps{eps}.reserved_cores"),
            plan.reserved_cores,
        );
        put(
            &format!("oversub.eps{eps}.improvement"),
            plan.utilization_improvement,
        );
    }

    out
}

fn check_seed(seed: u64) {
    let actual = headline_metrics(seed);
    let path = golden_dir().join(format!("small_seed{seed}.csv"));

    if std::env::var_os("CLOUDSCOPE_UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &actual).expect("write golden snapshot");
        return;
    }

    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden snapshot {} ({e}); run with CLOUDSCOPE_UPDATE_GOLDEN=1 to create it",
            path.display()
        )
    });
    if actual != expected {
        let diff: Vec<String> = expected
            .lines()
            .zip(actual.lines())
            .filter(|(e, a)| e != a)
            .map(|(e, a)| format!("  expected: {e}\n  actual:   {a}"))
            .collect();
        panic!(
            "headline metrics drifted from tests/golden/small_seed{seed}.csv \
             ({} of {} lines changed).\nIf the change is intentional, re-bless with \
             CLOUDSCOPE_UPDATE_GOLDEN=1.\n{}",
            diff.len(),
            expected.lines().count(),
            diff.join("\n")
        );
    }
}

#[test]
fn headline_metrics_match_golden_seed7() {
    check_seed(GOLDEN_SEEDS[0]);
}

#[test]
fn headline_metrics_match_golden_seed1234() {
    check_seed(GOLDEN_SEEDS[1]);
}

/// The snapshot files themselves stay well-formed: every line is
/// `key,float`, keys are unique and sorted the way the writer emits
/// them, so a hand-edit that breaks the format is caught even when the
/// values happen to match.
#[test]
fn golden_snapshots_are_well_formed() {
    for seed in GOLDEN_SEEDS {
        let path = golden_dir().join(format!("small_seed{seed}.csv"));
        let Ok(content) = std::fs::read_to_string(&path) else {
            // The drift tests report the missing file with instructions.
            continue;
        };
        let mut keys = Vec::new();
        for line in content.lines() {
            let (key, value) = line
                .split_once(',')
                .unwrap_or_else(|| panic!("malformed golden line: {line}"));
            assert!(
                value.parse::<f64>().is_ok_and(f64::is_finite),
                "non-numeric golden value in {line}"
            );
            keys.push(key.to_string());
        }
        let unique: std::collections::BTreeSet<_> = keys.iter().collect();
        assert_eq!(
            unique.len(),
            keys.len(),
            "duplicate golden keys for seed {seed}"
        );
        assert!(
            keys.len() >= 20,
            "suspiciously few golden metrics: {}",
            keys.len()
        );
    }
}
