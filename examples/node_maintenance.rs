//! Node maintenance: a host shows unhealthy disk signals and must be
//! emptied within twelve hours (a planned repair window). With the knowledge base's lifetime
//! knowledge, only VMs expected to outlive the deadline are migrated —
//! the paper's introductory motivating example.
//!
//! ```sh
//! cargo run --release --example node_maintenance
//! ```

use cloudscope::kb::run_extraction_pipeline;
use cloudscope::mgmt::maintenance::{
    evaluate_plan, plan_node_maintenance, RemainingLifetimePredictor,
};
use cloudscope::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generated = generate(&GeneratorConfig::small(29));

    // Continuous telemetry extraction feeds the knowledge base.
    let kb = KnowledgeBase::new();
    let stats = run_extraction_pipeline(&generated.trace, &kb, &PatternClassifier::default(), 3, 4);
    println!(
        "knowledge base fed: {} subscriptions ({} skipped)",
        stats.stored, stats.skipped
    );

    // Pick an "unhealthy" host where the lifetime knowledge actually has
    // a decision to make: of the occupied nodes, take the one whose plan
    // avoids the most migrations (falling back to the busiest).
    let now = SimTime::from_minutes(3 * 24 * 60);
    let deadline = now + SimDuration::from_hours(12);
    let predictor = RemainingLifetimePredictor::default();
    let plan = generated
        .trace
        .occupied_nodes()
        .filter_map(|n| {
            plan_node_maintenance(&generated.trace, &kb, &predictor, n, now, deadline).ok()
        })
        .max_by_key(|p| (p.migrations_saved(), p.decisions.len()))
        .expect("an occupied node");
    let node = plan.node;

    println!("\nmaintenance plan for {node} (deadline in 12h):");
    for (vm, remaining, action) in &plan.decisions {
        println!("  {vm}: predicted remaining {remaining} min -> {action:?}");
    }
    println!(
        "\n{} migrations, {} avoided vs migrate-everything",
        plan.migrations().count(),
        plan.migrations_saved()
    );

    let eval = evaluate_plan(&generated.trace, &plan);
    println!(
        "ground truth: {} correctly left to finish, {} missed, {} unnecessary migrations",
        eval.correct_let_finish, eval.missed, eval.unnecessary_migrations
    );
    Ok(())
}
