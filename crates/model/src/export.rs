//! CSV export/import of traces, for interoperability with the pandas/
//! Spark pipelines that trace studies typically use.
//!
//! The deployment schema mirrors public cloud-trace releases: one row per
//! VM with ownership, shape, placement, and timestamps. Telemetry exports
//! as long-format `(vm, minute, cpu_pct)` rows.

use crate::error::ModelError;
use crate::ids::{ClusterId, NodeId, RegionId, ServiceId, SubscriptionId, VmId};
use crate::time::SimTime;
use crate::trace::Trace;
use crate::vm::{Priority, ServiceModel, VmRecord, VmSize};
use std::io::{BufRead, Write};

/// Header of the deployment CSV.
pub const DEPLOYMENT_HEADER: &str = "vm_id,subscription_id,service_id,cores,memory_gb,priority,service_model,region_id,cluster_id,node_id,created_min,ended_min";

/// Writes every VM record as CSV. A reminder per C-RW-VALUE: pass
/// `&mut writer` if you need the writer afterwards.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_deployments<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "{DEPLOYMENT_HEADER}")?;
    for vm in trace.vms() {
        writeln!(writer, "{}", deployment_row(vm))?;
    }
    Ok(())
}

fn deployment_row(vm: &VmRecord) -> String {
    format!(
        "{},{},{},{},{},{},{},{},{},{},{},{}",
        vm.id.index(),
        vm.subscription.index(),
        vm.service.index(),
        vm.size.cores(),
        vm.size.memory_gb(),
        vm.priority,
        vm.service_model,
        vm.region.index(),
        vm.cluster.index(),
        vm.node.map_or(String::new(), |n| n.index().to_string()),
        vm.created.minutes(),
        vm.ended.map_or(String::new(), |e| e.minutes().to_string()),
    )
}

/// Writes telemetry in long format: `vm_id,minute,cpu_pct`, one row per
/// 5-minute sample of every VM with telemetry. Missing samples emit no
/// row — exactly what a production monitor that never received the
/// reading would produce.
///
/// # Errors
/// Propagates I/O errors from the writer.
pub fn write_telemetry<W: Write>(trace: &Trace, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "vm_id,minute,cpu_pct")?;
    for vm in trace.vms() {
        if let Some(util) = trace.util(vm.id) {
            for (i, v) in util.iter().enumerate() {
                if !v.is_finite() {
                    continue;
                }
                writeln!(
                    writer,
                    "{},{},{v:.1}",
                    vm.id.index(),
                    util.time_at(i).minutes()
                )?;
            }
        }
    }
    Ok(())
}

/// Parses one deployment CSV row back into a [`VmRecord`].
///
/// # Errors
/// Returns [`ModelError::InconsistentTrace`] on malformed rows.
pub fn parse_deployment_row(row: &str) -> Result<VmRecord, ModelError> {
    let bad = |what: &str| ModelError::InconsistentTrace(format!("bad csv row ({what}): {row}"));
    let fields: Vec<&str> = row.split(',').collect();
    if fields.len() != 12 {
        return Err(bad("field count"));
    }
    let parse_u32 = |s: &str, what: &str| s.parse::<u32>().map_err(|_| bad(what));
    let priority = match fields[5] {
        "on-demand" => Priority::OnDemand,
        "spot" => Priority::Spot,
        _ => return Err(bad("priority")),
    };
    let service_model = match fields[6] {
        "IaaS" => ServiceModel::Iaas,
        "PaaS" => ServiceModel::Paas,
        "SaaS" => ServiceModel::Saas,
        _ => return Err(bad("service model")),
    };
    Ok(VmRecord {
        id: VmId::new(fields[0].parse().map_err(|_| bad("vm id"))?),
        subscription: SubscriptionId::new(parse_u32(fields[1], "subscription")?),
        service: ServiceId::new(parse_u32(fields[2], "service")?),
        size: VmSize::new(
            parse_u32(fields[3], "cores")?,
            fields[4].parse().map_err(|_| bad("memory"))?,
        ),
        priority,
        service_model,
        region: RegionId::new(parse_u32(fields[7], "region")?),
        cluster: ClusterId::new(parse_u32(fields[8], "cluster")?),
        node: if fields[9].is_empty() {
            None
        } else {
            Some(NodeId::new(parse_u32(fields[9], "node")?))
        },
        created: SimTime::from_minutes(fields[10].parse().map_err(|_| bad("created"))?),
        ended: if fields[11].is_empty() {
            None
        } else {
            Some(SimTime::from_minutes(
                fields[11].parse().map_err(|_| bad("ended"))?,
            ))
        },
    })
}

/// Reads a deployment CSV (as produced by [`write_deployments`]) into
/// records. The header row is validated.
///
/// # Errors
/// Returns [`ModelError::InconsistentTrace`] on malformed input, and
/// propagates I/O errors as the same variant.
pub fn read_deployments<R: BufRead>(reader: R) -> Result<Vec<VmRecord>, ModelError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| ModelError::InconsistentTrace("empty csv".into()))?
        .map_err(|e| ModelError::InconsistentTrace(format!("io error: {e}")))?;
    if header != DEPLOYMENT_HEADER {
        return Err(ModelError::InconsistentTrace(format!(
            "unexpected header: {header}"
        )));
    }
    let mut records = Vec::new();
    for line in lines {
        let line = line.map_err(|e| ModelError::InconsistentTrace(format!("io error: {e}")))?;
        if line.is_empty() {
            continue;
        }
        records.push(parse_deployment_row(&line)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subscription::{CloudKind, PartyKind, Subscription};
    use crate::telemetry::UtilSeries;
    use crate::topology::{NodeSku, Topology};

    fn sample_trace() -> Trace {
        let mut tb = Topology::builder();
        let r = tb.add_region("x", 0, "US");
        let d = tb.add_datacenter(r);
        tb.add_cluster(d, CloudKind::Public, NodeSku::new(8, 64.0), 1, 2);
        let mut b = Trace::builder(tb.build());
        b.add_subscription(Subscription::new(
            SubscriptionId::new(0),
            CloudKind::Public,
            PartyKind::ThirdParty,
        ))
        .unwrap();
        let vm = VmRecord {
            id: VmId::new(0),
            subscription: SubscriptionId::new(0),
            service: ServiceId::new(0),
            size: VmSize::new(4, 16.0),
            priority: Priority::Spot,
            service_model: ServiceModel::Paas,
            region: RegionId::new(0),
            cluster: ClusterId::new(0),
            node: Some(NodeId::new(1)),
            created: SimTime::from_minutes(100),
            ended: Some(SimTime::from_minutes(400)),
        };
        let util = UtilSeries::from_percentages(SimTime::from_minutes(100), [10.0, 20.0]);
        b.add_vm(vm.clone(), Some(util)).unwrap();
        // A second VM with the optional fields empty.
        let open_ended = VmRecord {
            id: VmId::new(1),
            node: None,
            ended: None,
            priority: Priority::OnDemand,
            ..vm
        };
        b.add_vm(open_ended, None).unwrap();
        b.build()
    }

    #[test]
    fn deployment_roundtrip() {
        let trace = sample_trace();
        let mut out = Vec::new();
        write_deployments(&trace, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with(DEPLOYMENT_HEADER));
        let records = read_deployments(text.as_bytes()).unwrap();
        assert_eq!(records.len(), trace.vms().len());
        assert_eq!(&records[0], &trace.vms()[0]);
    }

    #[test]
    fn telemetry_long_format() {
        let trace = sample_trace();
        let mut out = Vec::new();
        write_telemetry(&trace, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "vm_id,minute,cpu_pct");
        assert_eq!(lines[1], "0,100,10.0");
        assert_eq!(lines[2], "0,105,20.0");
    }

    #[test]
    fn optional_fields_roundtrip_empty() {
        let row = "7,0,0,2,8,on-demand,IaaS,0,0,,50,";
        let vm = parse_deployment_row(row).unwrap();
        assert_eq!(vm.node, None);
        assert_eq!(vm.ended, None);
        assert_eq!(vm.id, VmId::new(7));
    }

    #[test]
    fn malformed_rows_rejected() {
        assert!(parse_deployment_row("1,2,3").is_err());
        assert!(parse_deployment_row("x,0,0,2,8,on-demand,IaaS,0,0,,50,").is_err());
        assert!(parse_deployment_row("1,0,0,2,8,weird,IaaS,0,0,,50,").is_err());
        assert!(parse_deployment_row("1,0,0,2,8,on-demand,XaaS,0,0,,50,").is_err());
        let bad_header = "nope\n1,2";
        assert!(read_deployments(bad_header.as_bytes()).is_err());
        assert!(read_deployments("".as_bytes()).is_err());
    }
}
