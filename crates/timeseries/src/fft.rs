//! Radix-2 iterative fast Fourier transform and the periodogram built on
//! it. Implemented from scratch: the period detector only needs power
//! spectra of zero-padded real signals.
//!
//! Two transform paths exist. [`fft_in_place`]/[`ifft_in_place`] are the
//! self-contained reference: they recompute twiddles incrementally on
//! every call. [`FftPlan`] precomputes the bit-reversal permutation and
//! twiddle table once per size, and [`with_plan`] caches plans (plus one
//! scratch buffer) per thread, so sweeps that transform thousands of
//! same-length series — the period detector over a whole trace — do no
//! redundant trig and near-zero per-series allocation. Thread-local
//! storage keeps the cache lock-free and composes with the per-thread
//! workers of `cloudscope-par`.

use crate::error::SeriesError;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A complex number as a `(re, im)` pair; kept private-shaped but public
/// for testability of round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number.
    #[must_use]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Squared magnitude.
    #[must_use]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;

    fn mul(self, other: Complex) -> Complex {
        Complex::new(
            self.re * other.re - self.im * other.im,
            self.re * other.im + self.im * other.re,
        )
    }
}

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
/// Returns [`SeriesError::NotPowerOfTwo`] unless `buf.len()` is a power of
/// two (and nonzero).
pub fn fft_in_place(buf: &mut [Complex]) -> Result<(), SeriesError> {
    let n = buf.len();
    if n == 0 || !n.is_power_of_two() {
        return Err(SeriesError::NotPowerOfTwo(n));
    }
    // Bit-reversal permutation. `bits == 0` means n == 1: nothing to
    // permute, and the `64 - bits` shift below would overflow.
    let bits = n.trailing_zeros();
    if bits > 0 {
        for i in 0..n {
            let j = ((i as u64).reverse_bits() >> (64 - bits)) as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
    }
    // Butterfly passes.
    let mut len = 2;
    while len <= n {
        let angle = -std::f64::consts::TAU / len as f64;
        let w_len = Complex::new(angle.cos(), angle.sin());
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for k in 0..half {
                let u = chunk[k];
                let t = chunk[k + half] * w;
                chunk[k] = Complex::new(u.re + t.re, u.im + t.im);
                chunk[k + half] = Complex::new(u.re - t.re, u.im - t.im);
                w = w * w_len;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// Inverse FFT via conjugation, for round-trip testing and convolution.
///
/// # Errors
/// Returns [`SeriesError::NotPowerOfTwo`] unless the length is a power of
/// two.
pub fn ifft_in_place(buf: &mut [Complex]) -> Result<(), SeriesError> {
    for c in buf.iter_mut() {
        c.im = -c.im;
    }
    fft_in_place(buf)?;
    let n = buf.len() as f64;
    for c in buf.iter_mut() {
        c.re /= n;
        c.im = -c.im / n;
    }
    Ok(())
}

/// Smallest power of two ≥ `n`.
#[must_use]
pub fn next_power_of_two(n: usize) -> usize {
    n.next_power_of_two()
}

/// A precomputed FFT plan for one power-of-two size: the bit-reversal
/// permutation and the twiddle table `w_k = exp(-iτk/n)`, `k < n/2`.
/// Stage `len` of the butterfly pass uses every `(n/len)`-th twiddle, so
/// one table serves all stages with zero trig at transform time.
#[derive(Debug, Clone, PartialEq)]
pub struct FftPlan {
    n: usize,
    bit_rev: Vec<u32>,
    twiddles: Vec<Complex>,
}

impl FftPlan {
    /// Builds a plan for transforms of length `n`.
    ///
    /// # Errors
    /// Returns [`SeriesError::NotPowerOfTwo`] unless `n` is a nonzero
    /// power of two.
    pub fn new(n: usize) -> Result<Self, SeriesError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(SeriesError::NotPowerOfTwo(n));
        }
        let bits = n.trailing_zeros();
        let bit_rev = (0..n as u64)
            .map(|i| {
                if bits == 0 {
                    0
                } else {
                    (i.reverse_bits() >> (64 - bits)) as u32
                }
            })
            .collect();
        let twiddles = (0..n / 2)
            .map(|k| {
                let angle = -std::f64::consts::TAU * k as f64 / n as f64;
                Complex::new(angle.cos(), angle.sin())
            })
            .collect();
        Ok(Self {
            n,
            bit_rev,
            twiddles,
        })
    }

    /// The transform length this plan serves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` only for the degenerate length-1 plan.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// Forward DFT, in place.
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned length.
    pub fn forward(&self, buf: &mut [Complex]) {
        assert_eq!(buf.len(), self.n, "buffer does not match plan length");
        for (i, &j) in self.bit_rev.iter().enumerate() {
            let j = j as usize;
            if i < j {
                buf.swap(i, j);
            }
        }
        let mut len = 2;
        while len <= self.n {
            let stride = self.n / len;
            let half = len / 2;
            for chunk in buf.chunks_mut(len) {
                for k in 0..half {
                    let w = self.twiddles[k * stride];
                    let u = chunk[k];
                    let t = chunk[k + half] * w;
                    chunk[k] = Complex::new(u.re + t.re, u.im + t.im);
                    chunk[k + half] = Complex::new(u.re - t.re, u.im - t.im);
                }
            }
            len <<= 1;
        }
    }

    /// Inverse DFT, in place (conjugate → forward → conjugate-and-scale).
    ///
    /// # Panics
    /// Panics if `buf.len()` differs from the planned length.
    pub fn inverse(&self, buf: &mut [Complex]) {
        for c in buf.iter_mut() {
            c.im = -c.im;
        }
        self.forward(buf);
        let n = self.n as f64;
        for c in buf.iter_mut() {
            c.re /= n;
            c.im = -c.im / n;
        }
    }
}

/// Plan-cache counters, exposed for tests and diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a new plan.
    pub misses: u64,
}

struct PlanCache {
    plans: HashMap<usize, Rc<FftPlan>>,
    scratch: Vec<Complex>,
    stats: PlanCacheStats,
}

thread_local! {
    static PLAN_CACHE: RefCell<PlanCache> = RefCell::new(PlanCache {
        plans: HashMap::new(),
        scratch: Vec::new(),
        stats: PlanCacheStats::default(),
    });
}

/// Runs `f` with this thread's cached plan for size `n` and the shared
/// scratch buffer, resized to `n` and zeroed. Plans are built on first
/// use per thread and reused forever after; the scratch buffer grows to
/// the largest size requested and is reused across calls, so steady-state
/// transforms allocate nothing.
///
/// Re-entrancy: `f` may itself call `with_plan` — the cached scratch
/// buffer is taken out of the cache for the duration of the outer call,
/// so the inner call simply allocates a fresh buffer instead of reusing
/// the cached one. Correct, but the steady-state zero-allocation property
/// only holds for non-nested use.
///
/// # Errors
/// Returns [`SeriesError::NotPowerOfTwo`] unless `n` is a nonzero power
/// of two.
pub fn with_plan<R>(
    n: usize,
    f: impl FnOnce(&FftPlan, &mut Vec<Complex>) -> R,
) -> Result<R, SeriesError> {
    let (plan, mut scratch) = PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        let plan = match cache.plans.get(&n).map(Rc::clone) {
            Some(plan) => {
                cache.stats.hits += 1;
                cloudscope_obs::counter("timeseries.fft.plan_cache_hits").inc();
                plan
            }
            None => {
                let plan = Rc::new(FftPlan::new(n)?);
                cache.stats.misses += 1;
                cloudscope_obs::counter("timeseries.fft.plan_cache_misses").inc();
                cache.plans.insert(n, Rc::clone(&plan));
                plan
            }
        };
        Ok((plan, std::mem::take(&mut cache.scratch)))
    })?;
    scratch.clear();
    scratch.resize(n, Complex::default());
    let result = f(&plan, &mut scratch);
    PLAN_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        // Keep the larger buffer so the cache converges on the biggest
        // working size instead of thrashing.
        if scratch.capacity() > cache.scratch.capacity() {
            cache.scratch = scratch;
        }
    });
    Ok(result)
}

/// This thread's plan-cache counters.
#[must_use]
pub fn plan_cache_stats() -> PlanCacheStats {
    PLAN_CACHE.with(|cache| cache.borrow().stats)
}

/// Periodogram of a real signal: the signal is mean-centred, zero-padded
/// to the next power of two, transformed, and the one-sided power spectrum
/// `|X_k|²/N` returned for `k = 0..N/2`.
///
/// Frequency of bin `k` is `k / (N * step)` cycles per time unit, where
/// `N` is the padded length.
///
/// Returns the power vector and the padded length `N`.
///
/// # Errors
/// Returns [`SeriesError::TooShort`] for signals with fewer than 4 points.
pub fn periodogram(signal: &[f64]) -> Result<(Vec<f64>, usize), SeriesError> {
    if signal.len() < 4 {
        return Err(SeriesError::TooShort(signal.len()));
    }
    let mean = signal.iter().sum::<f64>() / signal.len() as f64;
    let n = next_power_of_two(signal.len());
    let power = with_plan(n, |plan, buf| {
        for (slot, &v) in buf.iter_mut().zip(signal) {
            *slot = Complex::new(v - mean, 0.0);
        }
        plan.forward(buf);
        buf[..n / 2]
            .iter()
            .map(|c| c.norm_sq() / n as f64)
            .collect()
    })?;
    Ok((power, n))
}

/// Mask-and-renormalize periodogram for gap-bearing signals (gaps are NaN
/// slots): the mean is taken over the present samples, gaps are replaced
/// by it (zero after centring, so they inject no spurious power), and the
/// one-sided spectrum is rescaled by `len / present` to compensate for
/// the energy the masked slots cannot contribute. Reduces exactly to
/// [`periodogram`] on a dense signal.
///
/// # Errors
/// Returns [`SeriesError::TooShort`] if fewer than 4 samples are present.
pub fn periodogram_masked(signal: &[f64]) -> Result<(Vec<f64>, usize), SeriesError> {
    let mut mean = 0.0;
    let mut present = 0usize;
    for &v in signal {
        if v.is_finite() {
            mean += v;
            present += 1;
        }
    }
    if present < 4 {
        return Err(SeriesError::TooShort(present));
    }
    mean /= present as f64;
    let n = next_power_of_two(signal.len());
    let renorm = signal.len() as f64 / present as f64;
    let power = with_plan(n, |plan, buf| {
        for (slot, &v) in buf.iter_mut().zip(signal) {
            let centred = if v.is_finite() { v - mean } else { 0.0 };
            *slot = Complex::new(centred, 0.0);
        }
        plan.forward(buf);
        buf[..n / 2]
            .iter()
            .map(|c| c.norm_sq() / n as f64 * renorm)
            .collect()
    })?;
    Ok((power, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut buf = vec![Complex::default(); 8];
        buf[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut buf).unwrap();
        for c in &buf {
            assert!(approx(c.re, 1.0, 1e-12) && approx(c.im, 0.0, 1e-12));
        }
    }

    #[test]
    fn fft_of_constant_concentrates_at_dc() {
        let mut buf = vec![Complex::new(1.0, 0.0); 8];
        fft_in_place(&mut buf).unwrap();
        assert!(approx(buf[0].re, 8.0, 1e-12));
        for c in &buf[1..] {
            assert!(c.norm_sq() < 1e-20);
        }
    }

    #[test]
    fn fft_roundtrip() {
        let original: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut buf = original.clone();
        fft_in_place(&mut buf).unwrap();
        ifft_in_place(&mut buf).unwrap();
        for (a, b) in original.iter().zip(&buf) {
            assert!(approx(a.re, b.re, 1e-9) && approx(a.im, b.im, 1e-9));
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut buf = vec![Complex::default(); 6];
        assert!(matches!(
            fft_in_place(&mut buf),
            Err(SeriesError::NotPowerOfTwo(6))
        ));
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn parseval_energy_conserved() {
        let signal: Vec<f64> = (0..128).map(|i| ((i as f64) * 0.1).sin() * 3.0).collect();
        let mut buf: Vec<Complex> = signal.iter().map(|&v| Complex::new(v, 0.0)).collect();
        fft_in_place(&mut buf).unwrap();
        let time_energy: f64 = signal.iter().map(|v| v * v).sum();
        let freq_energy: f64 = buf.iter().map(|c| c.norm_sq()).sum::<f64>() / 128.0;
        assert!(approx(time_energy, freq_energy, 1e-6));
    }

    #[test]
    fn periodogram_peaks_at_signal_frequency() {
        // 8 cycles over 256 samples -> padded N = 256, peak at bin 8.
        let signal: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 256.0).sin())
            .collect();
        let (power, n) = periodogram(&signal).unwrap();
        assert_eq!(n, 256);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn periodogram_zero_pads_awkward_lengths() {
        let signal: Vec<f64> = (0..300)
            .map(|i| (std::f64::consts::TAU * i as f64 / 50.0).sin())
            .collect();
        let (power, n) = periodogram(&signal).unwrap();
        assert_eq!(n, 512);
        assert_eq!(power.len(), 256);
    }

    #[test]
    fn periodogram_rejects_tiny_input() {
        assert!(matches!(
            periodogram(&[1.0, 2.0]),
            Err(SeriesError::TooShort(2))
        ));
    }

    #[test]
    fn dc_removed_before_transform() {
        let signal = vec![5.0; 64];
        let (power, _) = periodogram(&signal).unwrap();
        assert!(power.iter().all(|&p| p < 1e-18));
    }

    #[test]
    fn planned_fft_matches_reference() {
        for n in [1usize, 2, 4, 64, 256] {
            let plan = FftPlan::new(n).unwrap();
            assert_eq!(plan.len(), n);
            let original: Vec<Complex> = (0..n)
                .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 0.3).cos()))
                .collect();
            let mut planned = original.clone();
            plan.forward(&mut planned);
            let mut reference = original.clone();
            fft_in_place(&mut reference).unwrap();
            for (a, b) in planned.iter().zip(&reference) {
                assert!(approx(a.re, b.re, 1e-9) && approx(a.im, b.im, 1e-9));
            }
            plan.inverse(&mut planned);
            for (a, b) in planned.iter().zip(&original) {
                assert!(approx(a.re, b.re, 1e-9) && approx(a.im, b.im, 1e-9));
            }
        }
    }

    #[test]
    fn plan_rejects_bad_lengths() {
        assert!(matches!(
            FftPlan::new(0),
            Err(SeriesError::NotPowerOfTwo(0))
        ));
        assert!(matches!(
            FftPlan::new(12),
            Err(SeriesError::NotPowerOfTwo(12))
        ));
        assert!(matches!(
            with_plan(6, |_, _| ()),
            Err(SeriesError::NotPowerOfTwo(6))
        ));
    }

    #[test]
    fn plan_cache_reuses_plans() {
        let before = plan_cache_stats();
        let signal: Vec<f64> = (0..256).map(|i| (i as f64 * 0.21).sin()).collect();
        let first = periodogram(&signal).unwrap();
        let after_first = plan_cache_stats();
        let second = periodogram(&signal).unwrap();
        let after_second = plan_cache_stats();
        assert_eq!(first, second, "cached plan must not change results");
        // The second run of the same size must be a pure cache hit.
        assert_eq!(after_second.misses, after_first.misses);
        assert!(after_second.hits > after_first.hits);
        // The first run either built the plan or found it from an earlier
        // test on this thread.
        assert!(after_first.hits + after_first.misses > before.hits + before.misses);
    }

    #[test]
    fn masked_periodogram_matches_dense_on_gap_free_signal() {
        let signal: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 256.0).sin())
            .collect();
        let dense = periodogram(&signal).unwrap();
        let masked = periodogram_masked(&signal).unwrap();
        assert_eq!(dense.1, masked.1);
        for (a, b) in dense.0.iter().zip(&masked.0) {
            assert!(approx(*a, *b, 1e-9));
        }
    }

    #[test]
    fn masked_periodogram_peak_survives_gaps() {
        let mut signal: Vec<f64> = (0..256)
            .map(|i| (std::f64::consts::TAU * 8.0 * i as f64 / 256.0).sin())
            .collect();
        for i in (0..signal.len()).step_by(11) {
            signal[i] = f64::NAN;
        }
        for v in &mut signal[100..130] {
            *v = f64::NAN;
        }
        let (power, n) = periodogram_masked(&signal).unwrap();
        assert_eq!(n, 256);
        let peak = power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, 8);
    }

    #[test]
    fn masked_periodogram_needs_four_present() {
        let signal = [1.0, f64::NAN, 2.0, f64::NAN, 3.0];
        assert!(matches!(
            periodogram_masked(&signal),
            Err(SeriesError::TooShort(3))
        ));
    }

    #[test]
    fn fft_of_single_sample_is_identity() {
        let mut buf = vec![Complex::new(2.5, -1.5)];
        fft_in_place(&mut buf).unwrap();
        assert_eq!(buf, vec![Complex::new(2.5, -1.5)]);
        ifft_in_place(&mut buf).unwrap();
        assert_eq!(buf, vec![Complex::new(2.5, -1.5)]);
    }

    #[test]
    fn with_plan_is_reentrant() {
        // The inner call takes an empty scratch and allocates fresh; both
        // levels must still compute correct transforms.
        let inner = with_plan(8, |_, outer_buf| {
            outer_buf[0] = Complex::new(1.0, 0.0);
            with_plan(4, |plan, buf| {
                buf[0] = Complex::new(1.0, 0.0);
                plan.forward(buf);
                buf.iter().map(|c| c.re).sum::<f64>()
            })
            .unwrap()
        })
        .unwrap();
        assert!((inner - 4.0).abs() < 1e-12);
    }

    #[test]
    fn scratch_buffer_is_zeroed_between_uses() {
        // Fill scratch with garbage at one size, then check a smaller
        // transform still sees zeros in its padding.
        with_plan(64, |_, buf| {
            for c in buf.iter_mut() {
                *c = Complex::new(7.0, -3.0);
            }
        })
        .unwrap();
        with_plan(32, |_, buf| {
            assert!(buf.iter().all(|c| c.re == 0.0 && c.im == 0.0));
        })
        .unwrap();
    }
}
