//! Regional workload rebalancing via region-agnostic workloads (the
//! Insight 4 implication), including a replay of the paper's Canada
//! pilot: shifting *ServiceX* from a hot region to a cold one reduced the
//! source region's underutilized-core percentage from 23% to 16% and its
//! core-utilization rate from 42% to 37%.

use crate::error::MgmtError;
use cloudscope_model::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// VMs with mean CPU below this (percent) count as *underutilized* —
/// allocated capacity the owner barely uses.
pub const UNDERUTILIZED_MEAN_UTIL_PCT: f32 = 10.0;

/// Capacity health of one region at a snapshot, in the pilot's two
/// metrics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegionCapacityStats {
    /// Physical cores across the region's clusters (of one cloud).
    pub total_cores: u64,
    /// Cores allocated to alive VMs.
    pub allocated_cores: u64,
    /// Allocated cores belonging to underutilized VMs.
    pub underutilized_cores: u64,
}

impl RegionCapacityStats {
    /// The pilot's "core utilization rate": allocated / total.
    #[must_use]
    pub fn core_utilization_rate(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            self.allocated_cores as f64 / self.total_cores as f64
        }
    }

    /// The pilot's "underutilized core percentage": underutilized /
    /// total.
    #[must_use]
    pub fn underutilized_pct(&self) -> f64 {
        if self.total_cores == 0 {
            0.0
        } else {
            self.underutilized_cores as f64 / self.total_cores as f64
        }
    }
}

/// Computes one region's capacity stats for `cloud` at time `at`.
///
/// # Errors
/// Returns [`MgmtError::UnknownRegion`] if the region has no clusters of
/// this cloud.
pub fn region_capacity_stats(
    trace: &Trace,
    cloud: CloudKind,
    region: RegionId,
    at: SimTime,
) -> Result<RegionCapacityStats, MgmtError> {
    let total_cores: u64 = trace
        .topology()
        .clusters_in_region(region)
        .filter(|c| c.cloud == cloud)
        .map(Cluster::total_cores)
        .sum();
    if total_cores == 0 {
        return Err(MgmtError::UnknownRegion(region));
    }
    let mut stats = RegionCapacityStats {
        total_cores,
        allocated_cores: 0,
        underutilized_cores: 0,
    };
    for &vm_id in trace.vms_in_region(region) {
        let vm = trace.vm(vm_id).expect("indexed vm");
        if vm.node.is_none() || !vm.alive_at(at) {
            continue;
        }
        if trace
            .subscription(vm.subscription)
            .is_ok_and(|s| s.cloud != cloud)
        {
            continue;
        }
        let cores = u64::from(vm.size.cores());
        stats.allocated_cores += cores;
        if trace
            .util(vm_id)
            .is_some_and(|u| u.mean() < UNDERUTILIZED_MEAN_UTIL_PCT)
        {
            stats.underutilized_cores += cores;
        }
    }
    Ok(stats)
}

/// The outcome of simulating one regional shift.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShiftOutcome {
    /// VMs of the service moved.
    pub moved_vms: usize,
    /// Cores moved.
    pub moved_cores: u64,
    /// Source region before the shift.
    pub source_before: RegionCapacityStats,
    /// Source region after the shift.
    pub source_after: RegionCapacityStats,
    /// Destination region before the shift.
    pub destination_before: RegionCapacityStats,
    /// Destination region after the shift.
    pub destination_after: RegionCapacityStats,
}

/// Simulates shifting every alive VM of `service` from region `from` to
/// region `to` at time `at` (the Canada pilot replay).
///
/// # Errors
/// - [`MgmtError::UnknownRegion`] if either region lacks clusters.
/// - [`MgmtError::NothingToShift`] if the service has no alive VMs in
///   `from`.
/// - [`MgmtError::InsufficientCapacity`] if `to` cannot absorb the moved
///   cores.
pub fn simulate_shift(
    trace: &Trace,
    cloud: CloudKind,
    service: ServiceId,
    from: RegionId,
    to: RegionId,
    at: SimTime,
) -> Result<ShiftOutcome, MgmtError> {
    let source_before = region_capacity_stats(trace, cloud, from, at)?;
    let destination_before = region_capacity_stats(trace, cloud, to, at)?;

    let mut moved_vms = 0usize;
    let mut moved_cores = 0u64;
    let mut moved_underutilized = 0u64;
    for &vm_id in trace.vms_of_service(service) {
        let vm = trace.vm(vm_id).expect("indexed vm");
        if vm.region != from || vm.node.is_none() || !vm.alive_at(at) {
            continue;
        }
        moved_vms += 1;
        let cores = u64::from(vm.size.cores());
        moved_cores += cores;
        if trace
            .util(vm_id)
            .is_some_and(|u| u.mean() < UNDERUTILIZED_MEAN_UTIL_PCT)
        {
            moved_underutilized += cores;
        }
    }
    if moved_vms == 0 {
        return Err(MgmtError::NothingToShift(service, from));
    }
    if destination_before.allocated_cores + moved_cores > destination_before.total_cores {
        return Err(MgmtError::InsufficientCapacity(to));
    }

    let source_after = RegionCapacityStats {
        total_cores: source_before.total_cores,
        allocated_cores: source_before.allocated_cores - moved_cores,
        underutilized_cores: source_before.underutilized_cores - moved_underutilized,
    };
    let destination_after = RegionCapacityStats {
        total_cores: destination_before.total_cores,
        allocated_cores: destination_before.allocated_cores + moved_cores,
        underutilized_cores: destination_before.underutilized_cores + moved_underutilized,
    };
    Ok(ShiftOutcome {
        moved_vms,
        moved_cores,
        source_before,
        source_after,
        destination_before,
        destination_after,
    })
}

/// A recommended regional shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShiftRecommendation {
    /// Service to move.
    pub service: ServiceId,
    /// Hot source region.
    pub from: RegionId,
    /// Cold destination region.
    pub to: RegionId,
    /// Cores that would move.
    pub cores: u64,
}

/// Recommends shifting the largest shiftable services from the hottest
/// region (by core-utilization rate) to the coldest, until the projected
/// gap closes below `target_gap` or candidates run out.
///
/// `shiftable_services` are services already vetted as region-agnostic
/// (e.g. via the knowledge base plus compliance checks).
///
/// # Errors
/// Returns [`MgmtError::UnknownRegion`] if the cloud has no regions with
/// clusters.
pub fn recommend_shifts(
    trace: &Trace,
    cloud: CloudKind,
    shiftable_services: &[ServiceId],
    at: SimTime,
    target_gap: f64,
) -> Result<Vec<ShiftRecommendation>, MgmtError> {
    // Rank regions by utilization rate.
    let mut stats: Vec<(RegionId, RegionCapacityStats)> = Vec::new();
    for region in trace.topology().regions() {
        if let Ok(s) = region_capacity_stats(trace, cloud, region.id, at) {
            stats.push((region.id, s));
        }
    }
    if stats.len() < 2 {
        return Err(MgmtError::UnknownRegion(RegionId::new(u32::MAX)));
    }
    stats.sort_by(|a, b| {
        b.1.core_utilization_rate()
            .partial_cmp(&a.1.core_utilization_rate())
            .expect("finite rates")
    });
    let (hot, mut hot_stats) = stats[0];
    let (cold, mut cold_stats) = *stats.last().expect("len >= 2");

    // Cores of each shiftable service alive in the hot region.
    let mut service_cores: HashMap<ServiceId, u64> = HashMap::new();
    for &service in shiftable_services {
        for &vm_id in trace.vms_of_service(service) {
            let vm = trace.vm(vm_id).expect("indexed vm");
            if vm.region == hot && vm.node.is_some() && vm.alive_at(at) {
                *service_cores.entry(service).or_insert(0) += u64::from(vm.size.cores());
            }
        }
    }
    let mut candidates: Vec<(ServiceId, u64)> = service_cores.into_iter().collect();
    candidates.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut recommendations = Vec::new();
    for (service, cores) in candidates {
        if hot_stats.core_utilization_rate() - cold_stats.core_utilization_rate() <= target_gap {
            break;
        }
        if cold_stats.allocated_cores + cores > cold_stats.total_cores {
            continue;
        }
        hot_stats.allocated_cores -= cores;
        cold_stats.allocated_cores += cores;
        recommendations.push(ShiftRecommendation {
            service,
            from: hot,
            to: cold,
            cores,
        });
    }
    Ok(recommendations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudscope_tracegen::{generate, GeneratedTrace, GeneratorConfig};

    fn generated() -> GeneratedTrace {
        generate(&GeneratorConfig::small(31))
    }

    #[test]
    fn capacity_stats_are_consistent() {
        let g = generated();
        let at = SimTime::from_hours(60);
        for region in g.trace.topology().regions() {
            for cloud in CloudKind::BOTH {
                let s = region_capacity_stats(&g.trace, cloud, region.id, at).unwrap();
                assert!(s.allocated_cores <= s.total_cores);
                assert!(s.underutilized_cores <= s.allocated_cores);
                assert!((0.0..=1.0).contains(&s.core_utilization_rate()));
                assert!(s.underutilized_pct() <= s.core_utilization_rate() + 1e-12);
            }
        }
    }

    #[test]
    fn unknown_region_errors() {
        let g = generated();
        assert!(matches!(
            region_capacity_stats(
                &g.trace,
                CloudKind::Private,
                RegionId::new(99),
                SimTime::ZERO
            ),
            Err(MgmtError::UnknownRegion(_))
        ));
    }

    #[test]
    fn shift_moves_cores_between_regions() {
        let g = generated();
        let at = SimTime::from_hours(60);
        // Find a multi-region private service with VMs in region 0.
        let service = g
            .services
            .iter()
            .filter(|s| s.cloud == CloudKind::Private)
            .find(|s| {
                g.trace.vms_of_service(s.service).iter().any(|&vm| {
                    let r = g.trace.vm(vm).unwrap();
                    r.region == RegionId::new(0) && r.alive_at(at) && r.node.is_some()
                })
            })
            .expect("private service in region 0");
        let outcome = simulate_shift(
            &g.trace,
            CloudKind::Private,
            service.service,
            RegionId::new(0),
            RegionId::new(1),
            at,
        )
        .unwrap();
        assert!(outcome.moved_vms > 0);
        assert_eq!(
            outcome.source_before.allocated_cores - outcome.moved_cores,
            outcome.source_after.allocated_cores
        );
        assert_eq!(
            outcome.destination_before.allocated_cores + outcome.moved_cores,
            outcome.destination_after.allocated_cores
        );
        // The source region gets healthier on both pilot metrics.
        assert!(
            outcome.source_after.core_utilization_rate()
                < outcome.source_before.core_utilization_rate()
        );
        assert!(
            outcome.source_after.underutilized_pct() <= outcome.source_before.underutilized_pct()
        );
    }

    #[test]
    fn shifting_nothing_errors() {
        let g = generated();
        assert!(matches!(
            simulate_shift(
                &g.trace,
                CloudKind::Private,
                ServiceId::new(u32::MAX - 1),
                RegionId::new(0),
                RegionId::new(1),
                SimTime::from_hours(60),
            ),
            Err(MgmtError::NothingToShift(..))
        ));
    }

    #[test]
    fn recommendations_target_the_hot_region() {
        let g = generated();
        let at = SimTime::from_hours(60);
        let shiftable: Vec<ServiceId> = g
            .services
            .iter()
            .filter(|s| s.cloud == CloudKind::Private && s.profile.region_agnostic)
            .map(|s| s.service)
            .collect();
        let recs = recommend_shifts(&g.trace, CloudKind::Private, &shiftable, at, 0.0).unwrap();
        // All recommendations share the same hot source and cold sink.
        if let Some(first) = recs.first() {
            assert!(recs
                .iter()
                .all(|r| r.from == first.from && r.to == first.to));
            let hot = region_capacity_stats(&g.trace, CloudKind::Private, first.from, at)
                .unwrap()
                .core_utilization_rate();
            let cold = region_capacity_stats(&g.trace, CloudKind::Private, first.to, at)
                .unwrap()
                .core_utilization_rate();
            assert!(hot >= cold);
        }
    }
}
