//! Correlation analyses (Figure 7): VM↔host-node similarity, cross-region
//! similarity per subscription, and region-agnostic workload detection.

use crate::error::AnalysisError;
use cloudscope_model::prelude::*;
use cloudscope_model::time::{SAMPLES_PER_WEEK, SAMPLE_INTERVAL_MINUTES};
use cloudscope_stats::{pearson, pearson_or_zero, Ecdf};
use cloudscope_timeseries::{daily_profile, Series};
use std::collections::{HashMap, HashSet};

/// Minimum overlapping samples for a correlation to be meaningful
/// (one day of 5-minute telemetry).
const MIN_OVERLAP_SAMPLES: usize = 288;

/// ECDF of Pearson correlations between each VM's CPU series and its host
/// node's aggregate CPU series (Figure 7(a)).
///
/// As in the paper, nodes hosting a single VM are filtered out (their
/// correlation is trivially 1). Constant series count as correlation 0.
/// At most `max_nodes` nodes are examined (stride-sampled).
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no correlations can be computed.
pub fn node_vm_correlation_cdf(
    trace: &Trace,
    cloud: CloudKind,
    max_nodes: usize,
) -> Result<Ecdf, AnalysisError> {
    // Nodes of this cloud's clusters.
    let cloud_clusters: HashSet<ClusterId> =
        trace.topology().clusters_of(cloud).map(|c| c.id).collect();
    let mut nodes: Vec<NodeId> = trace
        .occupied_nodes()
        .filter(|&n| {
            trace
                .topology()
                .node(n)
                .is_ok_and(|info| cloud_clusters.contains(&info.cluster))
        })
        .collect();
    nodes.sort_unstable();
    let stride = (nodes.len() / max_nodes.max(1)).max(1);

    let mut correlations = Vec::new();
    for node in nodes.into_iter().step_by(stride).take(max_nodes) {
        // The paper's filter: skip trivial single-VM nodes.
        let vms_with_telemetry: Vec<VmId> = trace
            .vms_on_node(node)
            .iter()
            .copied()
            .filter(|&vm| {
                trace
                    .util(vm)
                    .is_some_and(|u| u.len() >= MIN_OVERLAP_SAMPLES)
            })
            .collect();
        if vms_with_telemetry.len() < 2 {
            continue;
        }
        let node_series = trace
            .node_utilization(node)
            .map_err(|_| AnalysisError::NoData("node utilization"))?
            .to_f64_vec();
        for vm in vms_with_telemetry {
            let util = trace.util(vm).expect("filtered above");
            let offset = (util.start().minutes() / SAMPLE_INTERVAL_MINUTES) as usize;
            let len = util.len().min(SAMPLES_PER_WEEK - offset);
            let vm_vals = util.to_f64_vec();
            // Joint-finite masking: gap slots in the VM series drop out of
            // the correlation instead of poisoning it.
            if let Some(r) = joint_pearson(&vm_vals[..len], &node_series[offset..offset + len]) {
                correlations.push(r);
            }
        }
    }
    if correlations.is_empty() {
        return Err(AnalysisError::NoData("node-vm correlations"));
    }
    Ecdf::new(correlations).map_err(AnalysisError::from)
}

/// The per-region average utilization of one subscription on the full
/// week grid; `None` where no VM reports. Returns `None` if coverage is
/// below one day of samples.
fn region_mean_series(trace: &Trace, sub: SubscriptionId, region: RegionId) -> Option<Vec<f64>> {
    let mut sum = vec![0.0f64; SAMPLES_PER_WEEK];
    let mut count = vec![0u32; SAMPLES_PER_WEEK];
    for &vm in trace.vms_of_subscription(sub) {
        let record = trace.vm(vm).expect("indexed vm exists");
        if record.region != region {
            continue;
        }
        let Some(util) = trace.util(vm) else { continue };
        let offset = (util.start().minutes() / SAMPLE_INTERVAL_MINUTES) as usize;
        for (i, v) in util.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            let slot = offset + i;
            if slot < SAMPLES_PER_WEEK {
                sum[slot] += f64::from(v);
                count[slot] += 1;
            }
        }
    }
    let covered = count.iter().filter(|&&c| c > 0).count();
    if covered < MIN_OVERLAP_SAMPLES {
        return None;
    }
    Some(
        sum.into_iter()
            .zip(count)
            .map(|(s, c)| if c == 0 { f64::NAN } else { s / f64::from(c) })
            .collect(),
    )
}

/// Pearson correlation over the jointly covered slots of two mean series.
fn joint_pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    let (mut xs, mut ys) = (Vec::new(), Vec::new());
    for (&x, &y) in a.iter().zip(b) {
        if x.is_finite() && y.is_finite() {
            xs.push(x);
            ys.push(y);
        }
    }
    if xs.len() < MIN_OVERLAP_SAMPLES {
        return None;
    }
    pearson_or_zero(&xs, &ys)
}

/// One subscription's cross-region utilization similarity.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossRegionCorrelation {
    /// The subscription.
    pub subscription: SubscriptionId,
    /// Pairwise correlations over its deployed-region pairs.
    pub pair_correlations: Vec<f64>,
}

impl CrossRegionCorrelation {
    /// The minimum pairwise correlation — the conservative
    /// region-agnosticism score.
    #[must_use]
    pub fn min_correlation(&self) -> f64 {
        self.pair_correlations
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min)
    }
}

/// Computes cross-region utilization correlations for every multi-region
/// subscription of `cloud`, restricted to regions whose `geo` tag equals
/// `geo` (the paper restricts to US regions).
#[must_use]
pub fn cross_region_correlations(
    trace: &Trace,
    cloud: CloudKind,
    geo: &str,
) -> Vec<CrossRegionCorrelation> {
    let geo_regions: HashSet<RegionId> =
        trace.topology().regions_in_geo(geo).map(|r| r.id).collect();
    // Regions per subscription.
    let mut sub_regions: HashMap<SubscriptionId, HashSet<RegionId>> = HashMap::new();
    for vm in trace.vms_of(cloud) {
        if geo_regions.contains(&vm.region) {
            sub_regions
                .entry(vm.subscription)
                .or_default()
                .insert(vm.region);
        }
    }
    let mut out = Vec::new();
    let mut subs: Vec<_> = sub_regions.into_iter().collect();
    subs.sort_by_key(|(s, _)| *s);
    for (sub, regions) in subs {
        if regions.len() < 2 {
            continue;
        }
        let mut regions: Vec<RegionId> = regions.into_iter().collect();
        regions.sort_unstable();
        let means: Vec<(RegionId, Vec<f64>)> = regions
            .iter()
            .filter_map(|&r| region_mean_series(trace, sub, r).map(|m| (r, m)))
            .collect();
        if means.len() < 2 {
            continue;
        }
        let mut pair_correlations = Vec::new();
        for i in 0..means.len() {
            for j in i + 1..means.len() {
                if let Some(r) = joint_pearson(&means[i].1, &means[j].1) {
                    pair_correlations.push(r);
                }
            }
        }
        if !pair_correlations.is_empty() {
            out.push(CrossRegionCorrelation {
                subscription: sub,
                pair_correlations,
            });
        }
    }
    out
}

/// ECDF over all region-pair correlations of a cloud (Figure 7(b)).
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if no multi-region subscription has
/// enough telemetry.
pub fn region_pair_correlation_cdf(
    trace: &Trace,
    cloud: CloudKind,
    geo: &str,
) -> Result<Ecdf, AnalysisError> {
    let pairs: Vec<f64> = cross_region_correlations(trace, cloud, geo)
        .into_iter()
        .flat_map(|c| c.pair_correlations)
        .collect();
    if pairs.is_empty() {
        return Err(AnalysisError::NoData("region-pair correlations"));
    }
    Ecdf::new(pairs).map_err(AnalysisError::from)
}

/// Subscriptions whose minimum cross-region correlation exceeds
/// `threshold` — region-agnostic *candidates* (the paper notes data
/// locality/compliance must also be checked before acting).
#[must_use]
pub fn region_agnostic_candidates(
    trace: &Trace,
    cloud: CloudKind,
    geo: &str,
    threshold: f64,
) -> Vec<SubscriptionId> {
    cross_region_correlations(trace, cloud, geo)
        .into_iter()
        .filter(|c| c.min_correlation() >= threshold)
        .map(|c| c.subscription)
        .collect()
}

/// Figure 7(c): the average *daily* CPU profile (hourly resolution, UTC)
/// of one service in each region it occupies.
///
/// # Errors
/// Returns [`AnalysisError::NoData`] if the service has no usable
/// telemetry in at least one region.
pub fn service_region_daily_profiles(
    trace: &Trace,
    service: ServiceId,
) -> Result<Vec<(RegionId, Vec<f64>)>, AnalysisError> {
    let vm_ids = trace.vms_of_service(service);
    if vm_ids.is_empty() {
        return Err(AnalysisError::NoData("service vms"));
    }
    let sub = trace
        .vm(vm_ids[0])
        .map_err(|_| AnalysisError::NoData("service vms"))?
        .subscription;
    let mut regions: Vec<RegionId> = vm_ids
        .iter()
        .filter_map(|&vm| trace.vm(vm).ok().map(|r| r.region))
        .collect();
    regions.sort_unstable();
    regions.dedup();
    let mut out = Vec::new();
    for region in regions {
        let Some(mean) = region_mean_series(trace, sub, region) else {
            continue;
        };
        // NaN gaps would poison the profile: fill with 0 (no activity).
        let filled: Vec<f64> = mean
            .into_iter()
            .map(|v| if v.is_finite() { v } else { 0.0 })
            .collect();
        let series = Series::new(0, SAMPLE_INTERVAL_MINUTES, filled)
            .downsample_mean(12)
            .expect("positive factor");
        out.push((region, daily_profile(&series)?));
    }
    if out.is_empty() {
        return Err(AnalysisError::NoData("service telemetry"));
    }
    Ok(out)
}

/// Peak-alignment score for Figure 7(c): the pairwise Pearson correlation
/// of a service's per-region daily profiles, averaged. Near 1 for a
/// geo-load-balanced service; low for local-clock services spread over
/// time zones.
///
/// # Errors
/// Propagates [`service_region_daily_profiles`] errors; also fails if the
/// service occupies fewer than two regions.
pub fn service_region_alignment(trace: &Trace, service: ServiceId) -> Result<f64, AnalysisError> {
    let profiles = service_region_daily_profiles(trace, service)?;
    if profiles.len() < 2 {
        return Err(AnalysisError::NoData("multi-region service"));
    }
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..profiles.len() {
        for j in i + 1..profiles.len() {
            if let Ok(r) = pearson(&profiles[i].1, &profiles[j].1) {
                total += r;
                n += 1;
            }
        }
    }
    if n == 0 {
        return Err(AnalysisError::NoData("alignment pairs"));
    }
    Ok(total / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::tiny_trace;

    #[test]
    fn private_node_correlation_higher_than_public() {
        let trace = tiny_trace();
        let private = node_vm_correlation_cdf(&trace, CloudKind::Private, 100).unwrap();
        let public = node_vm_correlation_cdf(&trace, CloudKind::Public, 100).unwrap();
        // Node 0 hosts two same-profile diurnal VMs -> high correlation;
        // node 4 hosts a stable and a diurnal VM -> mixed.
        assert!(
            private.median() > 0.9,
            "private median {}",
            private.median()
        );
        assert!(
            private.median() > public.median(),
            "private {} vs public {}",
            private.median(),
            public.median()
        );
    }

    #[test]
    fn single_vm_nodes_are_filtered() {
        let trace = tiny_trace();
        let private = node_vm_correlation_cdf(&trace, CloudKind::Private, 100).unwrap();
        // Only node 0 qualifies (two telemetry VMs): exactly 2 pairs.
        assert_eq!(private.len(), 2);
    }

    #[test]
    fn cross_region_correlation_separates_geo_lb() {
        let trace = tiny_trace();
        let private = cross_region_correlations(&trace, CloudKind::Private, "US");
        assert_eq!(private.len(), 1, "only sub0 is multi-region");
        assert!(
            private[0].min_correlation() > 0.9,
            "geo-LB service aligns: {}",
            private[0].min_correlation()
        );
        let public = cross_region_correlations(&trace, CloudKind::Public, "US");
        assert_eq!(public.len(), 1, "only sub4");
        assert!(
            public[0].min_correlation() < private[0].min_correlation(),
            "local-clock service across 3 zones correlates less"
        );
    }

    #[test]
    fn region_agnostic_candidates_detected() {
        let trace = tiny_trace();
        let candidates = region_agnostic_candidates(&trace, CloudKind::Private, "US", 0.9);
        assert_eq!(candidates, vec![SubscriptionId::new(0)]);
        // At an impossible threshold nothing qualifies.
        assert!(region_agnostic_candidates(&trace, CloudKind::Private, "US", 1.01).is_empty());
    }

    #[test]
    fn service_daily_profiles_align_for_geo_lb() {
        let trace = tiny_trace();
        // Service 0 = sub0, region-agnostic.
        let aligned = service_region_alignment(&trace, ServiceId::new(0)).unwrap();
        assert!(aligned > 0.95, "geo-LB alignment {aligned}");
        // Service 4 = sub4, local clocks 3 zones apart.
        let shifted = service_region_alignment(&trace, ServiceId::new(4)).unwrap();
        assert!(shifted < aligned, "shifted {shifted} < aligned {aligned}");
    }

    #[test]
    fn profiles_cover_each_region() {
        let trace = tiny_trace();
        let profiles = service_region_daily_profiles(&trace, ServiceId::new(0)).unwrap();
        assert_eq!(profiles.len(), 2);
        assert!(profiles.iter().all(|(_, p)| p.len() == 24));
    }

    #[test]
    fn errors_on_missing_data() {
        let trace = tiny_trace();
        // Service 1's only VM has no telemetry.
        assert!(service_region_alignment(&trace, ServiceId::new(1)).is_err());
        assert!(service_region_daily_profiles(&trace, ServiceId::new(99)).is_err());
        assert!(region_pair_correlation_cdf(&trace, CloudKind::Private, "EU").is_err());
    }
}
