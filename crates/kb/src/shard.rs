//! One shard of the knowledge base: its entry map plus the secondary
//! indexes that turn the policies' candidate queries into index walks.
//!
//! Every index is maintained *incrementally* — an upsert deindexes the
//! entry it replaces and indexes the new one under the same write lock,
//! so readers can never observe an entry without its index postings (or
//! a posting without its entry). [`ShardState::check_consistency`]
//! verifies that invariant by rebuilding the indexes from scratch and
//! demanding exact equality; the property suite in
//! `crates/kb/tests/consistency.rs` drives it with random op sequences.

use crate::knowledge::{LifetimeClass, WorkloadKnowledge};
use crate::query::KbSelector;
use cloudscope_analysis::UtilizationPattern;
use cloudscope_model::prelude::*;
use std::collections::{BTreeSet, HashMap};

/// The secondary indexes one shard maintains, one per typed query the
/// management policies run. Posting sets are `BTreeSet`s so every
/// per-shard walk yields subscriptions in ascending order — the global
/// merge in the query engine only has to sort across shards.
///
/// Sets that empty out are removed from their maps, so two index states
/// built from the same entries compare equal regardless of history.
#[derive(Debug, Default, PartialEq, Eq)]
struct ShardIndexes {
    /// `(cloud, dominant pattern)` → subscriptions.
    pattern: HashMap<(CloudKind, UtilizationPattern), BTreeSet<SubscriptionId>>,
    /// Lifetime class → subscriptions.
    lifetime: HashMap<LifetimeClass, BTreeSet<SubscriptionId>>,
    /// Spot-adoption candidates ([`WorkloadKnowledge::spot_candidate`]).
    spot: BTreeSet<SubscriptionId>,
    /// Over-subscription candidates, per cloud.
    oversub: HashMap<CloudKind, BTreeSet<SubscriptionId>>,
    /// Region-shiftable workloads ([`WorkloadKnowledge::shiftable`]).
    shiftable: BTreeSet<SubscriptionId>,
}

impl ShardIndexes {
    /// Adds `k`'s postings to every index it belongs in.
    fn index(&mut self, k: &WorkloadKnowledge) {
        let id = k.subscription;
        if let Some(pattern) = k.pattern {
            self.pattern
                .entry((k.cloud, pattern))
                .or_default()
                .insert(id);
        }
        self.lifetime.entry(k.lifetime).or_default().insert(id);
        if k.spot_candidate() {
            self.spot.insert(id);
        }
        if k.oversubscription_candidate() {
            self.oversub.entry(k.cloud).or_default().insert(id);
        }
        if k.shiftable() {
            self.shiftable.insert(id);
        }
    }

    /// Removes `k`'s postings, dropping sets that empty out so index
    /// state stays history-independent.
    fn deindex(&mut self, k: &WorkloadKnowledge) {
        let id = k.subscription;
        if let Some(pattern) = k.pattern {
            let key = (k.cloud, pattern);
            if let Some(set) = self.pattern.get_mut(&key) {
                set.remove(&id);
                if set.is_empty() {
                    self.pattern.remove(&key);
                }
            }
        }
        if let Some(set) = self.lifetime.get_mut(&k.lifetime) {
            set.remove(&id);
            if set.is_empty() {
                self.lifetime.remove(&k.lifetime);
            }
        }
        self.spot.remove(&id);
        if k.oversubscription_candidate() {
            if let Some(set) = self.oversub.get_mut(&k.cloud) {
                set.remove(&id);
                if set.is_empty() {
                    self.oversub.remove(&k.cloud);
                }
            }
        }
        self.shiftable.remove(&id);
    }
}

/// One shard: the entry map plus its secondary indexes, always mutated
/// together under the owning `RwLock`'s write guard.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    entries: HashMap<SubscriptionId, WorkloadKnowledge>,
    indexes: ShardIndexes,
}

impl ShardState {
    /// Inserts or refreshes one entry, keeping the indexes in lockstep.
    /// Returns `false` for a stale write (older `updated_at` than the
    /// stored entry), which leaves both entry and indexes untouched.
    pub(crate) fn upsert(&mut self, knowledge: WorkloadKnowledge) -> bool {
        let id = knowledge.subscription;
        if self
            .entries
            .get(&id)
            .is_some_and(|existing| existing.updated_at > knowledge.updated_at)
        {
            return false;
        }
        if let Some(old) = self.entries.remove(&id) {
            self.indexes.deindex(&old);
        }
        self.indexes.index(&knowledge);
        self.entries.insert(id, knowledge);
        true
    }

    /// Removes one entry and its index postings.
    pub(crate) fn remove(&mut self, id: SubscriptionId) -> Option<WorkloadKnowledge> {
        let old = self.entries.remove(&id)?;
        self.indexes.deindex(&old);
        Some(old)
    }

    /// Looks up one entry.
    pub(crate) fn get(&self, id: SubscriptionId) -> Option<&WorkloadKnowledge> {
        self.entries.get(&id)
    }

    /// Number of entries in this shard.
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    /// Unordered iteration over every entry (full-scan queries).
    pub(crate) fn entries(&self) -> impl Iterator<Item = &WorkloadKnowledge> {
        self.entries.values()
    }

    /// The index posting set serving `selector`, if the selector is
    /// index-backed ([`KbSelector::All`] is not: it scans). `None` for an
    /// index-backed selector means no entry matches in this shard.
    pub(crate) fn index_ids(&self, selector: &KbSelector) -> Option<&BTreeSet<SubscriptionId>> {
        match *selector {
            KbSelector::All => None,
            KbSelector::Pattern(cloud, pattern) => self.indexes.pattern.get(&(cloud, pattern)),
            KbSelector::Lifetime(class) => self.indexes.lifetime.get(&class),
            KbSelector::SpotCandidates => Some(&self.indexes.spot),
            KbSelector::OversubscriptionCandidates(cloud) => self.indexes.oversub.get(&cloud),
            KbSelector::Shiftable => Some(&self.indexes.shiftable),
        }
    }

    /// Verifies index ↔ entry consistency by rebuilding every index from
    /// the entry map and demanding exact equality (including the absence
    /// of dangling postings, which rebuild equality implies because a
    /// posting set is part of the compared state).
    ///
    /// # Errors
    /// A description of the first divergence found.
    pub(crate) fn check_consistency(&self) -> Result<(), String> {
        let mut rebuilt = ShardIndexes::default();
        for k in self.entries.values() {
            rebuilt.index(k);
        }
        if rebuilt != self.indexes {
            return Err(format!(
                "indexes diverged from a fresh rebuild over {} entries \
                 (live: {:?}, rebuilt: {:?})",
                self.entries.len(),
                self.indexes,
                rebuilt
            ));
        }
        for id in self.indexes.spot.iter() {
            if !self.entries.contains_key(id) {
                return Err(format!("spot index posts missing entry {id}"));
            }
        }
        Ok(())
    }
}
