//! End-to-end streaming ingestion: convergence to the batch pipeline on
//! clean streams, bounded and fully-accounted divergence under faults,
//! and the KB publication path.

use cloudscope_analysis::PatternClassifier;
use cloudscope_faults::{corrupt_trace, FaultPlan, WireSample};
use cloudscope_ingest::{drive_ingest, IngestConfig, Ingestor};
use cloudscope_kb::{extract_subscription_knowledge, KnowledgeBase};
use cloudscope_model::prelude::*;
use cloudscope_model::trace::TelemetrySource;
use cloudscope_tracegen::{generate, GeneratorConfig};

/// The per-subscription classification cap `drive_ingest` publishes
/// with (mirrors the batch pipeline's default test setting).
const MAX_CLASSIFIED: usize = 4;

#[test]
fn clean_stream_converges_to_batch_exactly() {
    let g = generate(&GeneratorConfig::small(41));
    let classifier = PatternClassifier::default();
    let kb = KnowledgeBase::new();
    let outcome = drive_ingest(
        &g.trace,
        &FaultPlan::clean(41),
        &IngestConfig::default(),
        &classifier,
        &kb,
    );
    let session = &outcome.session;
    let report = session.report();

    // Headline: streamed series are byte-identical to the resident
    // trace, and the streaming classification equals the batch
    // classifier output for every VM.
    let mut with_telemetry = 0;
    for vm in g.trace.vms() {
        assert_eq!(session.load(vm.id), g.trace.util(vm.id), "vm {}", vm.id);
        assert_eq!(session.has(vm.id), g.trace.has_util(vm.id));
        assert_eq!(
            session.pattern(vm.id),
            classifier.classify_vm(&g.trace, vm.id),
            "vm {}",
            vm.id
        );
        with_telemetry += usize::from(g.trace.has_util(vm.id));
    }
    assert!(with_telemetry > 0, "trace must have telemetry");
    assert_eq!(report.vms, with_telemetry);

    // Clean accounting: everything offered was applied.
    assert_eq!(report.dropped_late, 0);
    assert_eq!(report.rejected_invalid, 0);
    assert_eq!(report.out_of_week, 0);
    assert_eq!(report.duplicates_collapsed, 0);
    assert_eq!(report.samples_offered, report.samples_applied);
    assert_eq!(report.vms_with_drops, 0);
    assert!(report.windows_closed as usize >= with_telemetry);
    assert!(report.classifications > 0);

    // Live memory is bounded: between hourly watermark ticks a lane
    // buffers at most (tick + delay)/interval + 1 unsealed slots
    // (sealing is lazy, applied on the lane's next touch).
    let pending_slots = (60 + IngestConfig::default().watermark_delay_minutes) / 5 + 1;
    assert!(
        report.peak_pending_samples <= with_telemetry * pending_slots as usize,
        "peak {} exceeds the watermark bound",
        report.peak_pending_samples
    );
}

#[test]
fn clean_stream_publishes_batch_identical_knowledge() {
    let g = generate(&GeneratorConfig::small(42));
    let classifier = PatternClassifier::default();
    let kb = KnowledgeBase::new();
    let outcome = drive_ingest(
        &g.trace,
        &FaultPlan::clean(42),
        &IngestConfig::default(),
        &classifier,
        &kb,
    );
    assert!(outcome.pipeline_stats.batches >= 1);
    assert!(outcome.pipeline_stats.failed == 0);
    assert!(!kb.is_empty());

    // The default window closes exactly at week end, so for every
    // subscription that actually streamed telemetry the published
    // entry must equal the batch extraction (same classifier, same
    // cap, same `updated_at`), entry by entry. Subscriptions with no
    // reporting VM never stream, so the service has nothing to refresh
    // for them — they must be absent, not fabricated from metadata.
    let mut streamed_subs = 0;
    for sub in g.trace.subscriptions() {
        let has_signal = g
            .trace
            .vms_of_subscription(sub.id)
            .iter()
            .any(|&vm| g.trace.has_util(vm));
        if !has_signal {
            assert!(
                kb.get(sub.id).is_none(),
                "no-signal sub {} published",
                sub.id
            );
            continue;
        }
        streamed_subs += 1;
        let batch =
            extract_subscription_knowledge(&g.trace, sub.id, &classifier, MAX_CLASSIFIED, None);
        assert_eq!(kb.get(sub.id), batch, "subscription {}", sub.id);
        let entry = kb.get(sub.id).expect("streamed sub has an entry");
        assert_eq!(entry.updated_at, SimTime::WEEK_END);
    }
    assert!(streamed_subs > 0);
    assert_eq!(kb.len(), streamed_subs);
}

#[test]
fn faulted_stream_divergence_is_fully_accounted() {
    let g = generate(&GeneratorConfig::small(43));
    let plan = FaultPlan::standard(43);
    let classifier = PatternClassifier::default();
    let kb = KnowledgeBase::new();
    let outcome = drive_ingest(&g.trace, &plan, &IngestConfig::default(), &classifier, &kb);
    let session = &outcome.session;
    let report = session.report();

    // The batch reference: the same plan applied by `corrupt_trace`
    // (identical per-VM RNG streams, so identical wire content).
    let (corrupted, batch_report) = corrupt_trace(&g.trace, &plan);

    // The corruption ledgers agree on everything the corrupt stage
    // decides (ingestion outcomes differ only via late drops).
    assert_eq!(outcome.fault_report.samples_in, batch_report.samples_in);
    assert_eq!(outcome.fault_report.dropped, batch_report.dropped);
    assert_eq!(
        outcome.fault_report.blackout_dropped,
        batch_report.blackout_dropped
    );
    assert_eq!(outcome.fault_report.duplicated, batch_report.duplicated);
    assert_eq!(outcome.fault_report.reordered, batch_report.reordered);
    assert_eq!(outcome.fault_report.invalidated, batch_report.invalidated);

    // Offer accounting is exhaustive: every wire sample is applied,
    // rejected, out-of-week, or dropped-late — nothing vanishes.
    assert_eq!(
        report.samples_offered,
        report.samples_applied + report.rejected_invalid + report.out_of_week + report.dropped_late
    );
    assert!(report.samples_offered > 10_000);

    // Divergence from batch ingestion is confined to VMs with reported
    // late drops — for everyone else, series AND classification match
    // the batch-corrupted trace exactly.
    let mut divergent = 0;
    for vm in g.trace.vms() {
        if session.had_drops(vm.id) {
            divergent += 1;
            continue;
        }
        assert_eq!(session.load(vm.id), corrupted.util(vm.id), "vm {}", vm.id);
        assert_eq!(
            session.pattern(vm.id),
            classifier.classify_vm(&corrupted, vm.id),
            "vm {}",
            vm.id
        );
    }
    assert_eq!(divergent, report.vms_with_drops);
    assert_eq!(
        u64::from(report.vms_with_drops > 0),
        u64::from(report.dropped_late > 0),
        "drop accounting must agree with the divergent set"
    );
    // The standard plan corrupts heavily but the default watermark is
    // sized to absorb its lateness almost entirely.
    assert!(
        report.vms_with_drops * 10 <= report.vms,
        "late drops must stay rare: {} of {}",
        report.vms_with_drops,
        report.vms
    );
}

#[test]
fn ingest_metrics_flush_under_a_scoped_registry() {
    use cloudscope_obs::testing::snapshot_diff;
    use std::sync::Arc;

    let g = generate(&GeneratorConfig::small(44));
    let registry = Arc::new(cloudscope_obs::Registry::new());
    let (outcome, diff) = snapshot_diff(&registry, || {
        drive_ingest(
            &g.trace,
            &FaultPlan::clean(44),
            &IngestConfig::default(),
            &PatternClassifier::default(),
            &KnowledgeBase::new(),
        )
    });
    let report = outcome.session.report();
    assert_eq!(
        diff.counter("ingest.samples_offered"),
        Some(report.samples_offered)
    );
    assert_eq!(
        diff.counter("ingest.samples_applied"),
        Some(report.samples_applied)
    );
    assert_eq!(
        diff.counter("ingest.windows_closed"),
        Some(report.windows_closed)
    );
    assert_eq!(
        diff.counter("ingest.classifications"),
        Some(report.classifications)
    );
    assert!(diff.histogram("ingest.close.duration_ns").is_some());
    assert!(diff.histogram("ingest.publish.duration_ns").is_some());
    assert!(diff.histogram("ingest.drive.duration_ns").is_some());
    assert!(diff
        .gauge("ingest.backpressure.peak_pending_samples")
        .is_some());
    // The publish path went through the pipeline's shared write path.
    assert!(diff.counter("kb.pipeline.batches").unwrap_or(0) >= 1);
}

#[test]
fn session_slots_into_generic_analyses() {
    let g = generate(&GeneratorConfig::small(45));
    let classifier = PatternClassifier::default();
    let outcome = drive_ingest(
        &g.trace,
        &FaultPlan::clean(45),
        &IngestConfig::default(),
        &classifier,
        &KnowledgeBase::new(),
    );
    // The same classifier entry points accept the trace and the session
    // interchangeably and agree exactly on a clean stream.
    let batch = cloudscope_analysis::pattern_shares_from(
        &g.trace,
        &g.trace,
        CloudKind::Public,
        &classifier,
        64,
    )
    .expect("batch shares");
    let live = cloudscope_analysis::pattern_shares_from(
        &g.trace,
        &outcome.session,
        CloudKind::Public,
        &classifier,
        64,
    )
    .expect("live shares");
    assert_eq!(batch, live);
}

#[test]
fn late_sample_is_dropped_and_counted_never_applied() {
    let mut ingestor = Ingestor::new(IngestConfig::default(), PatternClassifier::default());
    let vm = VmId::new(7);
    // Two on-time samples.
    ingestor.offer(
        vm,
        WireSample {
            minute: 0,
            value: 10.0,
        },
    );
    ingestor.offer(
        vm,
        WireSample {
            minute: 5,
            value: 20.0,
        },
    );
    // The watermark passes both slots (delay 10: watermark = 30 - 10 =
    // 20, sealing slots 0..4).
    let closes = ingestor.advance_watermark(SimTime::from_minutes(30));
    assert!(closes.is_empty(), "no window boundary crossed yet");
    // A late duplicate of slot 0 with a *different* value: must be
    // counted and must not change the sealed state.
    ingestor.offer(
        vm,
        WireSample {
            minute: 0,
            value: 99.0,
        },
    );
    let before = ingestor.report();
    assert_eq!(before.dropped_late, 1);
    assert_eq!(before.vms_with_drops, 1);
    let session = ingestor.finish();
    let series = session.load(vm).expect("sealed telemetry");
    assert_eq!(series.get(0), Some(10.0), "late sample must not apply");
    assert_eq!(series.get(1), Some(20.0));
    assert!(session.had_drops(vm));
}
