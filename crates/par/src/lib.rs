//! Shared parallel-sweep executor for the workspace's embarrassingly
//! parallel loops (telemetry synthesis, VM classification, knowledge
//! extraction).
//!
//! The design goal is a **determinism contract**: [`Parallelism::par_map`]
//! returns exactly what `items.iter().map(f).collect()` would, for any
//! worker count — including 1 — as long as `f` itself is a pure function
//! of its input. Scheduling is work-stealing over fixed chunks (an atomic
//! chunk cursor that idle workers race on), so a straggler chunk cannot
//! serialize the sweep, but results are reassembled in input order.
//!
//! Built on `std::thread::scope`; the workspace carries no external
//! thread-pool dependency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use cloudscope_obs as obs;

/// Upper bound on auto-detected workers: the sweeps here saturate memory
/// bandwidth well before 16 cores.
const MAX_AUTO_WORKERS: usize = 16;

/// Target chunks per worker. >1 so workers that finish early steal the
/// tail instead of idling; small enough that per-chunk overhead (one
/// atomic fetch-add + one mutex lock) stays negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// A parallel-sweep configuration: how many workers, and optionally a
/// fixed chunk size.
///
/// ```
/// use cloudscope_par::Parallelism;
///
/// let squares = Parallelism::auto().par_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// // Same output for any worker count.
/// assert_eq!(squares, Parallelism::with_workers(1).par_map(&[1, 2, 3, 4], |&x| x * x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    workers: usize,
    chunk_size: Option<usize>,
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::auto()
    }
}

impl Parallelism {
    /// Worker count from the environment: `CLOUDSCOPE_WORKERS` if set to a
    /// positive integer, else the machine's available parallelism capped
    /// at 16.
    #[must_use]
    pub fn auto() -> Self {
        let workers = std::env::var("CLOUDSCOPE_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(4)
                    .min(MAX_AUTO_WORKERS)
            });
        Self {
            workers,
            chunk_size: None,
        }
    }

    /// An explicit worker count.
    ///
    /// # Panics
    /// Panics if `workers == 0` — a sweep needs at least one worker.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Self {
            workers,
            chunk_size: None,
        }
    }

    /// Overrides the chunk size (items per steal). The default derives a
    /// size giving each worker [`CHUNKS_PER_WORKER`] chunks.
    ///
    /// # Panics
    /// Panics if `chunk_size == 0`.
    #[must_use]
    pub fn chunk_size(mut self, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        self.chunk_size = Some(chunk_size);
        self
    }

    /// The configured worker count.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maps `f` over `items` on the configured workers, returning results
    /// in input order. Output is identical for every worker count.
    ///
    /// # Panics
    /// Propagates a panic from `f` (the sweep stops; remaining chunks may
    /// or may not run).
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.workers.min(items.len());
        // Capture the caller's registry before spawning: worker threads
        // start with an empty scope stack, so without this a test's
        // scoped registry would lose everything recorded in parallel
        // sections, and `f`'s own metrics would leak to the global
        // registry.
        let registry = obs::current();
        let tasks = registry.counter("par.executor.tasks_executed");
        registry.counter("par.executor.sweeps").inc();
        if workers <= 1 {
            tasks.add(items.len() as u64);
            return items.iter().map(f).collect();
        }
        let chunk_size = self
            .chunk_size
            .unwrap_or_else(|| items.len().div_ceil(workers * CHUNKS_PER_WORKER))
            .max(1);
        let num_chunks = items.len().div_ceil(chunk_size);
        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<R>>>> = (0..num_chunks).map(|_| Mutex::new(None)).collect();
        let stolen = registry.counter("par.executor.chunks_stolen");
        let busy = registry.histogram("par.executor.worker_busy_ns");

        std::thread::scope(|scope| {
            let (items, f, cursor, slots) = (&items, &f, &cursor, &slots);
            for _ in 0..workers.min(num_chunks) {
                let registry = Arc::clone(&registry);
                let (tasks, stolen, busy) = (tasks.clone(), stolen.clone(), busy.clone());
                scope.spawn(move || {
                    let started = Instant::now();
                    let mut chunks_taken = 0u64;
                    obs::scoped(&registry, || loop {
                        let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                        if chunk >= num_chunks {
                            break;
                        }
                        chunks_taken += 1;
                        let start = chunk * chunk_size;
                        let end = (start + chunk_size).min(items.len());
                        let results: Vec<R> = items[start..end].iter().map(f).collect();
                        tasks.add((end - start) as u64);
                        *slots[chunk].lock().unwrap_or_else(PoisonError::into_inner) =
                            Some(results);
                    });
                    // Chunks beyond a worker's first are steals from the
                    // shared tail.
                    if chunks_taken > 1 {
                        stolen.add(chunks_taken - 1);
                    }
                    busy.observe(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
                });
            }
        });

        slots
            .into_iter()
            .flat_map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .expect("every chunk below the cursor was computed")
            })
            .collect()
    }

    /// Splits `0..len` into contiguous ranges (one steal unit each) and
    /// maps `f` over them on the configured workers, returning the
    /// per-range results in ascending-range order. The split depends only
    /// on `len` and the configuration — never on scheduling — so the
    /// concatenated output is identical for every worker count.
    ///
    /// This is the building block for sweeps that want slice-granular
    /// work (prefix-sum merges, chunked validation) instead of
    /// item-granular work: the caller gets the range and indexes shared
    /// state itself.
    ///
    /// ```
    /// use cloudscope_par::Parallelism;
    ///
    /// let items: Vec<u64> = (0..100).collect();
    /// let partials = Parallelism::with_workers(4)
    ///     .par_map_ranges(items.len(), |r| items[r].iter().sum::<u64>());
    /// assert_eq!(partials.iter().sum::<u64>(), items.iter().sum());
    /// ```
    pub fn par_map_ranges<R, F>(&self, len: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(std::ops::Range<usize>) -> R + Sync,
    {
        if len == 0 {
            return Vec::new();
        }
        let chunk_size = self
            .chunk_size
            .unwrap_or_else(|| len.div_ceil(self.workers * CHUNKS_PER_WORKER))
            .max(1);
        let ranges: Vec<std::ops::Range<usize>> = (0..len.div_ceil(chunk_size))
            .map(|i| i * chunk_size..((i + 1) * chunk_size).min(len))
            .collect();
        self.par_map(&ranges, |r| f(r.clone()))
    }

    /// [`par_map`](Self::par_map) followed by a sequential left fold over
    /// the results in input order — the map runs in parallel, the
    /// reduction stays deterministic.
    pub fn par_map_reduce<T, R, A, F, G>(&self, items: &[T], f: F, init: A, fold: G) -> A
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
        G: FnMut(A, R) -> A,
    {
        self.par_map(items, f).into_iter().fold(init, fold)
    }
}

// --- background task pool ----------------------------------------------

/// A boxed background job.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a [`TaskPool`], its workers, and any
/// [`PoolHandle`]s: the job queue and the shutdown latch.
#[derive(Default)]
struct PoolShared {
    queue: Mutex<std::collections::VecDeque<Job>>,
    available: std::sync::Condvar,
    shutdown: std::sync::atomic::AtomicBool,
}

impl std::fmt::Debug for PoolShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PoolShared").finish_non_exhaustive()
    }
}

impl PoolShared {
    /// Enqueues `job` (or drops it if the pool is shutting down).
    fn push(&self, job: Job) {
        if self.shutdown.load(Ordering::Acquire) {
            return;
        }
        self.queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push_back(job);
        self.available.notify_one();
    }

    /// Blocks until a job is available or shutdown is signalled.
    fn pop(&self) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = queue.pop_front() {
                return Some(job);
            }
            if self.shutdown.load(Ordering::Acquire) {
                return None;
            }
            queue = self
                .available
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// A cheap submission handle onto a [`TaskPool`]'s queue. Handles never
/// keep worker threads alive: once the owning pool drops, submitted
/// jobs are silently discarded.
#[derive(Debug, Clone)]
pub struct PoolHandle {
    shared: Arc<PoolShared>,
    registry: Arc<obs::Registry>,
}

impl PoolHandle {
    /// Enqueues `job` for a pool worker. The job runs under the obs
    /// registry that was current when the *pool* was created, so
    /// metrics recorded by background work land in the same scope as
    /// the foreground that spawned it.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.push(Box::new(job));
    }

    /// The obs registry pool workers run under.
    #[must_use]
    pub fn registry(&self) -> Arc<obs::Registry> {
        Arc::clone(&self.registry)
    }
}

/// A small persistent background thread pool for deliberately
/// *asynchronous* work — chunk prefetch, write-behind — as opposed to
/// [`Parallelism`]'s scoped, blocking sweeps.
///
/// Jobs are `FnOnce() + Send + 'static` closures run in submission
/// order by `workers` threads. Worker threads adopt the obs registry
/// current at pool construction. Dropping the pool signals shutdown,
/// discards any still-queued jobs without running them, and joins every
/// worker — a running job always completes before the pool is gone.
///
/// A job that panics poisons nothing: the panic is caught, counted in
/// `par.pool.jobs_panicked`, and the worker keeps serving.
#[derive(Debug)]
pub struct TaskPool {
    shared: Arc<PoolShared>,
    registry: Arc<obs::Registry>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl TaskPool {
    /// Spawns `workers` background threads (minimum 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(PoolShared::default());
        let registry = obs::current();
        // Register the panic counter eagerly so the metric surface is
        // identical whether or not a job ever panics.
        let _ = registry.counter("par.pool.jobs_panicked");
        let workers = (1..=workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    obs::scoped(&registry, || {
                        while let Some(job) = shared.pop() {
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                            if outcome.is_err() {
                                obs::counter("par.pool.jobs_panicked").inc();
                            }
                        }
                    });
                })
            })
            .collect();
        Self {
            shared,
            registry,
            workers,
        }
    }

    /// A clonable submission handle.
    #[must_use]
    pub fn handle(&self) -> PoolHandle {
        PoolHandle {
            shared: Arc::clone(&self.shared),
            registry: Arc::clone(&self.registry),
        }
    }

    /// Enqueues `job` for a worker thread.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.push(Box::new(job));
    }

    /// The number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared
            .shutdown
            .store(true, std::sync::atomic::Ordering::Release);
        // Discard queued-but-unstarted jobs so shutdown is prompt.
        self.shared
            .queue
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clear();
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..1000).collect();
        let expected: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 7, 16] {
            let got = Parallelism::with_workers(workers).par_map(&items, |&x| x * 3 + 1);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let par = Parallelism::with_workers(8);
        assert_eq!(par.par_map(&[] as &[u32], |&x| x), Vec::<u32>::new());
        assert_eq!(par.par_map(&[5], |&x| x + 1), vec![6]);
        assert_eq!(par.par_map(&[1, 2], |&x| x), vec![1, 2]);
    }

    #[test]
    fn explicit_chunk_size_preserves_order() {
        let items: Vec<usize> = (0..101).collect();
        let got = Parallelism::with_workers(4)
            .chunk_size(3)
            .par_map(&items, |&x| x);
        assert_eq!(got, items);
    }

    #[test]
    fn map_reduce_folds_in_input_order() {
        let items: Vec<u32> = (1..=50).collect();
        let concat = Parallelism::with_workers(5).par_map_reduce(
            &items,
            |&x| x.to_string(),
            String::new(),
            |mut acc, s| {
                acc.push_str(&s);
                acc.push(',');
                acc
            },
        );
        let expected: String = (1..=50).map(|x| format!("{x},")).collect();
        assert_eq!(concat, expected);
    }

    #[test]
    fn map_ranges_covers_exactly_once_in_order() {
        for len in [0usize, 1, 2, 7, 100, 1001] {
            for workers in [1, 3, 8] {
                let covered: Vec<usize> = Parallelism::with_workers(workers)
                    .par_map_ranges(len, |r| r.collect::<Vec<usize>>())
                    .into_iter()
                    .flatten()
                    .collect();
                let expected: Vec<usize> = (0..len).collect();
                assert_eq!(covered, expected, "len={len} workers={workers}");
            }
        }
    }

    #[test]
    fn map_ranges_split_is_worker_count_invariant_given_chunk_size() {
        let a = Parallelism::with_workers(2)
            .chunk_size(10)
            .par_map_ranges(95, |r| (r.start, r.end));
        let b = Parallelism::with_workers(8)
            .chunk_size(10)
            .par_map_ranges(95, |r| (r.start, r.end));
        assert_eq!(a, b);
        assert_eq!(a.last(), Some(&(90, 95)));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Parallelism::with_workers(0);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..64).collect();
        let result = std::panic::catch_unwind(|| {
            Parallelism::with_workers(4).par_map(&items, |&x| {
                assert!(x != 42, "boom");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn metrics_attribute_to_callers_scoped_registry() {
        let reg = Arc::new(obs::Registry::new());
        let items: Vec<u64> = (0..500).collect();
        obs::scoped(&reg, || {
            let _ = Parallelism::with_workers(4).par_map(&items, |&x| {
                obs::counter("par.test.inner").inc();
                x
            });
        });
        let snap = reg.snapshot();
        assert_eq!(snap.counter("par.executor.tasks_executed"), Some(500));
        assert_eq!(
            snap.counter("par.test.inner"),
            Some(500),
            "f's metrics follow the scope"
        );
        assert_eq!(snap.counter("par.executor.sweeps"), Some(1));
        assert_eq!(obs::global().snapshot().counter("par.test.inner"), None);
    }

    #[test]
    fn tasks_executed_is_invariant_across_worker_counts() {
        let items: Vec<u64> = (0..333).collect();
        for workers in [1, 2, 5, 16] {
            let reg = Arc::new(obs::Registry::new());
            obs::scoped(&reg, || {
                let _ = Parallelism::with_workers(workers).par_map(&items, |&x| x + 1);
            });
            assert_eq!(
                reg.snapshot().counter("par.executor.tasks_executed"),
                Some(333),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn borrows_captured_context() {
        let offsets = [10u64, 20, 30];
        let items: Vec<usize> = vec![0, 1, 2, 0];
        let got = Parallelism::with_workers(2).par_map(&items, |&i| offsets[i]);
        assert_eq!(got, vec![10, 20, 30, 10]);
    }

    #[test]
    fn pool_runs_submitted_jobs() {
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(3);
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins workers; running jobs complete
        let done = counter.load(Ordering::SeqCst);
        assert!(done <= 50, "jobs never run twice, got {done}");
        // At least the jobs picked up before shutdown ran; re-run with a
        // barrier-free check that a fresh pool drains a full queue.
        let counter = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for _ in 0..20 {
            let counter = Arc::clone(&counter);
            let tx = tx.clone();
            pool.submit(move || {
                counter.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
            });
        }
        for _ in 0..20 {
            rx.recv_timeout(std::time::Duration::from_secs(10))
                .expect("job completed");
        }
        assert_eq!(counter.load(Ordering::SeqCst), 20);
    }

    #[test]
    fn pool_jobs_record_into_construction_scope() {
        let reg = Arc::new(obs::Registry::new());
        let (tx, rx) = std::sync::mpsc::channel();
        let pool = obs::scoped(&reg, || TaskPool::new(1));
        pool.submit(move || {
            obs::counter("par.test.pool_scoped").inc();
            let _ = tx.send(());
        });
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("job completed");
        drop(pool);
        assert_eq!(reg.snapshot().counter("par.test.pool_scoped"), Some(1));
        assert_eq!(
            obs::global().snapshot().counter("par.test.pool_scoped"),
            None
        );
    }

    #[test]
    fn pool_survives_panicking_jobs() {
        let reg = Arc::new(obs::Registry::new());
        let pool = obs::scoped(&reg, || TaskPool::new(1));
        let (tx, rx) = std::sync::mpsc::channel();
        pool.submit(|| panic!("job panic must not kill the worker"));
        pool.submit(move || {
            let _ = tx.send(());
        });
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker survived the panic");
        drop(pool);
        assert_eq!(reg.snapshot().counter("par.pool.jobs_panicked"), Some(1));
    }

    #[test]
    fn pool_handle_submits_after_move() {
        let pool = TaskPool::new(2);
        let handle = pool.handle();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            handle.submit(move || {
                let _ = tx.send(42u32);
            });
        })
        .join()
        .expect("submitter thread");
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(10)), Ok(42));
    }

    #[test]
    fn dropping_the_pool_discards_queued_jobs_but_finishes_running_ones() {
        let started = Arc::new(AtomicUsize::new(0));
        let finished = Arc::new(AtomicUsize::new(0));
        let pool = TaskPool::new(1);
        let (tx, rx) = std::sync::mpsc::channel();
        {
            let started = Arc::clone(&started);
            let finished = Arc::clone(&finished);
            pool.submit(move || {
                started.fetch_add(1, Ordering::SeqCst);
                let _ = tx.send(());
                std::thread::sleep(std::time::Duration::from_millis(50));
                finished.fetch_add(1, Ordering::SeqCst);
            });
        }
        for _ in 0..100 {
            let started = Arc::clone(&started);
            pool.submit(move || {
                started.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(50));
            });
        }
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("first job started");
        drop(pool);
        assert_eq!(finished.load(Ordering::SeqCst), 1, "running job completed");
        assert!(
            started.load(Ordering::SeqCst) <= 2,
            "queued jobs were discarded on shutdown"
        );
    }
}
