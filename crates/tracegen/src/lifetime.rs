//! Churn-VM lifetime sampling: the three-component mixture calibrated to
//! Figure 3(a)'s shortest-bin fractions (49% private, 81% public).

use crate::config::LifetimeProfile;
use cloudscope_model::time::SimDuration;
use cloudscope_stats::dist::{Exponential, LogNormal, Sample};
use rand::Rng;

/// Samples VM lifetimes from the short/medium/long mixture.
#[derive(Debug, Clone)]
pub struct LifetimeSampler {
    short_fraction: f64,
    long_fraction: f64,
    short: Exponential,
    medium: LogNormal,
    long: LogNormal,
}

impl LifetimeSampler {
    /// Builds the sampler from a profile.
    ///
    /// # Panics
    /// Panics if the profile's fractions are outside `[0, 1]` or sum past
    /// 1, or if any scale parameter is non-positive.
    #[must_use]
    pub fn new(profile: &LifetimeProfile) -> Self {
        assert!(
            (0.0..=1.0).contains(&profile.short_fraction)
                && (0.0..=1.0).contains(&profile.long_fraction)
                && profile.short_fraction + profile.long_fraction <= 1.0,
            "lifetime fractions must form a sub-probability"
        );
        Self {
            short_fraction: profile.short_fraction,
            long_fraction: profile.long_fraction,
            short: Exponential::new(1.0 / profile.short_mean_minutes).expect("positive short mean"),
            medium: LogNormal::from_median(profile.medium_median_minutes, profile.medium_sigma)
                .expect("positive medium median"),
            long: LogNormal::from_median(profile.long_median_minutes, 0.8)
                .expect("positive long median"),
        }
    }

    /// Draws one lifetime. Lifetimes are at least one minute.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let u: f64 = rng.random();
        let minutes = if u < self.short_fraction {
            self.short.sample(rng)
        } else if u < self.short_fraction + self.long_fraction {
            self.long.sample(rng)
        } else {
            self.medium.sample(rng)
        };
        SimDuration::from_minutes((minutes.round() as i64).max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn private_profile() -> LifetimeProfile {
        LifetimeProfile {
            short_fraction: 0.60,
            short_mean_minutes: 22.0,
            medium_median_minutes: 9.0 * 60.0,
            medium_sigma: 0.9,
            long_fraction: 0.10,
            long_median_minutes: 4.0 * 24.0 * 60.0,
        }
    }

    fn public_profile() -> LifetimeProfile {
        LifetimeProfile {
            short_fraction: 0.84,
            short_mean_minutes: 18.0,
            medium_median_minutes: 7.0 * 60.0,
            medium_sigma: 1.0,
            long_fraction: 0.04,
            long_median_minutes: 4.0 * 24.0 * 60.0,
        }
    }

    fn short_bin_fraction(profile: &LifetimeProfile, bin_minutes: i64) -> f64 {
        let sampler = LifetimeSampler::new(profile);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let short = (0..n)
            .filter(|_| sampler.sample(&mut rng).minutes() <= bin_minutes)
            .count();
        short as f64 / n as f64
    }

    #[test]
    fn shortest_bin_fractions_match_calibration() {
        // One-hour shortest bin, as in the Fig 3(a) reproduction.
        let private = short_bin_fraction(&private_profile(), 60);
        let public = short_bin_fraction(&public_profile(), 60);
        assert!((private - 0.55).abs() < 0.12, "private {private}");
        assert!((public - 0.82).abs() < 0.08, "public {public}");
        assert!(public > private + 0.2);
    }

    #[test]
    fn lifetimes_are_positive() {
        let sampler = LifetimeSampler::new(&public_profile());
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(sampler.sample(&mut rng).minutes() >= 1);
        }
    }

    #[test]
    fn long_tail_exists() {
        let sampler = LifetimeSampler::new(&private_profile());
        let mut rng = StdRng::seed_from_u64(4);
        let week = 7 * 24 * 60;
        let long = (0..20_000)
            .filter(|_| sampler.sample(&mut rng).minutes() > week / 2)
            .count();
        assert!(long > 100, "expected a long-lived tail, got {long}");
    }

    #[test]
    #[should_panic(expected = "sub-probability")]
    fn invalid_fractions_rejected() {
        let mut p = private_profile();
        p.short_fraction = 0.9;
        p.long_fraction = 0.3;
        let _ = LifetimeSampler::new(&p);
    }
}
